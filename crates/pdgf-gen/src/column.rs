//! Vectorized per-column fill kernels for the hot generators.
//!
//! Each kernel is the columnar twin of one generator's `generate` body:
//! it hoists the seeding-hierarchy prefix via [`ColumnCtx`], constructs a
//! cheap counter-based RNG per cell, and replays *exactly* the same draw
//! sequence as the row path into typed [`ColumnVec`] storage — so the
//! bytes that eventually reach the formatter are identical by
//! construction, while the loop body is monomorphic (no `Arc<dyn
//! Generator>` dispatch, no per-cell `Value`, no per-cell heap
//! allocation).
//!
//! This module is covered by the `columnar-cell-alloc` audit rule: no
//! `String::`/`format!`/`.to_vec()` — text lands in the column's arena.

use std::ops::Range;

use pdgf_prng::{mix64_pair, Alias, FeistelPermutation, PdgfDefaultRandom, PdgfRng};
use pdgf_schema::expr::{BinOp, Expr, Func};
use pdgf_schema::model::{DateFormat, HistogramOutput};
use pdgf_schema::{ColumnVec, Value};
use std::collections::BTreeMap;
use textsynth::{Dictionary, MarkovModel};

use crate::basic::CHARSET;
use crate::generator::ColumnCtx;

/// Cell count of a row range.
#[inline]
fn n(rows: &Range<u64>) -> usize {
    rows.end.saturating_sub(rows.start) as usize
}

/// `IdGenerator`: `row + 1`, optionally permuted. Draws nothing.
pub(crate) fn fill_id(perm: Option<&FeistelPermutation>, rows: Range<u64>, out: &mut ColumnVec) {
    let v = out.longs_mut();
    v.reserve(n(&rows));
    match perm {
        Some(p) => {
            let domain = p.domain();
            v.extend(rows.map(|row| p.permute(row % domain) as i64 + 1));
        }
        None => v.extend(rows.map(|row| row as i64 + 1)),
    }
}

/// `LongGenerator`: one `next_i64_in` per cell.
pub(crate) fn fill_long(
    min: i64,
    max: i64,
    ctx: &ColumnCtx<'_>,
    rows: Range<u64>,
    out: &mut ColumnVec,
) {
    let v = out.longs_mut();
    v.reserve(n(&rows));
    v.extend(rows.map(|row| ctx.cell_rng(row).next_i64_in(min, max)));
}

/// `DoubleGenerator`: one `next_f64` per cell plus optional rounding.
pub(crate) fn fill_double(
    min: f64,
    span: f64,
    round_factor: Option<f64>,
    ctx: &ColumnCtx<'_>,
    rows: Range<u64>,
    out: &mut ColumnVec,
) {
    let v = out.doubles_mut();
    v.reserve(n(&rows));
    match round_factor {
        Some(f) => v.extend(rows.map(|row| {
            let x = min + ctx.cell_rng(row).next_f64() * span;
            (x * f).round() / f
        })),
        None => v.extend(rows.map(|row| min + ctx.cell_rng(row).next_f64() * span)),
    }
}

/// `DecimalGenerator`: one `next_i64_in` per cell at a shared scale.
pub(crate) fn fill_decimal(
    min: i64,
    max: i64,
    scale: u8,
    ctx: &ColumnCtx<'_>,
    rows: Range<u64>,
    out: &mut ColumnVec,
) {
    let v = out.decimals_mut(scale);
    v.reserve(n(&rows));
    v.extend(rows.map(|row| ctx.cell_rng(row).next_i64_in(min, max)));
}

/// `TimestampGenerator`: one `next_i64_in` per cell.
pub(crate) fn fill_timestamp(
    min: i64,
    max: i64,
    ctx: &ColumnCtx<'_>,
    rows: Range<u64>,
    out: &mut ColumnVec,
) {
    let v = out.timestamps_mut();
    v.reserve(n(&rows));
    v.extend(rows.map(|row| ctx.cell_rng(row).next_i64_in(min, max)));
}

/// `RandomBoolGenerator`: one `next_bool` per cell.
pub(crate) fn fill_bool(
    true_prob: f64,
    ctx: &ColumnCtx<'_>,
    rows: Range<u64>,
    out: &mut ColumnVec,
) {
    let v = out.bools_mut();
    v.reserve(n(&rows));
    v.extend(rows.map(|row| ctx.cell_rng(row).next_bool(true_prob)));
}

/// `DateGenerator`: one `next_bounded` per cell. ISO dates stay typed;
/// any other format renders eagerly into the text arena.
pub(crate) fn fill_date(
    min_day: i32,
    span_days: u32,
    format: DateFormat,
    ctx: &ColumnCtx<'_>,
    rows: Range<u64>,
    out: &mut ColumnVec,
) {
    let span = u64::from(span_days) + 1;
    match format {
        DateFormat::Iso => {
            let v = out.dates_mut();
            v.reserve(n(&rows));
            v.extend(rows.map(|row| min_day + ctx.cell_rng(row).next_bounded(span) as i32));
        }
        other => {
            let count = n(&rows);
            let tc = out.text_mut();
            tc.reserve(count, ctx.arena_hint(count));
            for row in rows {
                let offset = ctx.cell_rng(row).next_bounded(span) as i32;
                other.render_into(pdgf_schema::Date(min_day + offset), tc.buf());
                tc.seal();
            }
        }
    }
}

/// `RandomStringGenerator`: one length draw, then ~10 charset draws per
/// u64, streamed straight into the arena.
pub(crate) fn fill_random_string(
    min_len: u32,
    max_len: u32,
    ctx: &ColumnCtx<'_>,
    rows: Range<u64>,
    out: &mut ColumnVec,
) {
    let span = u64::from(max_len - min_len) + 1;
    let count = n(&rows);
    let tc = out.text_mut();
    tc.reserve(count, ctx.arena_hint(count));
    for row in rows {
        let mut rng = ctx.cell_rng(row);
        let len = min_len + rng.next_bounded(span) as u32;
        let buf = tc.buf();
        let mut remaining = len;
        while remaining > 0 {
            let mut word = rng.next_u64();
            let batch = remaining.min(10);
            for _ in 0..batch {
                buf.push(CHARSET[(word % 62) as usize] as char);
                word /= 62;
            }
            remaining -= batch;
        }
        tc.seal();
    }
}

/// `StaticValueGenerator`: constant fill, no draws. Text memcpy's the
/// constant into the arena; NULL falls back to cells (a `Value::Null`
/// clone is allocation-free).
pub(crate) fn fill_static(value: &Value, rows: Range<u64>, out: &mut ColumnVec) {
    let count = n(&rows);
    match value {
        Value::Long(x) => {
            let v = out.longs_mut();
            v.resize(count, *x);
        }
        Value::Double(x) => {
            let v = out.doubles_mut();
            v.resize(count, *x);
        }
        Value::Decimal { unscaled, scale } => {
            let v = out.decimals_mut(*scale);
            v.resize(count, *unscaled);
        }
        Value::Date(d) => {
            let v = out.dates_mut();
            v.resize(count, d.0);
        }
        Value::Timestamp(t) => {
            let v = out.timestamps_mut();
            v.resize(count, *t);
        }
        Value::Bool(b) => {
            let v = out.bools_mut();
            v.resize(count, *b);
        }
        Value::Text(s) => {
            let tc = out.text_mut();
            tc.reserve(count, s.len().saturating_mul(count));
            for _ in 0..count {
                tc.push_str(s);
            }
        }
        Value::Null => {
            let cells = out.cells_mut();
            cells.resize(count, Value::Null);
        }
    }
}

/// `HistogramGenerator`: an alias draw picks the bucket, a uniform draw
/// places the value inside it.
pub(crate) fn fill_histogram(
    bounds: &[f64],
    alias: &Alias,
    output: HistogramOutput,
    ctx: &ColumnCtx<'_>,
    rows: Range<u64>,
    out: &mut ColumnVec,
) {
    let count = n(&rows);
    let mut sample = |row: u64| {
        let mut rng = ctx.cell_rng(row);
        let bucket = alias.sample_index(&mut || rng.next_u64());
        let (lo, hi) = (bounds[bucket], bounds[bucket + 1]);
        lo + rng.next_f64() * (hi - lo)
    };
    match output {
        HistogramOutput::Long => {
            let v = out.longs_mut();
            v.reserve(count);
            v.extend(rows.map(|row| sample(row).round() as i64));
        }
        HistogramOutput::Double => {
            let v = out.doubles_mut();
            v.reserve(count);
            v.extend(rows.map(&mut sample));
        }
        HistogramOutput::Decimal(scale) => {
            let pow = 10f64.powi(i32::from(scale));
            let v = out.decimals_mut(scale);
            v.reserve(count);
            v.extend(rows.map(|row| (sample(row) * pow).round() as i64));
        }
    }
}

/// `DictListGenerator`: one sampling draw sequence per cell, entry bytes
/// memcpy'd into the arena (no `Arc` clone per cell).
pub(crate) fn fill_dict(
    dict: &Dictionary,
    weighted: bool,
    ctx: &ColumnCtx<'_>,
    rows: Range<u64>,
    out: &mut ColumnVec,
) {
    let count = n(&rows);
    let tc = out.text_mut();
    tc.reserve(count, ctx.arena_hint(count));
    for row in rows {
        let mut rng = ctx.cell_rng(row);
        let mut draw = || rng.next_u64();
        let entry = if weighted {
            dict.sample_weighted(&mut draw)
        } else {
            dict.sample_uniform(&mut draw)
        };
        tc.push_str(entry);
    }
}

/// `DictByRowGenerator`: `row mod len`, no draws.
pub(crate) fn fill_dict_by_row(
    dict: &Dictionary,
    ctx: &ColumnCtx<'_>,
    rows: Range<u64>,
    out: &mut ColumnVec,
) {
    let count = n(&rows);
    let len = dict.len() as u64;
    let tc = out.text_mut();
    tc.reserve(count, ctx.arena_hint(count));
    for row in rows {
        tc.push_str(dict.entry((row % len) as usize));
    }
}

/// `MarkovChainGenerator`: the model appends words directly into the
/// arena tail — the same draw sequence and bytes as the row path, minus
/// the intermediate scratch-`String`-to-`Arc<str>` copy.
pub(crate) fn fill_markov(
    model: &MarkovModel,
    min_words: u32,
    max_words: u32,
    ctx: &ColumnCtx<'_>,
    rows: Range<u64>,
    out: &mut ColumnVec,
) {
    let count = n(&rows);
    let tc = out.text_mut();
    tc.reserve(count, ctx.arena_hint(count));
    for row in rows {
        let mut rng = ctx.cell_rng(row);
        let mut draw = || rng.next_u64();
        model.generate_range_into(&mut draw, min_words, max_words, tc.buf());
        tc.seal();
    }
}

/// One step of a compiled formula: postfix (RPN) over a value stack.
enum FormulaOp {
    /// Push a literal or pre-resolved property value.
    Const(f64),
    /// Push the current row number.
    Row,
    /// Negate the top of the stack.
    Neg,
    /// Pop two, apply the operator, push the result.
    Bin(BinOp),
    /// Pop `argc` arguments, apply the function, push the result.
    Call(Func, usize),
}

/// Flatten `expr` into postfix ops with every `${NAME}` other than
/// `${ROW}` resolved against the property bag. Returns `false` when a
/// property is unknown — the row path's eager `eval` then errors for
/// *every* row (no short-circuiting), so the whole column is NaN.
fn compile_formula(expr: &Expr, props: &BTreeMap<String, f64>, ops: &mut Vec<FormulaOp>) -> bool {
    match expr {
        Expr::Num(v) => ops.push(FormulaOp::Const(*v)),
        Expr::Prop(name) if name == "ROW" => ops.push(FormulaOp::Row),
        Expr::Prop(name) => match props.get(name) {
            Some(v) => ops.push(FormulaOp::Const(*v)),
            None => return false,
        },
        Expr::Neg(e) => {
            if !compile_formula(e, props, ops) {
                return false;
            }
            ops.push(FormulaOp::Neg);
        }
        Expr::Bin(op, a, b) => {
            if !compile_formula(a, props, ops) || !compile_formula(b, props, ops) {
                return false;
            }
            ops.push(FormulaOp::Bin(*op));
        }
        Expr::Call(f, args) => {
            for a in args {
                if !compile_formula(a, props, ops) {
                    return false;
                }
            }
            ops.push(FormulaOp::Call(*f, args.len()));
        }
    }
    true
}

/// Run a compiled formula for one row. Division or remainder by zero
/// mirrors `Expr::eval`'s error (the generator maps it to NaN); the op
/// sequence applies the identical f64 operations in the identical order,
/// so results are bit-equal to the tree walk.
fn eval_formula(ops: &[FormulaOp], row: f64, stack: &mut Vec<f64>) -> f64 {
    stack.clear();
    for op in ops {
        match op {
            FormulaOp::Const(v) => stack.push(*v),
            FormulaOp::Row => stack.push(row),
            FormulaOp::Neg => {
                let x = stack.pop().unwrap_or(f64::NAN);
                stack.push(-x);
            }
            FormulaOp::Bin(op) => {
                let y = stack.pop().unwrap_or(f64::NAN);
                let x = stack.pop().unwrap_or(f64::NAN);
                let v = match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div if y == 0.0 => return f64::NAN,
                    BinOp::Div => x / y,
                    BinOp::Rem if y == 0.0 => return f64::NAN,
                    BinOp::Rem => x % y,
                };
                stack.push(v);
            }
            FormulaOp::Call(f, argc) => {
                let second = if *argc > 1 {
                    stack.pop().unwrap_or(f64::NAN)
                } else {
                    f64::NAN
                };
                let first = stack.pop().unwrap_or(f64::NAN);
                let v = match f {
                    Func::Ceil => first.ceil(),
                    Func::Floor => first.floor(),
                    Func::Round => first.round(),
                    Func::Sqrt => first.sqrt(),
                    Func::Log => first.ln(),
                    Func::Pow => first.powf(second),
                    Func::Min => first.min(second),
                    Func::Max => first.max(second),
                };
                stack.push(v);
            }
        }
    }
    stack.pop().unwrap_or(f64::NAN)
}

/// `FormulaGenerator`: pure arithmetic over `${ROW}` and the property
/// bag, no draws. The expression tree is flattened to postfix once per
/// column, so the per-cell loop runs without recursion, property-name
/// lookups, or `Result` plumbing.
pub(crate) fn fill_formula(
    expr: &Expr,
    props: &BTreeMap<String, f64>,
    as_long: bool,
    rows: Range<u64>,
    out: &mut ColumnVec,
) {
    let count = n(&rows);
    let mut ops = Vec::new();
    let compiled = compile_formula(expr, props, &mut ops);
    let mut stack: Vec<f64> = Vec::new();
    let mut eval = |row: u64| {
        if compiled {
            eval_formula(&ops, row as f64, &mut stack)
        } else {
            f64::NAN
        }
    };
    if as_long {
        let v = out.longs_mut();
        v.reserve(count);
        v.extend(rows.map(|row| eval(row).round() as i64));
    } else {
        let v = out.doubles_mut();
        v.reserve(count);
        v.extend(rows.map(eval));
    }
}

/// Byte length of `s` to keep under a `max_chars` character cap, or
/// `None` when `s` already fits. Mirrors `TruncateGenerator::generate`:
/// a cut landing exactly on a word end keeps the whole head, otherwise
/// the cut retreats to the last word boundary (unless the first word
/// alone overflows — then it's a hard cut).
pub(crate) fn truncate_keep_len(s: &str, max_chars: usize) -> Option<usize> {
    let (byte_idx, next_char) = s.char_indices().nth(max_chars)?;
    if next_char == ' ' {
        return Some(byte_idx);
    }
    let head = &s[..byte_idx];
    match head.rfind(' ') {
        Some(pos) if pos > 0 => Some(pos),
        _ => Some(byte_idx),
    }
}

/// Generic per-cell fallback: loop `generate` into the [`ColumnVec::Cells`]
/// storage, threading the worker scratch through each cell. Identical to
/// the default [`Generator::fill_column`](crate::generator::Generator::fill_column)
/// body; exists so specialized kernels can fall back for configurations
/// they do not cover.
pub(crate) fn fill_cells(
    g: &dyn crate::generator::Generator,
    ctx: &ColumnCtx<'_>,
    rows: Range<u64>,
    out: &mut ColumnVec,
    scratch: &mut crate::generator::GenScratch,
) {
    let cells = out.cells_mut();
    cells.reserve(n(&rows));
    for row in rows {
        let mut cell = ctx.cell(row);
        std::mem::swap(&mut cell.scratch, scratch);
        cells.push(g.generate(&mut cell));
        std::mem::swap(&mut cell.scratch, scratch);
    }
}

/// `ProbabilityGenerator` fast path for the common dbgen idiom of a
/// probability switch over fixed strings (`l_returnflag`: R/A/N): when
/// every branch is a static text value, each cell is one `next_f64` plus
/// one arena append — no per-cell `Value`, no branch-generator dispatch.
/// Returns `false` (leaving `out` untouched) when any branch is dynamic
/// or non-text, so the caller can take the generic fallback.
pub(crate) fn fill_probability_static(
    cumulative: &[(f64, std::sync::Arc<dyn crate::generator::Generator>)],
    ctx: &ColumnCtx<'_>,
    rows: Range<u64>,
    out: &mut ColumnVec,
) -> bool {
    let mut branches: Vec<(f64, &str)> = Vec::with_capacity(cumulative.len());
    for (bound, g) in cumulative {
        match g.static_value() {
            Some(Value::Text(s)) => branches.push((*bound, s)),
            _ => return false,
        }
    }
    let count = n(&rows);
    let tc = out.text_mut();
    tc.reserve(count, ctx.arena_hint(count));
    // Same selection as `ProbabilityGenerator::generate`: first branch
    // whose cumulative bound exceeds the draw, with the last branch
    // catching floating-point residual mass.
    let last = branches.len() - 1;
    for row in rows {
        let draw = ctx.cell_rng(row).next_f64();
        let idx = branches
            .iter()
            .position(|(bound, _)| draw < *bound)
            .unwrap_or(last);
        tc.push_str(branches[idx].1);
    }
    true
}

/// `ReferenceGenerator`: pick the parent row per strategy, then recompute
/// the referenced cell. The win over the generic fallback is hoisting:
/// the child column needs no [`GenContext`](crate::generator::GenContext)
/// at all (permutation strategies draw nothing; the others use the bare
/// cell RNG), and the parent column's `(table, column, update)` seed
/// prefix is derived once per column instead of per cell.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fill_reference(
    target_table: u32,
    target_column: u32,
    parent_size: u64,
    strategy: &crate::reference::RefStrategy,
    ctx: &ColumnCtx<'_>,
    rows: Range<u64>,
    out: &mut ColumnVec,
    scratch: &mut crate::generator::GenScratch,
) {
    use crate::reference::RefStrategy;

    let parent_gen = ctx.runtime.tables()[target_table as usize].columns[target_column as usize]
        .generator
        .as_ref();
    // References always target the parent's initial load (update 0).
    let prefix = ctx
        .runtime
        .seed_tree()
        // audit:allow(seed-discipline) declared reference closure: the
        // lineage analyzer models this exact parent-column read
        .update_seed(target_table, target_column, 0);
    // Foreign keys into an Id column — the TPC-H shape — need no parent
    // context at all: the child strategy picks the parent row, the
    // parent's pure row→key map recomputes the key, and the column stays
    // a typed Long vector end to end (Id draws nothing, so skipping the
    // parent RNG consumes the identical stream).
    if let Some(id) = parent_gen.as_id() {
        let v = out.longs_mut();
        v.reserve(n(&rows));
        match strategy {
            RefStrategy::Permutation(p) => {
                v.extend(rows.map(|row| id.key_for(p.permute(row % parent_size))));
            }
            RefStrategy::Uniform => {
                v.extend(rows.map(|row| id.key_for(ctx.cell_rng(row).next_bounded(parent_size))));
            }
            RefStrategy::Zipf(z) => {
                v.extend(rows.map(|row| {
                    let mut rng = ctx.cell_rng(row);
                    id.key_for(z.sample_rank(&mut || rng.next_u64()) - 1)
                }));
            }
        }
        return;
    }
    let cells = out.cells_mut();
    cells.reserve(n(&rows));
    // field_seed(parent coord) = mix(update_seed(t, c, 0), parent_row),
    // so the recomputed cell is bit-identical to the row path's
    // `runtime.value(target_table, target_column, 0, parent_row)`.
    let emit = |parent_row: u64, scratch: &mut crate::generator::GenScratch| {
        let mut cell = crate::generator::GenContext {
            rng: PdgfDefaultRandom::seed_from(mix64_pair(prefix, parent_row)),
            row: parent_row,
            update: 0,
            runtime: ctx.runtime,
            scratch: std::mem::take(scratch),
        };
        let v = parent_gen.generate(&mut cell);
        *scratch = cell.scratch;
        v
    };
    match strategy {
        RefStrategy::Permutation(p) => {
            for row in rows {
                let parent_row = p.permute(row % parent_size);
                cells.push(emit(parent_row, scratch));
            }
        }
        RefStrategy::Uniform => {
            for row in rows {
                let parent_row = ctx.cell_rng(row).next_bounded(parent_size);
                cells.push(emit(parent_row, scratch));
            }
        }
        RefStrategy::Zipf(z) => {
            for row in rows {
                let mut rng = ctx.cell_rng(row);
                let parent_row = z.sample_rank(&mut || rng.next_u64()) - 1;
                cells.push(emit(parent_row, scratch));
            }
        }
    }
}

/// `TruncateGenerator`: run the inner kernel, then shorten overflowing
/// text cells in place. Arena columns rebuild through the scratch buffer
/// only when something actually truncates; non-text columns pass through.
pub(crate) fn fill_truncate(
    inner: &dyn crate::generator::Generator,
    max_chars: usize,
    ctx: &ColumnCtx<'_>,
    rows: Range<u64>,
    out: &mut ColumnVec,
    scratch: &mut crate::generator::GenScratch,
) {
    inner.fill_column(ctx, rows, out, scratch);
    // Byte length bounds char count, so a cell whose *bytes* fit under
    // the cap provably fits — the O(1) check skips the per-cell char walk
    // for the common non-truncating case.
    if let Some(tc) = out.as_text_mut() {
        tc.truncate_cells(
            |s| {
                if s.len() <= max_chars {
                    None
                } else {
                    truncate_keep_len(s, max_chars)
                }
            },
            &mut scratch.concat,
        );
    } else if let Some(cells) = out.as_cells_mut() {
        for cell in cells.iter_mut() {
            let truncated = match cell {
                Value::Text(s) if s.len() > max_chars => {
                    truncate_keep_len(s, max_chars).map(|keep| Value::text(&s[..keep]))
                }
                _ => None,
            };
            if let Some(v) = truncated {
                *cell = v;
            }
        }
    }
}
