//! Reference generators: consistent foreign keys by *recomputation*.
//!
//! PDGF's defining design choice (Section 6 groups generators into "no
//! reference generation", "reference tracking", and "reference
//! computation"): instead of re-reading previously generated data — which
//! the paper measures at ~10 ms per random disk read versus ≤2 µs to
//! compute even a complex value, a ~5000× difference — a reference
//! generator derives the referenced *row number* from its own stream and
//! recomputes that cell through the schema runtime.

use std::ops::Range;

use pdgf_prng::{FeistelPermutation, PdgfRng, Zipf};
use pdgf_schema::absint::{self, StaticProfile};
use pdgf_schema::lineage::DrawContract;
use pdgf_schema::{ColumnVec, Value};

use crate::generator::{ColumnCtx, GenContext, GenScratch, Generator, ProfileCtx};

/// How the parent row is chosen.
pub enum RefStrategy {
    /// Uniform over all parent rows.
    Uniform,
    /// Zipf-skewed: low parent row numbers are referenced most.
    Zipf(Zipf),
    /// Bijective: child row `i` maps to parent `perm(i mod parent_size)`,
    /// so fan-in differs by at most one across parents.
    Permutation(FeistelPermutation),
}

/// Generates values of another table's column for consistent references.
pub struct ReferenceGenerator {
    target_table: u32,
    target_column: u32,
    parent_size: u64,
    strategy: RefStrategy,
}

impl ReferenceGenerator {
    /// Reference into `target_table.target_column`, which has
    /// `parent_size` rows.
    pub fn new(
        target_table: u32,
        target_column: u32,
        parent_size: u64,
        strategy: RefStrategy,
    ) -> Self {
        assert!(parent_size > 0, "cannot reference an empty table");
        Self {
            target_table,
            target_column,
            parent_size,
            strategy,
        }
    }

    /// The parent row this child cell references (exposed for tests and
    /// integrity checks).
    #[inline]
    pub fn parent_row(&self, ctx: &mut GenContext<'_>) -> u64 {
        match &self.strategy {
            RefStrategy::Uniform => ctx.rng.next_bounded(self.parent_size),
            RefStrategy::Zipf(z) => z.sample_rank(&mut || ctx.rng.next_u64()) - 1,
            RefStrategy::Permutation(p) => p.permute(ctx.row % self.parent_size),
        }
    }
}

impl Generator for ReferenceGenerator {
    #[inline]
    fn generate(&self, ctx: &mut GenContext<'_>) -> Value {
        let row = self.parent_row(ctx);
        // Recompute the referenced cell: a pure function of coordinates,
        // no reads of generated data, no cross-thread coordination.
        ctx.runtime
            .value(self.target_table, self.target_column, 0, row)
    }

    fn fill_column(
        &self,
        ctx: &ColumnCtx<'_>,
        rows: Range<u64>,
        out: &mut ColumnVec,
        scratch: &mut GenScratch,
    ) {
        crate::column::fill_reference(
            self.target_table,
            self.target_column,
            self.parent_size,
            &self.strategy,
            ctx,
            rows,
            out,
            scratch,
        );
    }

    fn name(&self) -> &'static str {
        "DefaultReferenceGenerator"
    }

    fn profile(&self, ctx: &ProfileCtx<'_>) -> StaticProfile {
        // Generation order guarantees the parent column was profiled
        // before any table referencing it.
        let Some(parent) = ctx.column(self.target_table, self.target_column) else {
            return StaticProfile::unknown();
        };
        absint::reference_profile(
            parent,
            self.parent_size,
            ctx.rows,
            matches!(self.strategy, RefStrategy::Permutation(_)),
        )
    }

    fn contract(&self) -> DrawContract {
        // The closure read recomputes the parent cell in a fresh context
        // at the parent's own lineage node — zero draws from this stream.
        let target = (self.target_table, self.target_column);
        let mut c = match self.strategy {
            RefStrategy::Uniform | RefStrategy::Zipf(_) => DrawContract::exact(1),
            RefStrategy::Permutation(_) => DrawContract::exact(0),
        };
        c.closure_reads.insert(target);
        if matches!(self.strategy, RefStrategy::Permutation(_)) {
            c.perm_refs.insert(target, 1);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use pdgf_schema::{Field, GeneratorSpec, Schema, SqlType, Table};

    use crate::resolver::MapResolver;
    use crate::runtime::SchemaRuntime;

    /// parent(p_id ID) <- child(c_ref REF(parent.p_id)).
    fn two_table_runtime(dist: &str) -> SchemaRuntime {
        let dist_spec = match dist {
            "uniform" => pdgf_schema::model::RefDistribution::Uniform,
            "permutation" => pdgf_schema::model::RefDistribution::Permutation,
            _ => pdgf_schema::model::RefDistribution::Zipf { theta: 0.7 },
        };
        let schema = Schema::new("reftest", 99)
            .table(
                Table::new("parent", "50").field(
                    Field::new(
                        "p_id",
                        SqlType::BigInt,
                        GeneratorSpec::Id { permute: false },
                    )
                    .primary(),
                ),
            )
            .table(Table::new("child", "500").field(Field::new(
                "c_ref",
                SqlType::BigInt,
                GeneratorSpec::Reference {
                    table: "parent".into(),
                    field: "p_id".into(),
                    distribution: dist_spec,
                },
            )));
        SchemaRuntime::build(&schema, &MapResolver::default()).unwrap()
    }

    #[test]
    fn references_land_on_existing_parent_keys() {
        let rt = two_table_runtime("uniform");
        for row in 0..500u64 {
            let v = rt.value(1, 0, 0, row);
            let id = v.as_i64().unwrap();
            assert!((1..=50).contains(&id), "dangling reference {id}");
        }
    }

    #[test]
    fn uniform_references_cover_all_parents() {
        let rt = two_table_runtime("uniform");
        let mut seen = std::collections::HashSet::new();
        for row in 0..500u64 {
            seen.insert(rt.value(1, 0, 0, row).as_i64().unwrap());
        }
        assert!(
            seen.len() >= 45,
            "only {} of 50 parents referenced",
            seen.len()
        );
    }

    #[test]
    fn permutation_references_balance_fan_in() {
        let rt = two_table_runtime("permutation");
        let mut counts = std::collections::HashMap::new();
        for row in 0..500u64 {
            *counts
                .entry(rt.value(1, 0, 0, row).as_i64().unwrap())
                .or_insert(0u32) += 1;
        }
        // 500 children over 50 parents via a bijection per cycle: each
        // parent referenced exactly 10 times.
        assert_eq!(counts.len(), 50);
        assert!(counts.values().all(|&c| c == 10), "{counts:?}");
    }

    #[test]
    fn zipf_references_are_skewed() {
        let rt = two_table_runtime("zipf");
        let mut counts = std::collections::HashMap::new();
        for row in 0..2000u64 {
            *counts
                .entry(rt.value(1, 0, 0, row).as_i64().unwrap())
                .or_insert(0u32) += 1;
        }
        let top = counts.get(&1).copied().unwrap_or(0);
        let avg = 2000 / 50;
        assert!(top as u64 > 3 * avg, "rank-1 parent not hot: {top}");
    }

    #[test]
    fn references_are_deterministic() {
        let a = two_table_runtime("uniform");
        let b = two_table_runtime("uniform");
        for row in 0..200u64 {
            assert_eq!(a.value(1, 0, 0, row), b.value(1, 0, 0, row));
        }
    }
}
