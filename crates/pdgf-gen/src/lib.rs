//! Field value generators and the executable schema runtime.
//!
//! `pdgf-schema` describes *what* to generate; this crate turns those
//! descriptions into executable [`Generator`]
//! pipelines. The design follows Section 2 of the paper:
//!
//! * **Simple generators** produce values directly (numbers, dates,
//!   dictionary entries, random strings) — see [`basic`] and [`text`].
//! * **Meta generators** "concatenate results from other generators or
//!   execute different generators based on certain conditions", enabling
//!   "a functional definition of complex values and dependencies using
//!   simple building blocks" — see [`meta`].
//! * **Reference generators** recompute the referenced cell instead of
//!   reading previously generated data, the key to fully parallel
//!   generation — see [`reference`](mod@reference).
//!
//! The [`SchemaRuntime`] binds a validated
//! [`Schema`](pdgf_schema::Schema) to concrete generators and exposes the
//! fundamental operation of PDGF: *`value(table, column, update, row)` as
//! a pure function*.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rust_2018_idioms)]

pub mod basic;
mod column;
pub mod generator;
pub mod meta;
pub mod reference;
pub mod resolver;
pub mod runtime;
pub mod text;

pub use generator::{ColumnCtx, GenContext, GenScratch, Generator, ProfileCtx};
pub use resolver::{FsResolver, MapResolver, ResolveError, ResolverOracle, ResourceResolver};
pub use runtime::{BuildError, SchemaRuntime};
