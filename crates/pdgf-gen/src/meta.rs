//! Meta generators — generators that wrap other generators.
//!
//! "These can be … meta generators, which can concatenate results from
//! other generators or execute different generators based on certain
//! conditions. The concept of meta generators enables a functional
//! definition of complex values and dependencies using simple building
//! blocks." (Section 2.)
//!
//! The paper's Figure 7 measures exactly this composition: a NULL wrapper
//! adds its own base cost, and executing the sub-generator adds the
//! sub-generator's base cost plus its value computation.

use pdgf_prng::PdgfRng;
use pdgf_schema::absint::{self, StaticProfile};
use pdgf_schema::expr::Expr;
use pdgf_schema::lineage::{self, DrawContract};
use pdgf_schema::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use std::ops::Range;

use pdgf_schema::ColumnVec;

use crate::generator::{ColumnCtx, GenContext, GenScratch, Generator, ProfileCtx};

/// Emits NULL with a configured probability, otherwise delegates to the
/// wrapped generator. Listing 1 wraps `l_comment`'s Markov generator in a
/// `gen_NullGenerator`.
pub struct NullGenerator {
    probability: f64,
    inner: Arc<dyn Generator>,
}

impl NullGenerator {
    /// NULL with probability `probability`, else `inner`'s value.
    pub fn new(probability: f64, inner: Arc<dyn Generator>) -> Self {
        assert!((0.0..=1.0).contains(&probability));
        Self { probability, inner }
    }
}

impl Generator for NullGenerator {
    #[inline]
    fn generate(&self, ctx: &mut GenContext<'_>) -> Value {
        // One draw decides NULL-ness even at probability 0 or 1, keeping
        // the wrapped generator's stream position independent of the
        // configured probability.
        let is_null = ctx.rng.next_f64() < self.probability;
        if is_null {
            Value::Null
        } else {
            self.inner.generate(ctx)
        }
    }

    fn name(&self) -> &'static str {
        "NullGenerator"
    }

    fn profile(&self, ctx: &ProfileCtx<'_>) -> StaticProfile {
        absint::null_wrap(self.probability, self.inner.profile(ctx), ctx.rows)
    }

    fn contract(&self) -> DrawContract {
        lineage::null_wrap_contract(self.probability, self.inner.contract())
    }
}

/// Concatenates the textual renderings of its parts — the paper's
/// "value that consists of a formula that references 2 double values and
/// concatenates it with a long" is a `SequentialGenerator` of three parts.
pub struct SequentialGenerator {
    parts: Vec<Arc<dyn Generator>>,
    separator: String,
}

impl SequentialGenerator {
    /// Concatenate `parts` joined by `separator`.
    pub fn new(parts: Vec<Arc<dyn Generator>>, separator: String) -> Self {
        assert!(!parts.is_empty(), "no parts");
        Self { parts, separator }
    }
}

impl Generator for SequentialGenerator {
    fn generate(&self, ctx: &mut GenContext<'_>) -> Value {
        // Taking `concat` leaves an empty (unallocated) String behind, so
        // a nested SequentialGenerator part still works — it just builds
        // into a fresh buffer for that cell.
        let mut out = std::mem::take(&mut ctx.scratch.concat);
        out.clear();
        for (i, part) in self.parts.iter().enumerate() {
            if i > 0 {
                out.push_str(&self.separator);
            }
            let v = part.generate(ctx);
            write!(out, "{v}").expect("writing to String cannot fail");
        }
        let v = Value::text(out.as_str());
        ctx.scratch.concat = out;
        v
    }

    fn name(&self) -> &'static str {
        "SequentialGenerator"
    }

    fn profile(&self, ctx: &ProfileCtx<'_>) -> StaticProfile {
        let parts: Vec<StaticProfile> = self.parts.iter().map(|p| p.profile(ctx)).collect();
        let sep_bytes = u32::try_from(self.separator.len()).unwrap_or(u32::MAX);
        absint::concat(&parts, sep_bytes, self.separator.is_ascii(), ctx.rows)
    }

    fn contract(&self) -> DrawContract {
        self.parts
            .iter()
            .map(|p| p.contract())
            .fold(DrawContract::exact(0), DrawContract::plus)
    }
}

/// Executes one of several generators chosen by probability ("execute
/// different generators based on certain conditions").
pub struct ProbabilityGenerator {
    /// Cumulative upper bounds paired with branch generators.
    cumulative: Vec<(f64, Arc<dyn Generator>)>,
}

impl ProbabilityGenerator {
    /// Branches as `(probability, generator)`; probabilities must sum to
    /// approximately 1.
    pub fn new(branches: Vec<(f64, Arc<dyn Generator>)>) -> Self {
        assert!(!branches.is_empty(), "no branches");
        let total: f64 = branches.iter().map(|(p, _)| *p).sum();
        assert!((total - 1.0).abs() < 1e-6, "probabilities sum to {total}");
        let mut acc = 0.0;
        let cumulative = branches
            .into_iter()
            .map(|(p, g)| {
                acc += p;
                (acc, g)
            })
            .collect();
        Self { cumulative }
    }
}

impl Generator for ProbabilityGenerator {
    #[inline]
    fn generate(&self, ctx: &mut GenContext<'_>) -> Value {
        let draw = ctx.rng.next_f64();
        for (bound, g) in &self.cumulative {
            if draw < *bound {
                return g.generate(ctx);
            }
        }
        // Floating point rounding can leave the last bound at 0.999...;
        // the final branch catches the residual mass.
        self.cumulative
            .last()
            .expect("at least one branch")
            .1
            .generate(ctx)
    }

    fn fill_column(
        &self,
        ctx: &ColumnCtx<'_>,
        rows: Range<u64>,
        out: &mut ColumnVec,
        scratch: &mut GenScratch,
    ) {
        if !crate::column::fill_probability_static(&self.cumulative, ctx, rows.clone(), out) {
            crate::column::fill_cells(self, ctx, rows, out, scratch);
        }
    }

    fn name(&self) -> &'static str {
        "ProbabilityGenerator"
    }

    fn profile(&self, ctx: &ProfileCtx<'_>) -> StaticProfile {
        // Recover per-branch probabilities from the cumulative bounds.
        let mut prev = 0.0f64;
        let branches: Vec<(f64, StaticProfile)> = self
            .cumulative
            .iter()
            .map(|(bound, g)| {
                let p = (bound - prev).max(0.0);
                prev = *bound;
                (p, g.profile(ctx))
            })
            .collect();
        absint::choose(&branches, ctx.rows)
    }

    fn contract(&self) -> DrawContract {
        // One draw selects the branch, then the branch draws.
        let joined = self
            .cumulative
            .iter()
            .map(|(_, g)| g.contract())
            .reduce(DrawContract::join)
            .unwrap_or_else(|| DrawContract::exact(0));
        DrawContract::exact(1).plus(joined)
    }
}

/// Evaluates an arithmetic formula over the project properties and the
/// current row number (bound to `${ROW}`, zero-based).
pub struct FormulaGenerator {
    expr: Expr,
    props: BTreeMap<String, f64>,
    as_long: bool,
}

impl FormulaGenerator {
    /// Formula generator over pre-resolved properties.
    pub fn new(expr: Expr, props: BTreeMap<String, f64>, as_long: bool) -> Self {
        Self {
            expr,
            props,
            as_long,
        }
    }
}

impl Generator for FormulaGenerator {
    fn generate(&self, ctx: &mut GenContext<'_>) -> Value {
        let row = ctx.row as f64;
        let v = self
            .expr
            .eval(&|name| {
                if name == "ROW" {
                    Some(row)
                } else {
                    self.props.get(name).copied()
                }
            })
            .unwrap_or(f64::NAN);
        if self.as_long {
            Value::Long(v.round() as i64)
        } else {
            Value::Double(v)
        }
    }

    fn fill_column(
        &self,
        _ctx: &ColumnCtx<'_>,
        rows: Range<u64>,
        out: &mut ColumnVec,
        _scratch: &mut GenScratch,
    ) {
        crate::column::fill_formula(&self.expr, &self.props, self.as_long, rows, out);
    }

    fn name(&self) -> &'static str {
        "FormulaGenerator"
    }

    fn profile(&self, ctx: &ProfileCtx<'_>) -> StaticProfile {
        absint::formula_profile(&self.expr, &self.props, ctx.rows, self.as_long)
    }

    fn contract(&self) -> DrawContract {
        DrawContract::exact(0)
    }
}

/// Truncates text values to a column's declared character width — the
/// behaviour of dbgen-style generators writing into CHAR/VARCHAR columns.
/// Applied automatically by the schema runtime to text-typed fields.
/// Truncation never splits a word unless the first word alone overflows.
pub struct TruncateGenerator {
    inner: Arc<dyn Generator>,
    max_chars: usize,
}

impl TruncateGenerator {
    /// Cap `inner`'s text output at `max_chars` characters.
    pub fn new(inner: Arc<dyn Generator>, max_chars: usize) -> Self {
        assert!(max_chars > 0, "zero-width text column");
        Self { inner, max_chars }
    }
}

impl Generator for TruncateGenerator {
    #[inline]
    fn generate(&self, ctx: &mut GenContext<'_>) -> Value {
        let v = self.inner.generate(ctx);
        match &v {
            Value::Text(s) if s.chars().count() > self.max_chars => {
                let head: String = s.chars().take(self.max_chars).collect();
                let next_char = s.chars().nth(self.max_chars);
                if next_char == Some(' ') {
                    // The cut falls exactly on a word end: keep the head.
                    Value::text(head)
                } else {
                    // Prefer cutting at the last word boundary.
                    match head.rfind(' ') {
                        Some(pos) if pos > 0 => Value::text(head[..pos].to_string()),
                        _ => Value::text(head),
                    }
                }
            }
            _ => v,
        }
    }

    fn fill_column(
        &self,
        ctx: &ColumnCtx<'_>,
        rows: Range<u64>,
        out: &mut ColumnVec,
        scratch: &mut GenScratch,
    ) {
        crate::column::fill_truncate(self.inner.as_ref(), self.max_chars, ctx, rows, out, scratch);
    }

    fn name(&self) -> &'static str {
        "TruncateGenerator"
    }

    fn profile(&self, ctx: &ProfileCtx<'_>) -> StaticProfile {
        let max_chars = u32::try_from(self.max_chars).unwrap_or(u32::MAX);
        absint::truncate(self.inner.profile(ctx), max_chars)
    }

    fn contract(&self) -> DrawContract {
        // Truncation is a pure post-processing step over the inner stream.
        self.inner.contract()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::{LongGenerator, StaticValueGenerator};
    use crate::generator::GenContext;
    use crate::runtime::SchemaRuntime;

    fn gen_with_seed(g: &dyn Generator, seed: u64, row: u64) -> Value {
        let rt = SchemaRuntime::empty_for_tests();
        let mut ctx = GenContext::new(&rt, seed, row, 0);
        g.generate(&mut ctx)
    }

    fn static_text(s: &str) -> Arc<dyn Generator> {
        Arc::new(StaticValueGenerator::new(Value::text(s)))
    }

    #[test]
    fn null_generator_extremes() {
        let all_null = NullGenerator::new(1.0, static_text("x"));
        let never_null = NullGenerator::new(0.0, static_text("x"));
        for seed in 0..100u64 {
            assert!(gen_with_seed(&all_null, seed, 0).is_null());
            assert_eq!(gen_with_seed(&never_null, seed, 0), Value::text("x"));
        }
    }

    #[test]
    fn null_generator_calibration() {
        let g = NullGenerator::new(0.25, static_text("x"));
        let nulls = (0..10_000u64)
            .filter(|&s| gen_with_seed(&g, s, 0).is_null())
            .count();
        let frac = nulls as f64 / 10_000.0;
        assert!((0.23..0.27).contains(&frac), "frac {frac}");
    }

    #[test]
    fn null_wrapper_keeps_inner_stream_aligned() {
        // The inner generator must see the same stream position whether
        // the probability is 0.0 or 0.4 (on non-null draws the wrapper
        // consumed exactly one draw in both cases).
        let inner = Arc::new(LongGenerator::new(0, i64::MAX));
        let p0 = NullGenerator::new(0.0, inner.clone());
        let p4 = NullGenerator::new(0.4, inner);
        for seed in 0..200u64 {
            let v4 = gen_with_seed(&p4, seed, 0);
            if !v4.is_null() {
                assert_eq!(gen_with_seed(&p0, seed, 0), v4);
            }
        }
    }

    #[test]
    fn sequential_concatenates_with_separator() {
        let g = SequentialGenerator::new(
            vec![static_text("a"), static_text("b"), static_text("c")],
            "-".to_string(),
        );
        assert_eq!(gen_with_seed(&g, 1, 0), Value::text("a-b-c"));
    }

    #[test]
    fn sequential_renders_numbers_canonically() {
        let g = SequentialGenerator::new(
            vec![
                Arc::new(StaticValueGenerator::new(Value::Double(1.5))),
                Arc::new(StaticValueGenerator::new(Value::Long(7))),
            ],
            " ".to_string(),
        );
        assert_eq!(gen_with_seed(&g, 1, 0), Value::text("1.5 7"));
    }

    #[test]
    fn probability_branches_are_calibrated() {
        let g =
            ProbabilityGenerator::new(vec![(0.7, static_text("hot")), (0.3, static_text("cold"))]);
        let hots = (0..10_000u64)
            .filter(|&s| gen_with_seed(&g, s, 0) == Value::text("hot"))
            .count();
        let frac = hots as f64 / 10_000.0;
        assert!((0.68..0.72).contains(&frac), "frac {frac}");
    }

    #[test]
    fn formula_generator_uses_row_and_props() {
        let props: BTreeMap<String, f64> = [("BASE".to_string(), 100.0)].into();
        let g = FormulaGenerator::new(Expr::parse("${BASE} + ${ROW} % 7").unwrap(), props, true);
        assert_eq!(gen_with_seed(&g, 1, 0), Value::Long(100));
        assert_eq!(gen_with_seed(&g, 1, 13), Value::Long(106));
    }

    #[test]
    #[should_panic(expected = "probabilities sum")]
    fn probability_generator_rejects_bad_weights() {
        let _ = ProbabilityGenerator::new(vec![(0.5, static_text("x"))]);
    }

    #[test]
    fn truncate_cuts_at_word_boundaries() {
        let g = TruncateGenerator::new(static_text("carefully final deposits"), 15);
        assert_eq!(gen_with_seed(&g, 1, 0), Value::text("carefully final"));
        let g2 = TruncateGenerator::new(static_text("carefully final deposits"), 12);
        assert_eq!(gen_with_seed(&g2, 1, 0), Value::text("carefully"));
        // First word longer than the cap: hard cut.
        let g3 = TruncateGenerator::new(static_text("incomprehensibilities"), 6);
        assert_eq!(gen_with_seed(&g3, 1, 0), Value::text("incomp"));
        // Short text and non-text pass through untouched.
        let g4 = TruncateGenerator::new(static_text("ok"), 10);
        assert_eq!(gen_with_seed(&g4, 1, 0), Value::text("ok"));
        let g5 =
            TruncateGenerator::new(Arc::new(StaticValueGenerator::new(Value::Long(1234567))), 3);
        assert_eq!(gen_with_seed(&g5, 1, 0), Value::Long(1234567));
    }
}
