//! Text generators backed by DBSynth-built models: dictionaries and
//! Markov chains.

use std::sync::Arc;
use textsynth::{Dictionary, MarkovModel};

use std::ops::Range;

use pdgf_schema::ColumnVec;

use crate::generator::{ColumnCtx, GenContext, GenScratch, Generator, ProfileCtx};
use pdgf_schema::absint::{self, Draws, ResourceInfo, StaticProfile};
use pdgf_schema::lineage::{markov_draw_count, DrawContract};
use pdgf_schema::Value;

/// Entry statistics of an already-resolved dictionary.
fn dict_info(dict: &Dictionary) -> ResourceInfo {
    absint::entries_info(dict.iter().map(|(t, _)| t.as_ref()))
}

/// Draws entries from a dictionary ("DictList" in the paper's figures),
/// uniformly or proportionally to extracted frequencies.
pub struct DictListGenerator {
    dict: Arc<Dictionary>,
    weighted: bool,
}

impl DictListGenerator {
    /// Dictionary generator; `weighted` selects alias-method frequency
    /// sampling over uniform draws.
    pub fn new(dict: Arc<Dictionary>, weighted: bool) -> Self {
        Self { dict, weighted }
    }
}

impl Generator for DictListGenerator {
    #[inline]
    fn generate(&self, ctx: &mut GenContext<'_>) -> Value {
        let mut draw = || ctx.rng.next_u64();
        let entry = if self.weighted {
            self.dict.sample_weighted(&mut draw)
        } else {
            self.dict.sample_uniform(&mut draw)
        };
        Value::Text(entry.clone())
    }

    fn fill_column(
        &self,
        ctx: &ColumnCtx<'_>,
        rows: Range<u64>,
        out: &mut ColumnVec,
        _scratch: &mut GenScratch,
    ) {
        crate::column::fill_dict(&self.dict, self.weighted, ctx, rows, out);
    }

    fn name(&self) -> &'static str {
        "DictListGenerator"
    }

    fn profile(&self, _ctx: &ProfileCtx<'_>) -> StaticProfile {
        absint::dict_profile(Some(dict_info(&self.dict)))
    }

    fn contract(&self) -> DrawContract {
        // Both uniform and alias-method weighted sampling cost one draw.
        DrawContract::exact(1)
    }
}

/// Deterministically maps row `r` to dictionary entry `r mod len` —
/// enumeration tables (TPC-H region/nation) whose name is a pure function
/// of the key.
pub struct DictByRowGenerator {
    dict: Arc<Dictionary>,
}

impl DictByRowGenerator {
    /// Row-indexed dictionary generator.
    pub fn new(dict: Arc<Dictionary>) -> Self {
        Self { dict }
    }
}

impl Generator for DictByRowGenerator {
    #[inline]
    fn generate(&self, ctx: &mut GenContext<'_>) -> Value {
        let idx = (ctx.row % self.dict.len() as u64) as usize;
        Value::Text(self.dict.entry(idx).clone())
    }

    fn fill_column(
        &self,
        ctx: &ColumnCtx<'_>,
        rows: Range<u64>,
        out: &mut ColumnVec,
        _scratch: &mut GenScratch,
    ) {
        crate::column::fill_dict_by_row(&self.dict, ctx, rows, out);
    }

    fn name(&self) -> &'static str {
        "DictByRowGenerator"
    }

    fn profile(&self, ctx: &ProfileCtx<'_>) -> StaticProfile {
        absint::dict_by_row_profile(Some(dict_info(&self.dict)), ctx.rows)
    }

    fn contract(&self) -> DrawContract {
        DrawContract::exact(0)
    }
}

use pdgf_prng::PdgfRng;

/// Generates free text from a Markov chain model with a word count drawn
/// uniformly from `[min_words, max_words]` — the generator DBSynth
/// configures for sampled free-text columns (Listing 1's `l_comment`).
pub struct MarkovChainGenerator {
    model: Arc<MarkovModel>,
    min_words: u32,
    max_words: u32,
}

impl MarkovChainGenerator {
    /// Markov text generator over the inclusive word-count range.
    pub fn new(model: Arc<MarkovModel>, min_words: u32, max_words: u32) -> Self {
        assert!(min_words <= max_words, "empty word-count range");
        Self {
            model,
            min_words,
            max_words,
        }
    }

    /// The underlying model (exposed for statistics reporting).
    pub fn model(&self) -> &Arc<MarkovModel> {
        &self.model
    }
}

impl Generator for MarkovChainGenerator {
    fn generate(&self, ctx: &mut GenContext<'_>) -> Value {
        let mut out = std::mem::take(&mut ctx.scratch.text);
        out.clear();
        let mut draw = || ctx.rng.next_u64();
        self.model
            .generate_range_into(&mut draw, self.min_words, self.max_words, &mut out);
        let v = Value::text(out.as_str());
        ctx.scratch.text = out;
        v
    }

    fn fill_column(
        &self,
        ctx: &ColumnCtx<'_>,
        rows: Range<u64>,
        out: &mut ColumnVec,
        _scratch: &mut GenScratch,
    ) {
        crate::column::fill_markov(&self.model, self.min_words, self.max_words, ctx, rows, out);
    }

    fn name(&self) -> &'static str {
        "MarkovChainGenerator"
    }

    fn profile(&self, _ctx: &ProfileCtx<'_>) -> StaticProfile {
        let info = absint::entries_info(self.model.words());
        absint::markov_profile(Some(info), self.min_words, self.max_words)
    }

    fn contract(&self) -> DrawContract {
        DrawContract::from_draws(Draws {
            min: markov_draw_count(self.min_words),
            max: markov_draw_count(self.max_words),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::GenContext;
    use crate::runtime::SchemaRuntime;
    use textsynth::MarkovBuilder;

    fn dict() -> Arc<Dictionary> {
        Arc::new(
            Dictionary::new(vec![
                ("alpha".into(), 8.0),
                ("beta".into(), 1.0),
                ("gamma".into(), 1.0),
            ])
            .unwrap(),
        )
    }

    fn markov() -> Arc<MarkovModel> {
        let mut b = MarkovBuilder::new();
        b.feed("quick deposits sleep quickly");
        b.feed("quick packages haggle");
        Arc::new(b.build().unwrap())
    }

    fn gen_with_seed(g: &dyn Generator, seed: u64) -> Value {
        let rt = SchemaRuntime::empty_for_tests();
        let mut ctx = GenContext::new(&rt, seed, 0, 0);
        g.generate(&mut ctx)
    }

    #[test]
    fn dict_generator_draws_known_entries() {
        let g = DictListGenerator::new(dict(), false);
        for seed in 0..100u64 {
            let v = gen_with_seed(&g, seed);
            assert!(matches!(v.as_text(), Some("alpha" | "beta" | "gamma")));
        }
    }

    #[test]
    fn weighted_dict_prefers_heavy_entries() {
        let g = DictListGenerator::new(dict(), true);
        let alphas = (0..5000u64)
            .filter(|&s| gen_with_seed(&g, s).as_text() == Some("alpha"))
            .count();
        let frac = alphas as f64 / 5000.0;
        assert!((0.75..0.85).contains(&frac), "frac {frac}");
    }

    #[test]
    fn markov_generator_word_counts_in_range() {
        let g = MarkovChainGenerator::new(markov(), 2, 6);
        for seed in 0..200u64 {
            let v = gen_with_seed(&g, seed);
            let n = v.as_text().unwrap().split_whitespace().count();
            assert!((2..=6).contains(&n), "{n} words");
        }
    }

    #[test]
    fn text_generators_are_deterministic() {
        let g = MarkovChainGenerator::new(markov(), 1, 10);
        assert_eq!(gen_with_seed(&g, 99), gen_with_seed(&g, 99));
        let d = DictListGenerator::new(dict(), true);
        assert_eq!(gen_with_seed(&d, 7), gen_with_seed(&d, 7));
    }
}
