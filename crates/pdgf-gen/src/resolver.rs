//! Resolution of external resources referenced by a model.
//!
//! A DBSynth-generated model references dictionaries and Markov models by
//! file path (`markov/l_comment_markovSamples.bin`). The runtime resolves
//! those references through this trait so tests and demos can supply
//! in-memory resources while production loads from disk.

use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

use textsynth::{Dictionary, MarkovModel};

/// Resource resolution failure.
#[derive(Debug, Clone)]
pub struct ResolveError(pub String);

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "resolve error: {}", self.0)
    }
}

impl std::error::Error for ResolveError {}

/// Supplies dictionaries and Markov models for `File(...)` references.
pub trait ResourceResolver {
    /// Load the dictionary at `path`.
    fn dictionary(&self, path: &str) -> Result<Arc<Dictionary>, ResolveError>;
    /// Load the Markov model at `path`.
    fn markov(&self, path: &str) -> Result<Arc<MarkovModel>, ResolveError>;
}

/// In-memory resolver for tests, demos, and models with only inline
/// resources. Unknown paths are errors.
#[derive(Default)]
pub struct MapResolver {
    dicts: BTreeMap<String, Arc<Dictionary>>,
    markovs: BTreeMap<String, Arc<MarkovModel>>,
}

impl MapResolver {
    /// Empty resolver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a dictionary under `path`.
    pub fn with_dictionary(mut self, path: &str, dict: Dictionary) -> Self {
        self.dicts.insert(path.to_string(), Arc::new(dict));
        self
    }

    /// Register a Markov model under `path`.
    pub fn with_markov(mut self, path: &str, model: MarkovModel) -> Self {
        self.markovs.insert(path.to_string(), Arc::new(model));
        self
    }
}

impl ResourceResolver for MapResolver {
    fn dictionary(&self, path: &str) -> Result<Arc<Dictionary>, ResolveError> {
        self.dicts
            .get(path)
            .cloned()
            .ok_or_else(|| ResolveError(format!("unknown dictionary {path:?}")))
    }

    fn markov(&self, path: &str) -> Result<Arc<MarkovModel>, ResolveError> {
        self.markovs
            .get(path)
            .cloned()
            .ok_or_else(|| ResolveError(format!("unknown markov model {path:?}")))
    }
}

/// Adapter presenting a [`ResourceResolver`] as an abstract-interpretation
/// [`ResourceOracle`](pdgf_schema::absint::ResourceOracle): resources that
/// resolve report their exact entry statistics, unresolvable resources
/// stay unknown (the interpreter then assumes nothing about them).
pub struct ResolverOracle<'a>(pub &'a dyn ResourceResolver);

impl pdgf_schema::absint::ResourceOracle for ResolverOracle<'_> {
    fn dictionary(&self, path: &str) -> Option<pdgf_schema::absint::ResourceInfo> {
        let dict = self.0.dictionary(path).ok()?;
        Some(pdgf_schema::absint::entries_info(
            dict.iter().map(|(t, _)| t.as_ref()),
        ))
    }

    fn markov(&self, path: &str) -> Option<pdgf_schema::absint::ResourceInfo> {
        let model = self.0.markov(path).ok()?;
        Some(pdgf_schema::absint::entries_info(model.words()))
    }
}

/// Filesystem resolver rooted at a base directory, with a cache so a model
/// referenced by many fields is loaded once.
pub struct FsResolver {
    base: PathBuf,
    dict_cache: parking_lot::Mutex<BTreeMap<String, Arc<Dictionary>>>,
    markov_cache: parking_lot::Mutex<BTreeMap<String, Arc<MarkovModel>>>,
}

impl FsResolver {
    /// Resolver loading paths relative to `base`.
    pub fn new(base: impl Into<PathBuf>) -> Self {
        Self {
            base: base.into(),
            dict_cache: parking_lot::Mutex::new(BTreeMap::new()),
            markov_cache: parking_lot::Mutex::new(BTreeMap::new()),
        }
    }
}

impl ResourceResolver for FsResolver {
    fn dictionary(&self, path: &str) -> Result<Arc<Dictionary>, ResolveError> {
        if let Some(d) = self.dict_cache.lock().get(path) {
            return Ok(d.clone());
        }
        let full = self.base.join(path);
        let data = std::fs::read_to_string(&full)
            .map_err(|e| ResolveError(format!("reading {}: {e}", full.display())))?;
        let dict = Arc::new(
            Dictionary::from_file_format(&data)
                .map_err(|e| ResolveError(format!("{}: {e}", full.display())))?,
        );
        self.dict_cache
            .lock()
            .insert(path.to_string(), dict.clone());
        Ok(dict)
    }

    fn markov(&self, path: &str) -> Result<Arc<MarkovModel>, ResolveError> {
        if let Some(m) = self.markov_cache.lock().get(path) {
            return Ok(m.clone());
        }
        let full = self.base.join(path);
        let data = std::fs::read(&full)
            .map_err(|e| ResolveError(format!("reading {}: {e}", full.display())))?;
        let model = Arc::new(
            MarkovModel::from_bytes(&data)
                .map_err(|e| ResolveError(format!("{}: {e}", full.display())))?,
        );
        self.markov_cache
            .lock()
            .insert(path.to_string(), model.clone());
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use textsynth::MarkovBuilder;

    #[test]
    fn map_resolver_round_trip() {
        let dict = Dictionary::new(vec![("x".into(), 1.0)]).unwrap();
        let mut b = MarkovBuilder::new();
        b.feed("a b c");
        let model = b.build().unwrap();
        let r = MapResolver::new()
            .with_dictionary("d", dict)
            .with_markov("m", model);
        assert!(r.dictionary("d").is_ok());
        assert!(r.markov("m").is_ok());
        assert!(r.dictionary("missing").is_err());
        assert!(r.markov("missing").is_err());
    }

    #[test]
    fn fs_resolver_loads_and_caches() {
        let dir = std::env::temp_dir().join(format!("pdgf-resolver-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("colors.dict"), "3\tred\n1\tblue\n").unwrap();
        let mut b = MarkovBuilder::new();
        b.feed("one two three");
        std::fs::write(dir.join("m.bin"), b.build().unwrap().to_bytes()).unwrap();

        let r = FsResolver::new(&dir);
        let d1 = r.dictionary("colors.dict").unwrap();
        let d2 = r.dictionary("colors.dict").unwrap();
        assert!(Arc::ptr_eq(&d1, &d2), "cache must return the same instance");
        assert_eq!(d1.len(), 2);
        let m = r.markov("m.bin").unwrap();
        assert_eq!(m.word_count(), 3);
        assert!(r.dictionary("nope.dict").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
