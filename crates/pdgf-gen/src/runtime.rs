//! The executable schema runtime.
//!
//! [`SchemaRuntime::build`] compiles a validated
//! [`Schema`] into generator pipelines and exposes
//! PDGF's fundamental operation: [`SchemaRuntime::value`], a pure function
//! from `(table, column, update, row)` to a [`Value`]. Everything above
//! (workers, work packages, nodes) is mere orchestration of this function.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use pdgf_prng::{mix64_pair, FieldCoord, SeedTree, Zipf};
use pdgf_schema::absint::StaticProfile;
use pdgf_schema::lineage::DrawContract;
use pdgf_schema::model::{DictSource, GeneratorSpec, MarkovSource, RefDistribution};
use pdgf_schema::{ColumnBatch, Schema, SqlType, Value};
use textsynth::{Dictionary, MarkovModel};

use crate::basic::{
    DateGenerator, DecimalGenerator, DoubleGenerator, IdGenerator, LongGenerator,
    RandomBoolGenerator, RandomStringGenerator, StaticValueGenerator, TimestampGenerator,
};
use crate::generator::{ColumnCtx, GenContext, GenScratch, Generator, ProfileCtx};
use crate::meta::{FormulaGenerator, NullGenerator, ProbabilityGenerator, SequentialGenerator};
use crate::reference::{RefStrategy, ReferenceGenerator};
use crate::resolver::ResourceResolver;
use crate::text::{DictListGenerator, MarkovChainGenerator};

/// Runtime construction failure.
#[derive(Debug, Clone)]
pub struct BuildError(pub String);

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "build error: {}", self.0)
    }
}

impl std::error::Error for BuildError {}

/// A compiled column: its metadata plus the generator pipeline.
pub struct ColumnRuntime {
    /// Column name.
    pub name: String,
    /// SQL type.
    pub sql_type: SqlType,
    /// Is this column part of the primary key?
    pub primary: bool,
    /// The compiled generator.
    pub generator: Arc<dyn Generator>,
}

/// A compiled table: resolved size plus compiled columns.
pub struct TableRuntime {
    /// Table name.
    pub name: String,
    /// Resolved row count under the model's properties.
    pub size: u64,
    /// Compiled columns in declaration order.
    pub columns: Vec<ColumnRuntime>,
}

/// A schema bound to concrete generators and a seeding hierarchy.
pub struct SchemaRuntime {
    name: String,
    seed: u64,
    seed_tree: SeedTree,
    tables: Vec<TableRuntime>,
    props: BTreeMap<String, f64>,
    generation_order: Vec<u32>,
    /// Per-(table, column) proven rendered-width bounds from the abstract
    /// interpreter, cached at build time so the columnar path can pre-size
    /// text arenas without re-running the profiler per package.
    width_hints: Vec<Vec<Option<u32>>>,
}

impl fmt::Debug for SchemaRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SchemaRuntime")
            .field("name", &self.name)
            .field("seed", &self.seed)
            .field("tables", &self.tables.len())
            .finish()
    }
}

impl SchemaRuntime {
    /// Compile `schema` (validated first) against `resolver` for external
    /// dictionaries and Markov models.
    pub fn build(schema: &Schema, resolver: &dyn ResourceResolver) -> Result<Self, BuildError> {
        let analysis = schema.analyze();
        if let Some(d) = analysis.first_error() {
            return Err(BuildError(format!("schema error: {}", d.message)));
        }
        let generation_order = analysis.generation_order;
        let props = schema
            .properties
            .resolve_all()
            .map_err(|e| BuildError(e.to_string()))?;

        // Resolve all table sizes first: reference generators need them.
        let sizes: Vec<u64> = schema
            .tables
            .iter()
            .map(|t| schema.table_size(t).map_err(|e| BuildError(e.to_string())))
            .collect::<Result<_, _>>()?;

        let column_counts: Vec<u32> = schema
            .tables
            .iter()
            .map(|t| t.fields.len() as u32)
            .collect();
        let seed_tree = SeedTree::new(schema.seed, &column_counts);

        let builder = GeneratorBuilder {
            schema,
            sizes: &sizes,
            props: &props,
            resolver,
            seed_tree: &seed_tree,
        };
        let tables = schema
            .tables
            .iter()
            .enumerate()
            .map(|(t_idx, t)| {
                let columns = t
                    .fields
                    .iter()
                    .enumerate()
                    .map(|(c_idx, f)| {
                        let mut generator = builder
                            .build_spec(&f.generator, t_idx as u32, c_idx as u32, sizes[t_idx])
                            .map_err(|e| BuildError(format!("{}.{}: {}", t.name, f.name, e.0)))?;
                        // Text columns truncate overflowing values to the
                        // declared width, as dbgen-style generators do.
                        if f.sql_type.is_text() && f.size > 0 {
                            generator = Arc::new(crate::meta::TruncateGenerator::new(
                                generator,
                                f.size as usize,
                            ));
                        }
                        Ok(ColumnRuntime {
                            name: f.name.clone(),
                            sql_type: f.sql_type,
                            primary: f.primary,
                            generator,
                        })
                    })
                    .collect::<Result<Vec<_>, BuildError>>()?;
                Ok(TableRuntime {
                    name: t.name.clone(),
                    size: sizes[t_idx],
                    columns,
                })
            })
            .collect::<Result<Vec<_>, BuildError>>()?;

        let mut rt = Self {
            name: schema.name.clone(),
            seed: schema.seed,
            seed_tree,
            tables,
            props,
            generation_order,
            width_hints: Vec::new(),
        };
        rt.width_hints = rt
            .profiles()
            .iter()
            .map(|cols| cols.iter().map(|p| p.width.bound()).collect())
            .collect();
        Ok(rt)
    }

    /// Testing hook: a runtime with no tables, usable as a [`GenContext`]
    /// carrier for leaf-generator unit tests.
    pub fn empty_for_tests() -> Self {
        Self {
            name: "empty".to_string(),
            seed: 0,
            seed_tree: SeedTree::new(0, &[]),
            tables: Vec::new(),
            props: BTreeMap::new(),
            generation_order: Vec::new(),
            width_hints: Vec::new(),
        }
    }

    /// Project name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Project seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Resolved properties (`SF` and friends).
    pub fn properties(&self) -> &BTreeMap<String, f64> {
        &self.props
    }

    /// Compiled tables.
    pub fn tables(&self) -> &[TableRuntime] {
        &self.tables
    }

    /// Table indices in dependency order: referenced (parent) tables come
    /// before the tables referencing them, derived by the schema
    /// analyzer's toposort. Schedulers start jobs in this order so parent
    /// tables finish earliest, without affecting output bytes (every cell
    /// is position-determined).
    pub fn generation_order(&self) -> &[u32] {
        &self.generation_order
    }

    /// Static profiles of every column, per table in declaration order.
    ///
    /// Profiles are computed bottom-up along the generation order so a
    /// reference generator can import its target column's already-computed
    /// profile; every bound is proven over everything the compiled
    /// generators can emit.
    pub fn profiles(&self) -> Vec<Vec<StaticProfile>> {
        let mut memo: BTreeMap<(u32, u32), StaticProfile> = BTreeMap::new();
        for &t in &self.generation_order {
            let table = &self.tables[t as usize];
            for (c, col) in table.columns.iter().enumerate() {
                let ctx = ProfileCtx {
                    rows: table.size,
                    columns: &memo,
                };
                let p = col.generator.profile(&ctx);
                memo.insert((t, c as u32), p);
            }
        }
        self.tables
            .iter()
            .enumerate()
            .map(|(t, table)| {
                (0..table.columns.len())
                    .map(|c| {
                        memo.remove(&(t as u32, c as u32))
                            .unwrap_or_else(StaticProfile::unknown)
                    })
                    .collect()
            })
            .collect()
    }

    /// Declared seed-lineage contracts of every column, per table in
    /// declaration order. These are the *runtime's* declarations — `pdgf
    /// prove` cross-checks them against the contracts derived from the
    /// schema description and against actual PRNG consumption.
    pub fn contracts(&self) -> Vec<Vec<DrawContract>> {
        self.tables
            .iter()
            .map(|table| {
                table
                    .columns
                    .iter()
                    .map(|col| col.generator.contract())
                    .collect()
            })
            .collect()
    }

    /// The value of one cell together with the number of PRNG draws its
    /// generator consumed from the cell's seed stream — the dynamic side
    /// of the draw-contract proof. Pure in `(self, table, column, update,
    /// row)` and byte-identical to [`SchemaRuntime::value`].
    pub fn value_counting(&self, table: u32, column: u32, update: u32, row: u64) -> (Value, u64) {
        let coord = FieldCoord {
            table,
            column,
            update,
            row,
        };
        let seed = self.seed_tree.field_seed(coord);
        let mut ctx = GenContext::new(self, seed, row, update);
        let generator = &self.tables[table as usize].columns[column as usize].generator;
        let value = generator.generate(&mut ctx);
        (value, ctx.rng.draws())
    }

    /// Compiled table by name.
    pub fn table_by_name(&self, name: &str) -> Option<(u32, &TableRuntime)> {
        self.tables
            .iter()
            .position(|t| t.name == name)
            .map(|i| (i as u32, &self.tables[i]))
    }

    /// The fundamental operation: the value of one cell, computed from
    /// scratch. Pure in `(self, table, column, update, row)`.
    #[inline]
    pub fn value(&self, table: u32, column: u32, update: u32, row: u64) -> Value {
        let mut scratch = GenScratch::default();
        self.value_with_scratch(table, column, update, row, &mut scratch)
    }

    /// [`value`](Self::value) with caller-provided string scratch, so
    /// text-building generators reuse capacity across cells. The result
    /// is identical to [`value`](Self::value) — the scratch only carries
    /// buffer capacity, never data.
    #[inline]
    pub fn value_with_scratch(
        &self,
        table: u32,
        column: u32,
        update: u32,
        row: u64,
        scratch: &mut GenScratch,
    ) -> Value {
        let coord = FieldCoord {
            table,
            column,
            update,
            row,
        };
        let seed = self.seed_tree.field_seed(coord);
        let mut ctx = GenContext::new(self, seed, row, update);
        std::mem::swap(&mut ctx.scratch, scratch);
        let v = self.tables[table as usize].columns[column as usize]
            .generator
            .generate(&mut ctx);
        std::mem::swap(&mut ctx.scratch, scratch);
        v
    }

    /// Generate a full row into `out` (cleared first). Reuses the caller's
    /// buffer — this is the worker hot path.
    #[inline]
    pub fn row_into(&self, table: u32, update: u32, row: u64, out: &mut Vec<Value>) {
        let mut scratch = GenScratch::default();
        self.row_into_with_scratch(table, update, row, out, &mut scratch);
    }

    /// [`row_into`](Self::row_into) with caller-provided string scratch —
    /// the form the scheduler's workers use, one scratch per worker.
    #[inline]
    pub fn row_into_with_scratch(
        &self,
        table: u32,
        update: u32,
        row: u64,
        out: &mut Vec<Value>,
        scratch: &mut GenScratch,
    ) {
        out.clear();
        let t = &self.tables[table as usize];
        for column in 0..t.columns.len() as u32 {
            out.push(self.value_with_scratch(table, column, update, row, scratch));
        }
    }

    /// Generate a full row, allocating.
    pub fn row(&self, table: u32, update: u32, row: u64) -> Vec<Value> {
        let mut out = Vec::new();
        self.row_into(table, update, row, &mut out);
        out
    }

    /// The seed tree (exposed for the seed-cache ablation bench).
    pub fn seed_tree(&self) -> &SeedTree {
        &self.seed_tree
    }

    /// Generate `rows` of `table` at `update` as a batch of columns — the
    /// columnar twin of looping [`row_into_with_scratch`]
    /// (Self::row_into_with_scratch) over the range.
    ///
    /// The seeding prefix `(table, column, update)` is hoisted once per
    /// column into a [`ColumnCtx`], then each generator's
    /// [`fill_column`](Generator::fill_column) fills its typed storage.
    /// Cell values (and therefore formatted bytes) are identical to the
    /// row path for every generator, vectorized or not.
    pub fn fill_batch(
        &self,
        table: u32,
        update: u32,
        rows: std::ops::Range<u64>,
        batch: &mut ColumnBatch,
        scratch: &mut GenScratch,
    ) {
        let t = &self.tables[table as usize];
        let n_rows = rows.end.saturating_sub(rows.start) as usize;
        batch.begin(t.columns.len(), n_rows);
        let hints = self.width_hints.get(table as usize);
        for (c, (col, out)) in t.columns.iter().zip(batch.columns_mut()).enumerate() {
            let ctx = ColumnCtx {
                runtime: self,
                update_seed: self.seed_tree.update_seed(table, c as u32, update),
                update,
                width_hint: hints.and_then(|h| h.get(c).copied().flatten()),
            };
            col.generator.fill_column(&ctx, rows.clone(), out, scratch);
        }
        debug_assert!(
            batch.is_rectangular(),
            "fill_column produced a ragged batch for table {table}"
        );
    }
}

struct GeneratorBuilder<'a> {
    schema: &'a Schema,
    sizes: &'a [u64],
    props: &'a BTreeMap<String, f64>,
    resolver: &'a dyn ResourceResolver,
    seed_tree: &'a SeedTree,
}

impl GeneratorBuilder<'_> {
    fn eval(&self, expr: &pdgf_schema::Expr) -> Result<f64, BuildError> {
        expr.eval(&|n| self.props.get(n).copied())
            .map_err(|e| BuildError(e.to_string()))
    }

    fn eval_i64(&self, expr: &pdgf_schema::Expr) -> Result<i64, BuildError> {
        Ok(self.eval(expr)?.round() as i64)
    }

    fn build_spec(
        &self,
        spec: &GeneratorSpec,
        table: u32,
        column: u32,
        table_size: u64,
    ) -> Result<Arc<dyn Generator>, BuildError> {
        Ok(match spec {
            GeneratorSpec::Id { permute } => {
                if *permute {
                    let key = mix64_pair(self.seed_tree.column_seed(table, column), 0x1D);
                    Arc::new(IdGenerator::permuted(table_size, key))
                } else {
                    Arc::new(IdGenerator::sequential())
                }
            }
            GeneratorSpec::Long { min, max } => {
                Arc::new(LongGenerator::new(self.eval_i64(min)?, self.eval_i64(max)?))
            }
            GeneratorSpec::Double { min, max, decimals } => Arc::new(DoubleGenerator::new(
                self.eval(min)?,
                self.eval(max)?,
                *decimals,
            )),
            GeneratorSpec::Decimal { min, max, scale } => Arc::new(DecimalGenerator::new(
                self.eval_i64(min)?,
                self.eval_i64(max)?,
                *scale,
            )),
            GeneratorSpec::DateRange { min, max, format } => {
                Arc::new(DateGenerator::new(*min, *max, *format))
            }
            GeneratorSpec::TimestampRange { min, max } => {
                Arc::new(TimestampGenerator::new(*min, *max))
            }
            GeneratorSpec::RandomString { min_len, max_len } => {
                Arc::new(RandomStringGenerator::new(*min_len, *max_len))
            }
            GeneratorSpec::RandomBool { true_prob } => {
                Arc::new(RandomBoolGenerator::new(*true_prob))
            }
            GeneratorSpec::Dict { source, weighted } => {
                let dict: Arc<Dictionary> = match source {
                    DictSource::Inline { entries } => Arc::new(
                        Dictionary::new(entries.clone()).map_err(|e| BuildError(e.to_string()))?,
                    ),
                    DictSource::File(path) => self
                        .resolver
                        .dictionary(path)
                        .map_err(|e| BuildError(e.to_string()))?,
                };
                Arc::new(DictListGenerator::new(dict, *weighted))
            }
            GeneratorSpec::DictByRow { source } => {
                let dict: Arc<Dictionary> = match source {
                    DictSource::Inline { entries } => Arc::new(
                        Dictionary::new(entries.clone()).map_err(|e| BuildError(e.to_string()))?,
                    ),
                    DictSource::File(path) => self
                        .resolver
                        .dictionary(path)
                        .map_err(|e| BuildError(e.to_string()))?,
                };
                Arc::new(crate::text::DictByRowGenerator::new(dict))
            }
            GeneratorSpec::Markov {
                source,
                min_words,
                max_words,
            } => {
                let model: Arc<MarkovModel> = match source {
                    MarkovSource::Inline(text) => Arc::new(
                        MarkovModel::from_text(text).map_err(|e| BuildError(e.to_string()))?,
                    ),
                    MarkovSource::File(path) => self
                        .resolver
                        .markov(path)
                        .map_err(|e| BuildError(e.to_string()))?,
                };
                Arc::new(MarkovChainGenerator::new(model, *min_words, *max_words))
            }
            GeneratorSpec::Reference {
                table: t_name,
                field,
                distribution,
            } => {
                let t_idx = self
                    .schema
                    .table_index(t_name)
                    .ok_or_else(|| BuildError(format!("unknown table {t_name:?}")))?;
                let target = &self.schema.tables[t_idx];
                let c_idx = target
                    .field_index(field)
                    .ok_or_else(|| BuildError(format!("unknown field {t_name}.{field}")))?;
                let parent_size = self.sizes[t_idx];
                if parent_size == 0 {
                    return Err(BuildError(format!("reference into empty table {t_name:?}")));
                }
                let strategy = match distribution {
                    RefDistribution::Uniform => RefStrategy::Uniform,
                    RefDistribution::Zipf { theta } => {
                        RefStrategy::Zipf(Zipf::new(parent_size, *theta))
                    }
                    RefDistribution::Permutation => {
                        let key = mix64_pair(self.seed_tree.column_seed(table, column), 0x2E);
                        RefStrategy::Permutation(pdgf_prng::FeistelPermutation::new(
                            parent_size,
                            key,
                        ))
                    }
                };
                Arc::new(ReferenceGenerator::new(
                    t_idx as u32,
                    c_idx as u32,
                    parent_size,
                    strategy,
                ))
            }
            GeneratorSpec::Null { probability, inner } => {
                let inner = self.build_spec(inner, table, column, table_size)?;
                Arc::new(NullGenerator::new(*probability, inner))
            }
            GeneratorSpec::Static { value } => Arc::new(StaticValueGenerator::new(value.clone())),
            GeneratorSpec::Sequential { parts, separator } => {
                let parts = parts
                    .iter()
                    .map(|p| self.build_spec(p, table, column, table_size))
                    .collect::<Result<Vec<_>, _>>()?;
                Arc::new(SequentialGenerator::new(parts, separator.clone()))
            }
            GeneratorSpec::Probability { branches } => {
                let branches = branches
                    .iter()
                    .map(|(p, g)| Ok((*p, self.build_spec(g, table, column, table_size)?)))
                    .collect::<Result<Vec<_>, BuildError>>()?;
                Arc::new(ProbabilityGenerator::new(branches))
            }
            GeneratorSpec::Formula { expr, as_long } => Arc::new(FormulaGenerator::new(
                expr.clone(),
                self.props.clone(),
                *as_long,
            )),
            GeneratorSpec::HistogramNumeric {
                bounds,
                weights,
                output,
            } => Arc::new(crate::basic::HistogramGenerator::new(
                bounds.clone(),
                weights,
                *output,
            )),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolver::MapResolver;
    use pdgf_schema::{Expr, Field, Table};

    fn demo_schema() -> Schema {
        let mut s = Schema::new("demo", 12_456_789);
        s.properties.define("SF", "1").unwrap();
        s.table(
            Table::new("customer", "100 * ${SF}")
                .field(
                    Field::new(
                        "c_id",
                        SqlType::BigInt,
                        GeneratorSpec::Id { permute: false },
                    )
                    .primary(),
                )
                .field(Field::new(
                    "c_balance",
                    SqlType::Decimal(12, 2),
                    GeneratorSpec::Decimal {
                        min: Expr::parse("-99999").unwrap(),
                        max: Expr::parse("999999").unwrap(),
                        scale: 2,
                    },
                )),
        )
        .table(
            Table::new("orders", "1000 * ${SF}")
                .field(
                    Field::new("o_id", SqlType::BigInt, GeneratorSpec::Id { permute: true })
                        .primary(),
                )
                .field(Field::new(
                    "o_cust",
                    SqlType::BigInt,
                    GeneratorSpec::Reference {
                        table: "customer".into(),
                        field: "c_id".into(),
                        distribution: RefDistribution::Uniform,
                    },
                )),
        )
    }

    #[test]
    fn build_resolves_sizes_and_names() {
        let rt = SchemaRuntime::build(&demo_schema(), &MapResolver::new()).unwrap();
        assert_eq!(rt.name(), "demo");
        assert_eq!(rt.seed(), 12_456_789);
        assert_eq!(rt.tables().len(), 2);
        assert_eq!(rt.tables()[0].size, 100);
        assert_eq!(rt.tables()[1].size, 1000);
        let (idx, t) = rt.table_by_name("orders").unwrap();
        assert_eq!(idx, 1);
        assert_eq!(t.columns[1].name, "o_cust");
        assert_eq!(rt.properties()["SF"], 1.0);
        assert!(rt.table_by_name("nope").is_none());
    }

    #[test]
    fn values_are_pure_functions_of_coordinates() {
        let rt = SchemaRuntime::build(&demo_schema(), &MapResolver::new()).unwrap();
        let rt2 = SchemaRuntime::build(&demo_schema(), &MapResolver::new()).unwrap();
        for table in 0..2u32 {
            for row in [0u64, 1, 50, 99] {
                for col in 0..2u32 {
                    assert_eq!(rt.value(table, col, 0, row), rt2.value(table, col, 0, row));
                }
            }
        }
    }

    #[test]
    fn out_of_order_equals_in_order() {
        // Generating rows in any order yields the same data — the property
        // that makes parallel generation trivially correct.
        let rt = SchemaRuntime::build(&demo_schema(), &MapResolver::new()).unwrap();
        let forward: Vec<_> = (0..100).map(|r| rt.row(1, 0, r)).collect();
        let mut backward: Vec<_> = (0..100).rev().map(|r| rt.row(1, 0, r)).collect();
        backward.reverse();
        assert_eq!(forward, backward);
    }

    #[test]
    fn changing_project_seed_changes_every_value() {
        let a = SchemaRuntime::build(&demo_schema(), &MapResolver::new()).unwrap();
        let mut schema_b = demo_schema();
        schema_b.seed = 1;
        let b = SchemaRuntime::build(&schema_b, &MapResolver::new()).unwrap();
        // Random-valued columns must all differ; ID columns are row-determined.
        let diffs = (0..100u64)
            .filter(|&r| a.value(0, 1, 0, r) != b.value(0, 1, 0, r))
            .count();
        assert!(diffs > 95, "only {diffs} of 100 values changed");
    }

    #[test]
    fn update_epochs_have_independent_values() {
        let rt = SchemaRuntime::build(&demo_schema(), &MapResolver::new()).unwrap();
        let diffs = (0..100u64)
            .filter(|&r| rt.value(0, 1, 0, r) != rt.value(0, 1, 1, r))
            .count();
        assert!(diffs > 95, "update epochs too correlated: {diffs}");
    }

    #[test]
    fn row_into_reuses_buffer() {
        let rt = SchemaRuntime::build(&demo_schema(), &MapResolver::new()).unwrap();
        let mut buf = Vec::new();
        rt.row_into(0, 0, 3, &mut buf);
        assert_eq!(buf.len(), 2);
        let first = buf.clone();
        rt.row_into(0, 0, 4, &mut buf);
        assert_eq!(buf.len(), 2);
        assert_ne!(first[0], buf[0]);
    }

    #[test]
    fn generation_order_flips_child_before_parent() {
        // "orders" references "customer"; whatever the declaration order,
        // the derived generation order must put customer first.
        let rt = SchemaRuntime::build(&demo_schema(), &MapResolver::new()).unwrap();
        assert_eq!(rt.generation_order(), &[0, 1]);

        let mut flipped = Schema::new("demo2", 1);
        flipped.properties.define("SF", "1").unwrap();
        let orig = demo_schema();
        let flipped = flipped
            .table(orig.tables[1].clone())
            .table(orig.tables[0].clone());
        let rt = SchemaRuntime::build(&flipped, &MapResolver::new()).unwrap();
        assert_eq!(rt.generation_order(), &[1, 0]);
    }

    #[test]
    fn reference_cycles_are_rejected_at_build() {
        let mut s = Schema::new("cyc", 1);
        s = s
            .table(Table::new("a", "10").field(Field::new(
                "a_ref",
                SqlType::BigInt,
                GeneratorSpec::Reference {
                    table: "b".into(),
                    field: "b_ref".into(),
                    distribution: RefDistribution::Uniform,
                },
            )))
            .table(Table::new("b", "10").field(Field::new(
                "b_ref",
                SqlType::BigInt,
                GeneratorSpec::Reference {
                    table: "a".into(),
                    field: "a_ref".into(),
                    distribution: RefDistribution::Uniform,
                },
            )));
        let err = SchemaRuntime::build(&s, &MapResolver::new()).unwrap_err();
        assert!(err.0.contains("cycle"), "{err}");
    }

    #[test]
    fn reference_into_empty_table_is_rejected() {
        let mut s = Schema::new("empty", 1);
        s = s
            .table(Table::new("p", "0").field(Field::new(
                "p_id",
                SqlType::BigInt,
                GeneratorSpec::Id { permute: false },
            )))
            .table(Table::new("c", "10").field(Field::new(
                "c_ref",
                SqlType::BigInt,
                GeneratorSpec::Reference {
                    table: "p".into(),
                    field: "p_id".into(),
                    distribution: RefDistribution::Uniform,
                },
            )));
        assert!(SchemaRuntime::build(&s, &MapResolver::new()).is_err());
    }

    #[test]
    fn missing_external_resource_fails_build() {
        let mut s = Schema::new("res", 1);
        s = s.table(Table::new("t", "10").field(Field::new(
            "f",
            SqlType::Varchar(44),
            GeneratorSpec::Markov {
                source: MarkovSource::File("missing.bin".into()),
                min_words: 1,
                max_words: 5,
            },
        )));
        let err = SchemaRuntime::build(&s, &MapResolver::new()).unwrap_err();
        assert!(err.0.contains("missing.bin"), "{err}");
    }

    #[test]
    fn two_level_reference_chain_recomputes_transitively() {
        // grandparent <- parent <- child: the child's reference generator
        // recomputes the parent cell, which itself recomputes the
        // grandparent cell.
        let mut s = Schema::new("chain", 5);
        s = s
            .table(
                Table::new("g", "7").field(
                    Field::new(
                        "g_id",
                        SqlType::BigInt,
                        GeneratorSpec::Id { permute: false },
                    )
                    .primary(),
                ),
            )
            .table(Table::new("p", "20").field(Field::new(
                "p_gref",
                SqlType::BigInt,
                GeneratorSpec::Reference {
                    table: "g".into(),
                    field: "g_id".into(),
                    distribution: RefDistribution::Uniform,
                },
            )))
            .table(Table::new("c", "100").field(Field::new(
                "c_pref",
                SqlType::BigInt,
                GeneratorSpec::Reference {
                    table: "p".into(),
                    field: "p_gref".into(),
                    distribution: RefDistribution::Uniform,
                },
            )));
        let rt = SchemaRuntime::build(&s, &MapResolver::new()).unwrap();
        // Every child value must be a valid grandparent id.
        let parents: std::collections::HashSet<i64> = (0..20)
            .map(|r| rt.value(1, 0, 0, r).as_i64().unwrap())
            .collect();
        for row in 0..100u64 {
            let v = rt.value(2, 0, 0, row).as_i64().unwrap();
            assert!((1..=7).contains(&v));
            assert!(
                parents.contains(&v),
                "child references non-existent parent value"
            );
        }
    }
}
