//! Simple (leaf) value generators: IDs, numbers, dates, strings, booleans,
//! and static values.

use pdgf_prng::{FeistelPermutation, PdgfRng};
use pdgf_schema::absint::{self, Draws, StaticProfile};
use pdgf_schema::lineage::DrawContract;
use pdgf_schema::model::DateFormat;
use pdgf_schema::value::{Date, Value};
use std::sync::Arc;

use std::ops::Range;

use pdgf_schema::ColumnVec;

use crate::generator::{ColumnCtx, GenContext, GenScratch, Generator, ProfileCtx};

/// Unique key generator: emits `row + 1`, optionally scrambled through a
/// keyed permutation so keys are unique but unordered.
pub struct IdGenerator {
    permutation: Option<FeistelPermutation>,
}

impl IdGenerator {
    /// Sequential IDs.
    pub fn sequential() -> Self {
        Self { permutation: None }
    }

    /// Permuted IDs over a domain of `size` rows, keyed by `seed`.
    pub fn permuted(size: u64, seed: u64) -> Self {
        Self {
            permutation: Some(FeistelPermutation::new(size.max(1), seed)),
        }
    }

    /// The key emitted for `row` — `generate` without the context
    /// machinery (Id generators draw nothing from the RNG stream). The
    /// reference kernel uses this to recompute parent keys as a pure
    /// typed map, skipping per-cell contexts and `Value` cells entirely.
    #[inline]
    pub fn key_for(&self, row: u64) -> i64 {
        match &self.permutation {
            Some(p) => p.permute(row % p.domain()) as i64 + 1,
            None => row as i64 + 1,
        }
    }
}

impl Generator for IdGenerator {
    #[inline]
    fn generate(&self, ctx: &mut GenContext<'_>) -> Value {
        Value::Long(self.key_for(ctx.row))
    }

    fn fill_column(
        &self,
        _ctx: &ColumnCtx<'_>,
        rows: Range<u64>,
        out: &mut ColumnVec,
        _scratch: &mut GenScratch,
    ) {
        crate::column::fill_id(self.permutation.as_ref(), rows, out);
    }

    fn as_id(&self) -> Option<&IdGenerator> {
        Some(self)
    }

    fn name(&self) -> &'static str {
        "IdGenerator"
    }

    fn profile(&self, ctx: &ProfileCtx<'_>) -> StaticProfile {
        // Sequential emits row+1 ≤ rows; permuted covers the same domain
        // (the runtime keys the permutation over the table size).
        absint::id_profile(ctx.rows)
    }

    fn contract(&self) -> DrawContract {
        let mut c = DrawContract::exact(0);
        c.permuted_ids = u64::from(self.permutation.is_some());
        c
    }
}

/// Uniform integer in `[min, max]`.
pub struct LongGenerator {
    min: i64,
    max: i64,
}

impl LongGenerator {
    /// Uniform over the inclusive range.
    pub fn new(min: i64, max: i64) -> Self {
        assert!(min <= max, "empty range");
        Self { min, max }
    }
}

impl Generator for LongGenerator {
    #[inline]
    fn generate(&self, ctx: &mut GenContext<'_>) -> Value {
        Value::Long(ctx.rng.next_i64_in(self.min, self.max))
    }

    fn fill_column(
        &self,
        ctx: &ColumnCtx<'_>,
        rows: Range<u64>,
        out: &mut ColumnVec,
        _scratch: &mut GenScratch,
    ) {
        crate::column::fill_long(self.min, self.max, ctx, rows, out);
    }

    fn name(&self) -> &'static str {
        "LongGenerator"
    }

    fn profile(&self, _ctx: &ProfileCtx<'_>) -> StaticProfile {
        absint::long_profile(self.min, self.max)
    }

    fn contract(&self) -> DrawContract {
        DrawContract::exact(1)
    }
}

/// Uniform double in `[min, max)`, optionally rounded to a fixed number of
/// decimal places (Figure 9's "Double (4 places)" configuration).
pub struct DoubleGenerator {
    min: f64,
    span: f64,
    round_factor: Option<f64>,
    decimals: Option<u8>,
}

impl DoubleGenerator {
    /// Uniform over `[min, max)` with optional rounding.
    pub fn new(min: f64, max: f64, decimals: Option<u8>) -> Self {
        assert!(min <= max, "empty range");
        Self {
            min,
            span: max - min,
            round_factor: decimals.map(|d| 10f64.powi(i32::from(d))),
            decimals,
        }
    }
}

impl Generator for DoubleGenerator {
    #[inline]
    fn generate(&self, ctx: &mut GenContext<'_>) -> Value {
        let v = self.min + ctx.rng.next_f64() * self.span;
        let v = match self.round_factor {
            Some(f) => (v * f).round() / f,
            None => v,
        };
        Value::Double(v)
    }

    fn fill_column(
        &self,
        ctx: &ColumnCtx<'_>,
        rows: Range<u64>,
        out: &mut ColumnVec,
        _scratch: &mut GenScratch,
    ) {
        crate::column::fill_double(self.min, self.span, self.round_factor, ctx, rows, out);
    }

    fn name(&self) -> &'static str {
        "DoubleGenerator"
    }

    fn profile(&self, _ctx: &ProfileCtx<'_>) -> StaticProfile {
        absint::double_profile(self.min, self.min + self.span, self.decimals)
    }

    fn contract(&self) -> DrawContract {
        DrawContract::exact(1)
    }
}

/// Uniform fixed-point decimal in `[min, max]` at a given scale. Bounds
/// are unscaled integers (e.g. scale 2, min 100 = 1.00).
pub struct DecimalGenerator {
    min: i64,
    max: i64,
    scale: u8,
}

impl DecimalGenerator {
    /// Uniform decimal generator over unscaled `[min, max]`.
    pub fn new(min: i64, max: i64, scale: u8) -> Self {
        assert!(min <= max, "empty range");
        Self { min, max, scale }
    }
}

impl Generator for DecimalGenerator {
    #[inline]
    fn generate(&self, ctx: &mut GenContext<'_>) -> Value {
        Value::Decimal {
            unscaled: ctx.rng.next_i64_in(self.min, self.max),
            scale: self.scale,
        }
    }

    fn fill_column(
        &self,
        ctx: &ColumnCtx<'_>,
        rows: Range<u64>,
        out: &mut ColumnVec,
        _scratch: &mut GenScratch,
    ) {
        crate::column::fill_decimal(self.min, self.max, self.scale, ctx, rows, out);
    }

    fn name(&self) -> &'static str {
        "DecimalGenerator"
    }

    fn profile(&self, _ctx: &ProfileCtx<'_>) -> StaticProfile {
        absint::decimal_profile(self.min, self.max, self.scale)
    }

    fn contract(&self) -> DrawContract {
        DrawContract::exact(1)
    }
}

/// Uniform date in `[min, max]`.
///
/// With [`DateFormat::Iso`] the value stays typed ([`Value::Date`]) and is
/// formatted lazily by the output system. Any other format forces eager
/// text rendering — the deliberately expensive case the paper measures in
/// Figure 9 ("formatting a date value increases the generation cost").
pub struct DateGenerator {
    min_day: i32,
    span_days: u32,
    format: DateFormat,
}

impl DateGenerator {
    /// Uniform over `[min, max]` with the given output format.
    pub fn new(min: Date, max: Date, format: DateFormat) -> Self {
        assert!(min <= max, "empty range");
        Self {
            min_day: min.0,
            span_days: (max.0 - min.0) as u32,
            format,
        }
    }
}

impl Generator for DateGenerator {
    #[inline]
    fn generate(&self, ctx: &mut GenContext<'_>) -> Value {
        let offset = ctx.rng.next_bounded(u64::from(self.span_days) + 1) as i32;
        let date = Date(self.min_day + offset);
        match self.format {
            DateFormat::Iso => Value::Date(date),
            other => Value::text(other.render(date)),
        }
    }

    fn fill_column(
        &self,
        ctx: &ColumnCtx<'_>,
        rows: Range<u64>,
        out: &mut ColumnVec,
        _scratch: &mut GenScratch,
    ) {
        crate::column::fill_date(self.min_day, self.span_days, self.format, ctx, rows, out);
    }

    fn name(&self) -> &'static str {
        "DateGenerator"
    }

    fn profile(&self, _ctx: &ProfileCtx<'_>) -> StaticProfile {
        absint::date_profile(
            self.min_day,
            self.min_day + self.span_days as i32,
            self.format,
        )
    }

    fn contract(&self) -> DrawContract {
        DrawContract::exact(1)
    }
}

/// Uniform timestamp in `[min, max]` seconds since the epoch.
pub struct TimestampGenerator {
    min: i64,
    max: i64,
}

impl TimestampGenerator {
    /// Uniform over the inclusive range.
    pub fn new(min: i64, max: i64) -> Self {
        assert!(min <= max, "empty range");
        Self { min, max }
    }
}

impl Generator for TimestampGenerator {
    #[inline]
    fn generate(&self, ctx: &mut GenContext<'_>) -> Value {
        Value::Timestamp(ctx.rng.next_i64_in(self.min, self.max))
    }

    fn fill_column(
        &self,
        ctx: &ColumnCtx<'_>,
        rows: Range<u64>,
        out: &mut ColumnVec,
        _scratch: &mut GenScratch,
    ) {
        crate::column::fill_timestamp(self.min, self.max, ctx, rows, out);
    }

    fn name(&self) -> &'static str {
        "TimestampGenerator"
    }

    fn profile(&self, _ctx: &ProfileCtx<'_>) -> StaticProfile {
        absint::timestamp_profile(self.min, self.max)
    }

    fn contract(&self) -> DrawContract {
        DrawContract::exact(1)
    }
}

pub(crate) const CHARSET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";

/// Random alphanumeric string with length uniform in `[min_len, max_len]`.
pub struct RandomStringGenerator {
    min_len: u32,
    max_len: u32,
}

impl RandomStringGenerator {
    /// String generator over the inclusive length range.
    pub fn new(min_len: u32, max_len: u32) -> Self {
        assert!(min_len <= max_len, "empty length range");
        Self { min_len, max_len }
    }
}

impl Generator for RandomStringGenerator {
    fn generate(&self, ctx: &mut GenContext<'_>) -> Value {
        let span = u64::from(self.max_len - self.min_len) + 1;
        let len = self.min_len + ctx.rng.next_bounded(span) as u32;
        let mut out = std::mem::take(&mut ctx.scratch.text);
        out.clear();
        out.reserve(len as usize);
        // Pack ~10 charset draws (62^10 < 2^64) per u64 to cut RNG calls.
        let mut remaining = len;
        while remaining > 0 {
            let mut word = ctx.rng.next_u64();
            let batch = remaining.min(10);
            for _ in 0..batch {
                out.push(CHARSET[(word % 62) as usize] as char);
                word /= 62;
            }
            remaining -= batch;
        }
        let v = Value::text(out.as_str());
        ctx.scratch.text = out;
        v
    }

    fn fill_column(
        &self,
        ctx: &ColumnCtx<'_>,
        rows: Range<u64>,
        out: &mut ColumnVec,
        _scratch: &mut GenScratch,
    ) {
        crate::column::fill_random_string(self.min_len, self.max_len, ctx, rows, out);
    }

    fn name(&self) -> &'static str {
        "RandomStringGenerator"
    }

    fn profile(&self, _ctx: &ProfileCtx<'_>) -> StaticProfile {
        absint::random_string_profile(self.min_len, self.max_len)
    }

    fn contract(&self) -> DrawContract {
        // One length draw, then one u64 per 10 characters.
        DrawContract::from_draws(Draws {
            min: 1 + u64::from(self.min_len.div_ceil(10)),
            max: 1 + u64::from(self.max_len.div_ceil(10)),
        })
    }
}

/// Boolean that is `true` with a configured probability.
pub struct RandomBoolGenerator {
    true_prob: f64,
}

impl RandomBoolGenerator {
    /// `true` with probability `true_prob`.
    pub fn new(true_prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&true_prob), "probability out of range");
        Self { true_prob }
    }
}

impl Generator for RandomBoolGenerator {
    #[inline]
    fn generate(&self, ctx: &mut GenContext<'_>) -> Value {
        Value::Bool(ctx.rng.next_bool(self.true_prob))
    }

    fn fill_column(
        &self,
        ctx: &ColumnCtx<'_>,
        rows: Range<u64>,
        out: &mut ColumnVec,
        _scratch: &mut GenScratch,
    ) {
        crate::column::fill_bool(self.true_prob, ctx, rows, out);
    }

    fn name(&self) -> &'static str {
        "RandomBoolGenerator"
    }

    fn profile(&self, _ctx: &ProfileCtx<'_>) -> StaticProfile {
        absint::random_bool_profile(self.true_prob)
    }

    fn contract(&self) -> DrawContract {
        // `next_bool` short-circuits degenerate probabilities without
        // touching the stream.
        DrawContract::exact(u64::from(self.true_prob > 0.0 && self.true_prob < 1.0))
    }
}

/// A constant value. The paper's Figure 7 uses this ("Static Value, no
/// cache") to measure the pure per-cell system overhead; cloning an
/// `Arc`-backed [`Value`] is the cheapest possible generator body.
pub struct StaticValueGenerator {
    value: Value,
}

impl StaticValueGenerator {
    /// Always produce `value`.
    pub fn new(value: Value) -> Self {
        Self { value }
    }
}

impl Generator for StaticValueGenerator {
    #[inline]
    fn generate(&self, _ctx: &mut GenContext<'_>) -> Value {
        self.value.clone()
    }

    fn fill_column(
        &self,
        _ctx: &ColumnCtx<'_>,
        rows: Range<u64>,
        out: &mut ColumnVec,
        _scratch: &mut GenScratch,
    ) {
        crate::column::fill_static(&self.value, rows, out);
    }

    fn static_value(&self) -> Option<&Value> {
        Some(&self.value)
    }

    fn name(&self) -> &'static str {
        "StaticValueGenerator"
    }

    fn profile(&self, _ctx: &ProfileCtx<'_>) -> StaticProfile {
        absint::static_profile(&self.value)
    }

    fn contract(&self) -> DrawContract {
        DrawContract::exact(0)
    }
}

/// Numeric values following an extracted equi-width (or arbitrary-bucket)
/// histogram: an alias-method draw picks the bucket, a second draw places
/// the value uniformly inside it. Reproduces distribution *shape* that
/// plain min/max uniform generators flatten out.
pub struct HistogramGenerator {
    bounds: Vec<f64>,
    alias: pdgf_prng::Alias,
    output: pdgf_schema::model::HistogramOutput,
}

impl HistogramGenerator {
    /// Histogram generator over `bounds` (len = buckets + 1, strictly
    /// increasing) with relative `weights` per bucket.
    pub fn new(
        bounds: Vec<f64>,
        weights: &[f64],
        output: pdgf_schema::model::HistogramOutput,
    ) -> Self {
        assert_eq!(bounds.len(), weights.len() + 1, "bounds/buckets mismatch");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must increase"
        );
        Self {
            bounds,
            alias: pdgf_prng::Alias::new(weights),
            output,
        }
    }
}

impl Generator for HistogramGenerator {
    #[inline]
    fn generate(&self, ctx: &mut GenContext<'_>) -> Value {
        let bucket = self.alias.sample_index(&mut || ctx.rng.next_u64());
        let (lo, hi) = (self.bounds[bucket], self.bounds[bucket + 1]);
        let v = lo + ctx.rng.next_f64() * (hi - lo);
        use pdgf_schema::model::HistogramOutput;
        match self.output {
            HistogramOutput::Long => Value::Long(v.round() as i64),
            HistogramOutput::Double => Value::Double(v),
            HistogramOutput::Decimal(scale) => Value::Decimal {
                unscaled: (v * 10f64.powi(i32::from(scale))).round() as i64,
                scale,
            },
        }
    }

    fn fill_column(
        &self,
        ctx: &ColumnCtx<'_>,
        rows: Range<u64>,
        out: &mut ColumnVec,
        _scratch: &mut GenScratch,
    ) {
        crate::column::fill_histogram(&self.bounds, &self.alias, self.output, ctx, rows, out);
    }

    fn name(&self) -> &'static str {
        "HistogramGenerator"
    }

    fn profile(&self, _ctx: &ProfileCtx<'_>) -> StaticProfile {
        use pdgf_schema::model::HistogramOutput;
        let (Some(&lo), Some(&hi)) = (self.bounds.first(), self.bounds.last()) else {
            return StaticProfile::unknown();
        };
        let mut p = match self.output {
            // Rounded values stay inside the rounded endpoints; casts
            // saturate exactly like `generate`.
            HistogramOutput::Long => absint::long_profile(lo.round() as i64, hi.round() as i64),
            HistogramOutput::Double => absint::double_profile(lo, hi, None),
            HistogramOutput::Decimal(scale) => {
                let pow = 10f64.powi(i32::from(scale));
                absint::decimal_profile((lo * pow).round() as i64, (hi * pow).round() as i64, scale)
            }
        };
        p.width = p.width.demote();
        p.draws = Draws::exact(2);
        p
    }

    fn contract(&self) -> DrawContract {
        // One alias draw picks the bucket, one places the value inside it.
        DrawContract::exact(2)
    }
}

/// Arc-shared boxed generator list used by meta generators.
pub type BoxedGenerator = Arc<dyn Generator>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::SchemaRuntime;

    fn with_ctx<T>(seed: u64, row: u64, f: impl FnOnce(&mut GenContext<'_>) -> T) -> T {
        let rt = SchemaRuntime::empty_for_tests();
        let mut ctx = GenContext::new(&rt, seed, row, 0);
        f(&mut ctx)
    }

    #[test]
    fn id_generator_is_row_plus_one() {
        let g = IdGenerator::sequential();
        for row in [0u64, 1, 99, 1_000_000] {
            let v = with_ctx(7, row, |ctx| g.generate(ctx));
            assert_eq!(v, Value::Long(row as i64 + 1));
        }
    }

    #[test]
    fn permuted_ids_are_unique_and_cover_the_domain() {
        let g = IdGenerator::permuted(1000, 42);
        let mut seen = std::collections::HashSet::new();
        for row in 0..1000u64 {
            let v = with_ctx(7, row, |ctx| g.generate(ctx));
            let id = v.as_i64().unwrap();
            assert!((1..=1000).contains(&id));
            assert!(seen.insert(id), "duplicate id {id}");
        }
    }

    #[test]
    fn long_generator_respects_bounds() {
        let g = LongGenerator::new(-5, 5);
        for seed in 0..500u64 {
            let v = with_ctx(seed, 0, |ctx| g.generate(ctx));
            let x = v.as_i64().unwrap();
            assert!((-5..=5).contains(&x));
        }
    }

    #[test]
    fn double_generator_rounds_to_places() {
        let g = DoubleGenerator::new(0.0, 100.0, Some(2));
        for seed in 0..200u64 {
            let v = with_ctx(seed, 0, |ctx| g.generate(ctx));
            let Value::Double(x) = v else { panic!() };
            let scaled = x * 100.0;
            assert!(
                (scaled - scaled.round()).abs() < 1e-9,
                "not rounded to 2 places: {x}"
            );
        }
    }

    #[test]
    fn decimal_generator_bounds_and_scale() {
        let g = DecimalGenerator::new(100, 10_000, 2);
        for seed in 0..200u64 {
            let v = with_ctx(seed, 0, |ctx| g.generate(ctx));
            let Value::Decimal { unscaled, scale } = v else {
                panic!()
            };
            assert_eq!(scale, 2);
            assert!((100..=10_000).contains(&unscaled));
        }
    }

    #[test]
    fn date_generator_stays_in_range_and_is_typed_for_iso() {
        let min = Date::from_ymd(1992, 1, 1);
        let max = Date::from_ymd(1998, 12, 31);
        let g = DateGenerator::new(min, max, DateFormat::Iso);
        let mut hit_min = false;
        let mut hit_late = false;
        for seed in 0..3000u64 {
            let v = with_ctx(seed, 0, |ctx| g.generate(ctx));
            let Value::Date(d) = v else {
                panic!("expected typed date")
            };
            assert!(d >= min && d <= max);
            hit_min |= d.0 - min.0 < 100;
            hit_late |= max.0 - d.0 < 100;
        }
        assert!(hit_min && hit_late, "range edges never sampled");
    }

    #[test]
    fn formatted_date_is_eager_text() {
        let g = DateGenerator::new(
            Date::from_ymd(2014, 11, 30),
            Date::from_ymd(2014, 11, 30),
            DateFormat::SlashMdy,
        );
        let v = with_ctx(1, 0, |ctx| g.generate(ctx));
        assert_eq!(v.as_text(), Some("11/30/2014"));
    }

    #[test]
    fn random_string_length_and_charset() {
        let g = RandomStringGenerator::new(3, 17);
        for seed in 0..300u64 {
            let v = with_ctx(seed, 0, |ctx| g.generate(ctx));
            let s = v.as_text().unwrap();
            assert!((3..=17).contains(&s.len()), "len {}", s.len());
            assert!(s.bytes().all(|b| b.is_ascii_alphanumeric()));
        }
        let fixed = RandomStringGenerator::new(25, 25);
        let v = with_ctx(9, 0, |ctx| fixed.generate(ctx));
        assert_eq!(v.as_text().unwrap().len(), 25);
    }

    #[test]
    fn bool_generator_probability() {
        let g = RandomBoolGenerator::new(0.2);
        let trues = (0..10_000u64)
            .filter(|&seed| with_ctx(seed, 0, |ctx| g.generate(ctx)) == Value::Bool(true))
            .count();
        let frac = trues as f64 / 10_000.0;
        assert!((0.18..0.22).contains(&frac), "frac {frac}");
    }

    #[test]
    fn static_generator_is_constant() {
        let g = StaticValueGenerator::new(Value::text("fixed"));
        for seed in 0..10u64 {
            assert_eq!(
                with_ctx(seed, seed, |ctx| g.generate(ctx)),
                Value::text("fixed")
            );
        }
    }

    #[test]
    fn histogram_generator_follows_bucket_weights() {
        use pdgf_schema::model::HistogramOutput;
        // Two buckets, 9:1 weighting.
        let g =
            HistogramGenerator::new(vec![0.0, 10.0, 20.0], &[9.0, 1.0], HistogramOutput::Double);
        let mut low = 0;
        for seed in 0..10_000u64 {
            let v = with_ctx(seed, 0, |ctx| g.generate(ctx));
            let Value::Double(x) = v else { panic!() };
            assert!((0.0..20.0).contains(&x));
            if x < 10.0 {
                low += 1;
            }
        }
        let frac = f64::from(low) / 10_000.0;
        assert!((0.88..0.92).contains(&frac), "low-bucket fraction {frac}");
    }

    #[test]
    fn histogram_generator_output_types() {
        use pdgf_schema::model::HistogramOutput;
        let long = HistogramGenerator::new(vec![5.0, 6.0], &[1.0], HistogramOutput::Long);
        assert!(matches!(
            with_ctx(1, 0, |ctx| long.generate(ctx)),
            Value::Long(5 | 6)
        ));
        let dec = HistogramGenerator::new(vec![1.0, 2.0], &[1.0], HistogramOutput::Decimal(2));
        let Value::Decimal { unscaled, scale } = with_ctx(1, 0, |ctx| dec.generate(ctx)) else {
            panic!()
        };
        assert_eq!(scale, 2);
        assert!((100..=200).contains(&unscaled));
    }

    #[test]
    fn same_seed_same_value_across_generators() {
        let g = LongGenerator::new(0, 1_000_000);
        let a = with_ctx(123, 0, |ctx| g.generate(ctx));
        let b = with_ctx(123, 0, |ctx| g.generate(ctx));
        assert_eq!(a, b);
        let c = with_ctx(124, 0, |ctx| g.generate(ctx));
        // Overwhelmingly likely to differ.
        assert_ne!(a, c);
    }
}
