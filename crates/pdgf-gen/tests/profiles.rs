//! The compiled runtime's column profiles must agree with the
//! schema-level abstract interpreter: both fold the same transfer
//! functions, one over compiled generators, one over generator specs.

use pdgf_gen::{MapResolver, ResolverOracle, SchemaRuntime};
use pdgf_schema::absint::{self, Cardinality, Width};
use pdgf_schema::model::{DateFormat, DictSource, HistogramOutput, MarkovSource, RefDistribution};
use pdgf_schema::value::Date;
use pdgf_schema::{Expr, Field, GeneratorSpec, Schema, SqlType, Table, Value};
use textsynth::{Dictionary, MarkovBuilder};

fn expr(s: &str) -> Expr {
    Expr::parse(s).expect("test expression parses")
}

fn resolver() -> MapResolver {
    let dict = Dictionary::new(vec![
        ("furious".into(), 3.0),
        ("quiet".into(), 1.0),
        ("unusual".into(), 1.0),
    ])
    .expect("non-empty dictionary");
    let mut b = MarkovBuilder::new();
    b.feed("quick deposits sleep quickly across the furious ideas");
    b.feed("quick packages haggle blithely");
    MapResolver::new()
        .with_dictionary("words.dict", dict)
        .with_markov("comments.bin", b.build().expect("markov model"))
}

/// A schema touching every generator family.
fn schema() -> Schema {
    let dict = || DictSource::File("words.dict".to_string());
    Schema::new("profiles", 11)
        .table(
            Table::new("parent", "40")
                .field(
                    Field::new("p_id", SqlType::BigInt, GeneratorSpec::Id { permute: true })
                        .primary(),
                )
                .field(Field::new(
                    "p_word",
                    SqlType::Varchar(25),
                    GeneratorSpec::Dict {
                        source: dict(),
                        weighted: true,
                    },
                ))
                .field(Field::new(
                    "p_comment",
                    SqlType::Varchar(40),
                    GeneratorSpec::Null {
                        probability: 0.2,
                        inner: Box::new(GeneratorSpec::Markov {
                            source: MarkovSource::File("comments.bin".to_string()),
                            min_words: 2,
                            max_words: 5,
                        }),
                    },
                ))
                .field(Field::new(
                    "p_qty",
                    SqlType::Integer,
                    GeneratorSpec::Long {
                        min: expr("1"),
                        max: expr("50"),
                    },
                ))
                .field(Field::new(
                    "p_price",
                    SqlType::Decimal(8, 2),
                    GeneratorSpec::Decimal {
                        min: expr("100"),
                        max: expr("99999"),
                        scale: 2,
                    },
                ))
                .field(Field::new(
                    "p_rate",
                    SqlType::Double,
                    GeneratorSpec::Double {
                        min: expr("0"),
                        max: expr("1"),
                        decimals: Some(4),
                    },
                ))
                .field(Field::new(
                    "p_date",
                    SqlType::Date,
                    GeneratorSpec::DateRange {
                        min: Date::from_ymd(1992, 1, 1),
                        max: Date::from_ymd(1998, 12, 31),
                        format: DateFormat::Iso,
                    },
                ))
                .field(Field::new(
                    "p_ts",
                    SqlType::Timestamp,
                    GeneratorSpec::TimestampRange {
                        min: 694_224_000,
                        max: 915_148_800,
                    },
                ))
                .field(Field::new(
                    "p_flag",
                    SqlType::Boolean,
                    GeneratorSpec::RandomBool { true_prob: 0.3 },
                ))
                .field(Field::new(
                    "p_code",
                    SqlType::Varchar(12),
                    GeneratorSpec::RandomString {
                        min_len: 5,
                        max_len: 12,
                    },
                ))
                .field(Field::new(
                    "p_const",
                    SqlType::Varchar(6),
                    GeneratorSpec::Static {
                        value: Value::text("fixed"),
                    },
                ))
                .field(Field::new(
                    "p_formula",
                    SqlType::BigInt,
                    GeneratorSpec::Formula {
                        expr: expr("${ROW} * 2 + 7"),
                        as_long: true,
                    },
                ))
                .field(Field::new(
                    "p_hist",
                    SqlType::Double,
                    GeneratorSpec::HistogramNumeric {
                        bounds: vec![0.0, 10.0, 20.0],
                        weights: vec![3.0, 1.0],
                        output: HistogramOutput::Double,
                    },
                ))
                .field(Field::new(
                    "p_mix",
                    SqlType::Varchar(20),
                    GeneratorSpec::Probability {
                        branches: vec![
                            (
                                0.5,
                                GeneratorSpec::Dict {
                                    source: dict(),
                                    weighted: false,
                                },
                            ),
                            (
                                0.5,
                                GeneratorSpec::RandomString {
                                    min_len: 3,
                                    max_len: 8,
                                },
                            ),
                        ],
                    },
                ))
                .field(Field::new(
                    "p_seq",
                    SqlType::Varchar(30),
                    GeneratorSpec::Sequential {
                        parts: vec![
                            GeneratorSpec::Static {
                                value: Value::text("ord"),
                            },
                            GeneratorSpec::Long {
                                min: expr("0"),
                                max: expr("999"),
                            },
                        ],
                        separator: "-".to_string(),
                    },
                )),
        )
        .table(
            Table::new("child", "120")
                .field(
                    Field::new(
                        "c_id",
                        SqlType::BigInt,
                        GeneratorSpec::Id { permute: false },
                    )
                    .primary(),
                )
                .field(Field::new(
                    "c_fk",
                    SqlType::BigInt,
                    GeneratorSpec::Reference {
                        table: "parent".to_string(),
                        field: "p_id".to_string(),
                        distribution: RefDistribution::Permutation,
                    },
                ))
                .field(Field::new(
                    "c_fk2",
                    SqlType::BigInt,
                    GeneratorSpec::Reference {
                        table: "parent".to_string(),
                        field: "p_id".to_string(),
                        distribution: RefDistribution::Uniform,
                    },
                )),
        )
}

#[test]
fn runtime_profiles_match_the_abstract_interpreter() {
    let schema = schema();
    let analysis = schema.analyze();
    assert!(
        !analysis.has_errors(),
        "test schema must analyze cleanly: {:?}",
        analysis.diagnostics
    );
    let resolver = resolver();
    let interp = absint::interpret(&schema, &analysis, &ResolverOracle(&resolver));
    let rt = SchemaRuntime::build(&schema, &resolver).expect("runtime builds");
    let rt_profiles = rt.profiles();

    assert_eq!(interp.tables.len(), rt_profiles.len());
    for (table, columns) in interp.tables.iter().zip(&rt_profiles) {
        assert_eq!(table.columns.len(), columns.len(), "table {}", table.name);
        for (col, rt_prof) in table.columns.iter().zip(columns) {
            assert_eq!(
                &col.profile, rt_prof,
                "profile mismatch on {}.{}",
                table.name, col.name
            );
        }
    }
}

#[test]
fn profiled_bounds_hold_over_full_generation() {
    let schema = schema();
    let resolver = resolver();
    let rt = SchemaRuntime::build(&schema, &resolver).expect("runtime builds");
    let profiles = rt.profiles();

    for (t, table) in rt.tables().iter().enumerate() {
        for row in 0..table.size {
            for (c, col) in table.columns.iter().enumerate() {
                let v = rt.value(t as u32, c as u32, 0, row);
                let p = &profiles[t][c];
                let rendered = v.to_string();
                match p.width {
                    Width::Exact(w) => assert_eq!(
                        rendered.len() as u32,
                        w,
                        "{}.{} row {row}: {rendered:?}",
                        table.name,
                        col.name
                    ),
                    Width::AtMost(w) => assert!(
                        rendered.len() as u32 <= w,
                        "{}.{} row {row}: {rendered:?} exceeds {w}",
                        table.name,
                        col.name
                    ),
                    Width::Unbounded => {}
                }
                if let (Some(iv), Some(x)) = (p.interval, v.as_f64()) {
                    assert!(
                        iv.lo <= x && x <= iv.hi,
                        "{}.{} row {row}: {x} outside [{}, {}]",
                        table.name,
                        col.name,
                        iv.lo,
                        iv.hi
                    );
                }
                if v.is_null() {
                    assert!(
                        p.null_prob > 0.0,
                        "{}.{} row {row}: unexpected NULL",
                        table.name,
                        col.name
                    );
                }
            }
        }
    }
}

#[test]
fn unique_cardinality_claims_are_honest() {
    let schema = schema();
    let resolver = resolver();
    let rt = SchemaRuntime::build(&schema, &resolver).expect("runtime builds");
    let profiles = rt.profiles();

    let mut checked = 0;
    for (t, table) in rt.tables().iter().enumerate() {
        for (c, col) in table.columns.iter().enumerate() {
            if profiles[t][c].cardinality != Cardinality::Unique {
                continue;
            }
            checked += 1;
            let mut seen = std::collections::BTreeSet::new();
            for row in 0..table.size {
                let v = rt.value(t as u32, c as u32, 0, row).to_string();
                assert!(
                    seen.insert(v.clone()),
                    "{}.{} repeats {v:?}",
                    table.name,
                    col.name
                );
            }
        }
    }
    // At least the two ID columns and the affine formula must be proven
    // unique; a regression to Unbounded everywhere should fail loudly.
    assert!(checked >= 3, "only {checked} columns proven unique");
}
