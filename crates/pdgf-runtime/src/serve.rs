//! On-the-fly row service: the persistent scheduler answering requests.
//!
//! The paper's seeding hierarchy makes any cell recomputable in O(1), so
//! a table never has to be materialized to be read — the "On The Fly"
//! posture: keep one worker pool alive and let clients ask for row
//! ranges and point lookups on demand. [`RowService`] is that pool. A
//! [`RowRequest`] names `(model, table, update, row range)`; the service
//! splits it into the same work packages a batch run would use, renders
//! them through the same columnar batch engine (or the row path) and the
//! same formatters, and streams the finished byte buffers back in row
//! order through a [`ResponseStream`].
//!
//! One service can host **several models** ([`RowService::with_models`]):
//! every registered schema shares the single worker pool and ticket
//! queue, so a deployment serves many workloads without multiplying
//! threads. Requests name their model by index; per-model counters are
//! kept alongside the service-wide ones ([`RowService::stats_of`]).
//!
//! Ranges wider than `max_request_rows` are either rejected
//! ([`RowService::submit`], the legacy strict path) or **clamped**
//! ([`RowService::submit_clamped`]): the stream serves the first
//! `max_request_rows` rows and reports where the remainder starts, which
//! is what the serve front ends turn into resumable cursor tokens.
//! Because framing is positional, the clamped tiles concatenate
//! byte-equal to a single-shot response.
//!
//! Determinism is the contract: the same `(table, update, range, format)`
//! request always returns the same bytes, and because framing is
//! positional ([`Framing::for_range`]) concatenating the responses of
//! adjacent ranges is byte-equal to a `pdgf generate` file of the whole
//! table. Nothing here caches rows — every answer is recomputed, which is
//! exactly why answers cannot drift.
//!
//! Backpressure is reader-driven: a request may have at most `window`
//! packages in flight. The service only *issues* the next package ticket
//! when the reader consumes one, so a slow (or stopped) reader starves
//! itself and nobody else — workers never block on a full response
//! queue, they simply run other requests' tickets. Requests multiplex
//! onto the one global FIFO ticket queue; a dropped [`ResponseStream`]
//! cancels its unrendered packages.
//!
//! With a [`Telemetry`] attached the service keeps a long-lived run scope
//! (so the stall watchdog supervises it — see the idle-vs-wedged
//! distinction in [`crate::telemetry`]), publishes request-scoped events
//! (`RequestStarted`/`RequestFinished`/`RequestFailed`), and feeds a
//! lock-free latency histogram surfaced through [`RowService::stats`].

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

use pdgf_gen::SchemaRuntime;
use pdgf_output::{Formatter, ReorderBuffer, TableMeta};

use crate::events::RunEvent;
use crate::metrics::{now_ns, Histogram, PhaseStats};
use crate::package::{Framing, ProjectPackage, WorkPackage};
use crate::scheduler::{
    format_package, format_package_columnar, package_capacity_hint, table_meta, WorkerState,
};
use crate::telemetry::{JobInfo, RunScope, Telemetry};

/// Tuning knobs for a [`RowService`], built fluently like
/// [`RunConfig`](crate::RunConfig):
///
/// ```
/// use pdgf_runtime::serve::ServeConfig;
/// let cfg = ServeConfig::new().workers(2).package_rows(512).window(8);
/// assert_eq!(cfg.worker_threads(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads; always ≥ 1 (a service cannot run inline).
    pub(crate) workers: usize,
    /// Rows per work package (response streaming granularity).
    pub(crate) package_rows: u64,
    /// Max in-flight packages per request (backpressure window).
    pub(crate) window: usize,
    /// Render through the columnar batch path (default) or the row path.
    pub(crate) columnar: bool,
    /// Reject requests spanning more than this many rows (0 = unlimited).
    pub(crate) max_request_rows: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: crate::scheduler::available_workers(),
            package_rows: 4_096,
            window: 4,
            columnar: true,
            max_request_rows: 0,
        }
    }
}

impl ServeConfig {
    /// Start from the defaults: one worker per core, 4096-row packages,
    /// a 4-package window, columnar rendering, no request-size cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker thread count (clamped to ≥ 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Set the rows per work package.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is 0, like
    /// [`RunConfig::package_rows`](crate::RunConfig::package_rows).
    pub fn package_rows(mut self, rows: u64) -> Self {
        assert!(rows > 0, "ServeConfig::package_rows must be at least 1");
        self.package_rows = rows;
        self
    }

    /// Set the per-request in-flight package window (clamped to ≥ 1).
    pub fn window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// Choose the columnar batch path (`true`, default) or the row path.
    /// Response bytes are identical either way.
    pub fn columnar(mut self, columnar: bool) -> Self {
        self.columnar = columnar;
        self
    }

    /// Reject requests spanning more than `rows` rows (0 = unlimited).
    pub fn max_request_rows(mut self, rows: u64) -> Self {
        self.max_request_rows = rows;
        self
    }

    /// Configured worker thread count.
    pub fn worker_threads(&self) -> usize {
        self.workers
    }

    /// Configured rows per work package.
    pub fn rows_per_package(&self) -> u64 {
        self.package_rows
    }

    /// Configured per-request window.
    pub fn request_window(&self) -> usize {
        self.window
    }
}

/// One row-range request: which rows of which table of which model, and
/// how the response is framed.
#[derive(Debug, Clone)]
pub struct RowRequest {
    /// Model index (0 for single-model services; see
    /// [`RowService::model_index`]).
    pub model: u32,
    /// Table index within the model (see [`RowService::table_index_in`]).
    pub table: u32,
    /// Update epoch.
    pub update: u32,
    /// Row range (global row numbers, end-exclusive).
    pub rows: Range<u64>,
    /// Framing override. `None` (the usual case) frames positionally via
    /// [`Framing::for_range`], which is what makes concatenated range
    /// responses byte-equal to whole-table output.
    pub framing: Option<Framing>,
}

impl RowRequest {
    /// A positionally framed range request against model 0.
    pub fn range(table: u32, update: u32, rows: Range<u64>) -> Self {
        Self {
            model: 0,
            table,
            update,
            rows,
            framing: None,
        }
    }

    /// A point lookup against model 0: one row, no framing (a fragment
    /// of the stream).
    pub fn point(table: u32, update: u32, row: u64) -> Self {
        Self {
            model: 0,
            table,
            update,
            rows: row..row.saturating_add(1),
            framing: Some(Framing::none()),
        }
    }

    /// Redirect this request at another registered model.
    pub fn on_model(mut self, model: u32) -> Self {
        self.model = model;
        self
    }
}

/// Why a [`RowService::submit`] was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The model index is out of range for the registered models.
    UnknownModel(u32),
    /// The table index is out of range for the loaded schema.
    UnknownTable(u32),
    /// The row range is inverted or extends past the table size.
    RangeOutOfBounds {
        /// The offending range.
        rows: Range<u64>,
        /// Rows in the table.
        table_size: u64,
    },
    /// The range spans more rows than the configured per-request cap.
    TooLarge {
        /// Rows requested.
        requested: u64,
        /// Configured cap.
        max: u64,
    },
    /// The service is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownModel(m) => write!(f, "unknown model index {m}"),
            Self::UnknownTable(t) => write!(f, "unknown table index {t}"),
            Self::RangeOutOfBounds { rows, table_size } => write!(
                f,
                "row range {}..{} out of bounds for table of {table_size} rows",
                rows.start, rows.end
            ),
            Self::TooLarge { requested, max } => {
                write!(f, "request spans {requested} rows, cap is {max}")
            }
            Self::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Monotone counters of a service's lifetime, plus the request-latency
/// histogram surfaced as condensed [`PhaseStats`].
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Requests accepted by [`RowService::submit`].
    pub requests: u64,
    /// Requests whose reader consumed every package.
    pub completed: u64,
    /// Requests whose [`ResponseStream`] was dropped early.
    pub aborted: u64,
    /// Submissions rejected before a stream existed.
    pub rejected: u64,
    /// Rows delivered to readers.
    pub rows: u64,
    /// Formatted bytes delivered to readers.
    pub bytes: u64,
    /// Seconds since the service started.
    pub uptime_seconds: f64,
    /// Completed requests per second over the service lifetime.
    pub qps: f64,
    /// Submit-to-last-package latency of completed requests.
    pub latency: PhaseStats,
}

#[derive(Default)]
struct StatsInner {
    requests: AtomicU64,
    completed: AtomicU64,
    aborted: AtomicU64,
    rejected: AtomicU64,
    rows: AtomicU64,
    bytes: AtomicU64,
    latency: Histogram,
}

impl StatsInner {
    fn snapshot(&self, started_ns: u64) -> ServeStats {
        let completed = self.completed.load(Ordering::Relaxed);
        let uptime_seconds = now_ns().saturating_sub(started_ns) as f64 / 1e9;
        ServeStats {
            requests: self.requests.load(Ordering::Relaxed),
            completed,
            aborted: self.aborted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            rows: self.rows.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            uptime_seconds,
            qps: if uptime_seconds > 0.0 {
                completed as f64 / uptime_seconds
            } else {
                0.0
            },
            latency: self.latency.snapshot().stats(),
        }
    }
}

/// One registered schema: its compiled runtime plus per-model counters.
/// Every slot's requests run on the same shared worker pool.
struct ModelSlot {
    name: String,
    rt: Arc<SchemaRuntime>,
    stats: StatsInner,
}

/// Reorder-and-ready state of one in-flight request.
struct RequestState {
    reorder: ReorderBuffer<Vec<u8>>,
    ready: VecDeque<Vec<u8>>,
}

/// Everything a worker needs to render one request's packages, shared
/// between the submitting reader and the pool.
struct RequestShared {
    id: u64,
    /// The model's compiled runtime (render path never touches the slot
    /// table, so a request outlives nothing).
    rt: Arc<SchemaRuntime>,
    /// Model slot index, for per-model completion counters.
    model: u32,
    table: u32,
    update: u32,
    rows: Range<u64>,
    framing: Framing,
    total_packages: u64,
    formatter: Arc<dyn Formatter>,
    meta: TableMeta,
    /// Proven per-row byte bound for buffer pre-sizing (allocation hint
    /// only — bytes are identical without it).
    row_bound: Option<u64>,
    /// Set when the reader goes away; unrendered packages are skipped.
    cancelled: AtomicBool,
    state: Mutex<RequestState>,
    ready: Condvar,
}

/// One package ticket on the global queue.
struct Task {
    req: Arc<RequestShared>,
    seq: u64,
}

struct ServiceShared {
    models: Vec<ModelSlot>,
    queue: Mutex<VecDeque<Task>>,
    work: Condvar,
    shutdown: AtomicBool,
    columnar: bool,
    package_rows: u64,
    window: u64,
    max_request_rows: u64,
    stats: StatsInner,
    started_ns: u64,
    /// Long-lived telemetry scope: its watchdog supervises the pool
    /// (idle is healthy; queued-but-stuck tickets are a stall).
    scope: Option<RunScope>,
    telemetry: Option<Telemetry>,
    next_request: AtomicU64,
}

impl ServiceShared {
    fn lock_queue(&self) -> std::sync::MutexGuard<'_, VecDeque<Task>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn push_task(&self, task: Task) {
        let depth = {
            let mut q = self.lock_queue();
            // locks:allow(W034) depth is bounded externally: admission
            // keeps at most `window` tickets in flight per live request
            q.push_back(task);
            q.len() as u64
        };
        if let Some(scope) = &self.scope {
            scope.set_queue_depth(depth);
        }
        self.work.notify_one();
    }

    fn publish(&self, event: RunEvent) {
        if let Some(t) = &self.telemetry {
            t.publish(event);
        }
    }
}

/// The persistent on-demand row service: one worker pool answering
/// range and point-lookup requests over one loaded schema. See the
/// module docs for the streaming and backpressure model.
pub struct RowService {
    shared: Arc<ServiceShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl RowService {
    /// Start a single-model service (the model registers as `default`):
    /// spawns the worker pool immediately; workers sleep until requests
    /// arrive. `telemetry` attaches the event bus, metrics and the stall
    /// watchdog for the service's lifetime.
    pub fn new(rt: Arc<SchemaRuntime>, cfg: ServeConfig, telemetry: Option<&Telemetry>) -> Self {
        Self::with_models(vec![("default".to_string(), rt)], cfg, telemetry)
    }

    /// Start a multi-model service: every `(name, runtime)` pair becomes
    /// an addressable model slot, all sharing ONE worker pool and ticket
    /// queue. Slot order is registration order; model 0 is the default
    /// the single-model entry points address.
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty — a service with nothing to serve is a
    /// configuration bug, caught at construction like a zero-row package.
    pub fn with_models(
        models: Vec<(String, Arc<SchemaRuntime>)>,
        cfg: ServeConfig,
        telemetry: Option<&Telemetry>,
    ) -> Self {
        assert!(
            !models.is_empty(),
            "RowService::with_models needs at least one model"
        );
        let scope = telemetry.map(|t| {
            t.begin_run(
                vec![JobInfo::new("<serve>".to_string(), 0)],
                cfg.workers.max(1),
            )
        });
        let models = models
            .into_iter()
            .map(|(name, rt)| ModelSlot {
                name,
                rt,
                stats: StatsInner::default(),
            })
            .collect();
        let shared = Arc::new(ServiceShared {
            models,
            queue: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
            shutdown: AtomicBool::new(false),
            columnar: cfg.columnar,
            package_rows: cfg.package_rows,
            window: cfg.window.max(1) as u64,
            max_request_rows: cfg.max_request_rows,
            stats: StatsInner::default(),
            started_ns: now_ns(),
            scope,
            telemetry: telemetry.cloned(),
            next_request: AtomicU64::new(1),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pdgf-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .unwrap_or_else(|e| panic!("failed to spawn serve worker {i}: {e}"))
            })
            .collect();
        Self { shared, workers }
    }

    /// The schema runtime of model 0 (the only one for single-model
    /// services).
    pub fn runtime(&self) -> &SchemaRuntime {
        &self.shared.models[0].rt
    }

    /// Number of registered models.
    pub fn model_count(&self) -> usize {
        self.shared.models.len()
    }

    /// The registered name of model slot `model`.
    pub fn model_name(&self, model: u32) -> Option<&str> {
        self.shared
            .models
            .get(model as usize)
            .map(|m| m.name.as_str())
    }

    /// Resolve a registered model name to its slot index.
    pub fn model_index(&self, name: &str) -> Option<u32> {
        self.shared
            .models
            .iter()
            .position(|m| m.name == name)
            .map(|i| i as u32)
    }

    /// The schema runtime of model slot `model`.
    pub fn runtime_of(&self, model: u32) -> Option<&Arc<SchemaRuntime>> {
        self.shared.models.get(model as usize).map(|m| &m.rt)
    }

    /// Resolve a table name in model 0 to the index [`RowRequest`] wants.
    pub fn table_index(&self, name: &str) -> Option<u32> {
        self.table_index_in(0, name)
    }

    /// Resolve a table name within model slot `model`.
    pub fn table_index_in(&self, model: u32, name: &str) -> Option<u32> {
        self.shared
            .models
            .get(model as usize)?
            .rt
            .tables()
            .iter()
            .position(|t| t.name == name)
            .map(|i| i as u32)
    }

    /// The configured per-request row cap (0 = unlimited).
    pub fn max_request_rows(&self) -> u64 {
        self.shared.max_request_rows
    }

    /// Submit a request. Validation is synchronous; rendering is not —
    /// the returned [`ResponseStream`] yields formatted packages in row
    /// order as workers finish them. A range wider than
    /// `max_request_rows` is rejected outright; see
    /// [`submit_clamped`](Self::submit_clamped) for the resumable
    /// alternative.
    pub fn submit(
        &self,
        request: RowRequest,
        formatter: Arc<dyn Formatter>,
    ) -> Result<ResponseStream, SubmitError> {
        self.admit(request, formatter, false).map(|a| a.stream)
    }

    /// Submit a request, clamping over-cap ranges instead of rejecting
    /// them: when the range spans more than `max_request_rows`, the
    /// returned stream serves exactly the first `max_request_rows` rows
    /// and [`Admitted::resume_at`] names the row the remainder starts at.
    /// Positional framing makes the clamped tiles concatenate byte-equal
    /// to a single unclamped response — the contract resumable cursors
    /// are built on.
    pub fn submit_clamped(
        &self,
        request: RowRequest,
        formatter: Arc<dyn Formatter>,
    ) -> Result<Admitted, SubmitError> {
        self.admit(request, formatter, true)
    }

    fn admit(
        &self,
        mut request: RowRequest,
        formatter: Arc<dyn Formatter>,
        clamp: bool,
    ) -> Result<Admitted, SubmitError> {
        let shared = &self.shared;
        let reject = |err: SubmitError, shared: &ServiceShared| {
            shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            if let Some(slot) = shared.models.get(request.model as usize) {
                slot.stats.rejected.fetch_add(1, Ordering::Relaxed);
            }
            shared.publish(RunEvent::RequestFailed {
                request: 0,
                message: err.to_string(),
            });
            err
        };
        if shared.shutdown.load(Ordering::Acquire) {
            return Err(reject(SubmitError::ShuttingDown, shared));
        }
        let Some(slot) = shared.models.get(request.model as usize) else {
            return Err(reject(SubmitError::UnknownModel(request.model), shared));
        };
        let tables = slot.rt.tables();
        let Some(table) = tables.get(request.table as usize) else {
            return Err(reject(SubmitError::UnknownTable(request.table), shared));
        };
        let size = table.size;
        if request.rows.start > request.rows.end || request.rows.end > size {
            return Err(reject(
                SubmitError::RangeOutOfBounds {
                    rows: request.rows.clone(),
                    table_size: size,
                },
                shared,
            ));
        }
        let mut span = request.rows.end - request.rows.start;
        let max = shared.max_request_rows;
        let mut resume_at = None;
        if max > 0 && span > max {
            if !clamp {
                return Err(reject(
                    SubmitError::TooLarge {
                        requested: span,
                        max,
                    },
                    shared,
                ));
            }
            request.rows.end = request.rows.start + max;
            resume_at = Some(request.rows.end);
            span = max;
        }

        let framing = request
            .framing
            .unwrap_or_else(|| Framing::for_range(&request.rows, size));
        // Package count mirrors the batch scheduler's split; a rowless
        // request that still owns framing gets one synthetic empty
        // package so `begin`/`end` bytes have a carrier.
        let mut total_packages = span.div_ceil(shared.package_rows);
        if total_packages == 0 && (framing.begin || framing.end) {
            total_packages = 1;
        }
        let meta = table_meta(&slot.rt, request.table);
        let row_bound = formatter.max_row_bytes(&meta, &slot.rt.profiles()[request.table as usize]);
        let id = shared.next_request.fetch_add(1, Ordering::Relaxed);
        let req = Arc::new(RequestShared {
            id,
            rt: Arc::clone(&slot.rt),
            model: request.model,
            table: request.table,
            update: request.update,
            rows: request.rows,
            framing,
            total_packages,
            formatter,
            meta,
            row_bound,
            cancelled: AtomicBool::new(false),
            state: Mutex::new(RequestState {
                reorder: ReorderBuffer::new(),
                ready: VecDeque::new(),
            }),
            ready: Condvar::new(),
        });
        shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        slot.stats.requests.fetch_add(1, Ordering::Relaxed);
        shared.publish(RunEvent::RequestStarted {
            request: id,
            table: req.meta.name.clone(),
            rows: span,
        });
        let mut stream = ResponseStream {
            shared: Arc::clone(shared),
            req,
            window: shared.window,
            issued: 0,
            delivered: 0,
            rows: 0,
            bytes: 0,
            started_ns: now_ns(),
            finished: total_packages == 0,
        };
        stream.issue_up_to_window();
        Ok(Admitted { stream, resume_at })
    }

    /// Convenience point lookup against model 0: the formatted bytes of
    /// one row, with no framing — exactly the row's slice of the
    /// whole-table byte stream body.
    pub fn row_bytes(
        &self,
        table: u32,
        update: u32,
        row: u64,
        formatter: Arc<dyn Formatter>,
    ) -> Result<Vec<u8>, SubmitError> {
        self.row_bytes_in(0, table, update, row, formatter)
    }

    /// [`row_bytes`](Self::row_bytes) against a named model slot.
    pub fn row_bytes_in(
        &self,
        model: u32,
        table: u32,
        update: u32,
        row: u64,
        formatter: Arc<dyn Formatter>,
    ) -> Result<Vec<u8>, SubmitError> {
        let mut stream = self.submit(
            RowRequest::point(table, update, row).on_model(model),
            formatter,
        )?;
        let mut out = Vec::new();
        while let Some(chunk) = stream.next_package() {
            out.extend_from_slice(&chunk);
        }
        Ok(out)
    }

    /// Lineage hook: the seed the *point-lookup* route derives for one
    /// cell. This is the route [`RowService::row_bytes`] and the row
    /// engine take — a direct [`FieldCoord`](pdgf_prng::FieldCoord) walk
    /// down the seeding tree. `pdgf prove` checks it lands on the same
    /// lineage node as [`RowService::batch_lineage`] (`E055`).
    pub fn point_lineage(&self, table: u32, column: u32, update: u32, row: u64) -> u64 {
        self.shared.models[0]
            .rt
            .seed_tree()
            .field_seed(pdgf_prng::FieldCoord {
                table,
                column,
                update,
                row,
            })
    }

    /// Lineage hook: the seed the *bulk* route derives for one cell —
    /// the hoisted form the columnar kernels and shard framing use (one
    /// `update_seed` per column, then one `mix64_pair` per cell).
    pub fn batch_lineage(&self, table: u32, column: u32, update: u32, row: u64) -> u64 {
        let hoisted = self.shared.models[0]
            .rt
            .seed_tree()
            .update_seed(table, column, update);
        pdgf_prng::mix64_pair(hoisted, row)
    }

    /// Live service counters and latency percentiles, aggregated across
    /// every model slot.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats.snapshot(self.shared.started_ns)
    }

    /// Counters scoped to one model slot (`None` for an unknown index).
    /// Uptime/qps are computed against the shared service clock.
    pub fn stats_of(&self, model: u32) -> Option<ServeStats> {
        self.shared
            .models
            .get(model as usize)
            .map(|slot| slot.stats.snapshot(self.shared.started_ns))
    }

    /// Stop accepting work and join the pool. Pending tickets of live
    /// streams are drained first; called automatically on drop.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        self.shared.work.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if self.shared.telemetry.is_some() {
            let s = self.stats();
            self.shared.publish(RunEvent::RunFinished {
                rows: s.rows,
                bytes: s.bytes,
                seconds: s.uptime_seconds,
            });
        }
    }
}

impl Drop for RowService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The outcome of clamped admission: the stream serving the (possibly
/// clamped) head of the range, plus — when the request exceeded
/// `max_request_rows` — the row offset the caller must resume from to
/// fetch the remainder. Protocol front ends turn `resume_at` into an
/// opaque cursor token.
pub struct Admitted {
    /// The admitted request's package stream.
    pub stream: ResponseStream,
    /// `Some(row)` when the range was clamped: the first row NOT served
    /// by `stream`; the remainder is `row..original_end`.
    pub resume_at: Option<u64>,
}

/// A request's ordered package stream. Iterate (or call
/// [`next_package`](Self::next_package)) to receive the formatted
/// buffers; each consumption issues the next package ticket, keeping at
/// most `window` packages in flight for this request. Dropping the
/// stream early cancels the request's remaining work.
pub struct ResponseStream {
    shared: Arc<ServiceShared>,
    req: Arc<RequestShared>,
    window: u64,
    issued: u64,
    delivered: u64,
    rows: u64,
    bytes: u64,
    started_ns: u64,
    finished: bool,
}

impl ResponseStream {
    /// Total packages this response will deliver.
    pub fn total_packages(&self) -> u64 {
        self.req.total_packages
    }

    /// The service-assigned request id (matches the request events).
    pub fn request_id(&self) -> u64 {
        self.req.id
    }

    fn issue_up_to_window(&mut self) {
        while self.issued < self.req.total_packages
            && self.issued.saturating_sub(self.delivered) < self.window
        {
            self.shared.push_task(Task {
                req: Arc::clone(&self.req),
                seq: self.issued,
            });
            self.issued += 1;
        }
    }

    /// Blocking: the next formatted package, in row order, or `None`
    /// after the last one (or if the service shuts down mid-request).
    pub fn next_package(&mut self) -> Option<Vec<u8>> {
        if self.finished {
            return None;
        }
        let buf = loop {
            let mut st = self
                .req
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(b) = st.ready.pop_front() {
                break b;
            }
            if self.shared.shutdown.load(Ordering::Acquire) {
                // The pool is gone; this request can never complete.
                // Release the state guard before the bookkeeping below:
                // publishing a telemetry event takes the bus lock, and
                // holding two guards here would put a serve->events edge
                // in the lock-order graph for no benefit.
                drop(st);
                self.finished = true;
                self.req.cancelled.store(true, Ordering::Relaxed);
                self.shared.stats.aborted.fetch_add(1, Ordering::Relaxed);
                if let Some(slot) = self.shared.models.get(self.req.model as usize) {
                    slot.stats.aborted.fetch_add(1, Ordering::Relaxed);
                }
                self.shared.publish(RunEvent::RequestFailed {
                    request: self.req.id,
                    message: "service shut down mid-request".to_string(),
                });
                return None;
            }
            // Timed wait so a shutdown while parked is noticed.
            let (_st, _timeout) = self
                .req
                .ready
                .wait_timeout(st, Duration::from_millis(50))
                .unwrap_or_else(PoisonError::into_inner);
        };
        self.delivered += 1;
        self.rows += package_row_count(&self.req, self.shared.package_rows, self.delivered - 1);
        self.bytes += buf.len() as u64;
        self.issue_up_to_window();
        if self.delivered == self.req.total_packages {
            self.finished = true;
            let latency_ns = now_ns().saturating_sub(self.started_ns);
            let s = &self.shared.stats;
            s.completed.fetch_add(1, Ordering::Relaxed);
            s.rows.fetch_add(self.rows, Ordering::Relaxed);
            s.bytes.fetch_add(self.bytes, Ordering::Relaxed);
            s.latency.record(latency_ns);
            if let Some(slot) = self.shared.models.get(self.req.model as usize) {
                slot.stats.completed.fetch_add(1, Ordering::Relaxed);
                slot.stats.rows.fetch_add(self.rows, Ordering::Relaxed);
                slot.stats.bytes.fetch_add(self.bytes, Ordering::Relaxed);
                slot.stats.latency.record(latency_ns);
            }
            self.shared.publish(RunEvent::RequestFinished {
                request: self.req.id,
                rows: self.rows,
                bytes: self.bytes,
                micros: latency_ns / 1_000,
            });
        }
        Some(buf)
    }
}

impl Iterator for ResponseStream {
    type Item = Vec<u8>;

    fn next(&mut self) -> Option<Vec<u8>> {
        self.next_package()
    }
}

impl Drop for ResponseStream {
    fn drop(&mut self) {
        if !self.finished {
            self.req.cancelled.store(true, Ordering::Relaxed);
            self.shared.stats.aborted.fetch_add(1, Ordering::Relaxed);
            if let Some(slot) = self.shared.models.get(self.req.model as usize) {
                slot.stats.aborted.fetch_add(1, Ordering::Relaxed);
            }
            self.shared.publish(RunEvent::RequestFailed {
                request: self.req.id,
                message: "response stream dropped before completion".to_string(),
            });
        }
    }
}

/// Rows package `seq` of `req` covers (the tail package may be short;
/// a synthetic framing-only package covers zero).
fn package_row_count(req: &RequestShared, package_rows: u64, seq: u64) -> u64 {
    let span = req.rows.end - req.rows.start;
    let start = seq.saturating_mul(package_rows).min(span);
    let end = seq.saturating_add(1).saturating_mul(package_rows).min(span);
    end - start
}

fn worker_loop(shared: &ServiceShared) {
    let mut state = WorkerState::default();
    loop {
        // The depth reading rides the pop's critical section instead of
        // re-locking the queue afterwards (`cargo xtask locks` flags the
        // re-lock as a busy-wait hazard, W032).
        let (task, depth) = {
            let mut q = shared.lock_queue();
            loop {
                if let Some(t) = q.pop_front() {
                    break (t, q.len() as u64);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                let (guard, _timeout) = shared
                    .work
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
            }
        };
        if let Some(scope) = &shared.scope {
            scope.set_queue_depth(depth);
        }
        if task.req.cancelled.load(Ordering::Relaxed) {
            continue;
        }
        let buf = render_package(shared, &task, &mut state);
        deliver(&task.req, task.seq, buf);
        if let Some(scope) = &shared.scope {
            scope.progress();
        }
    }
}

/// Hand one rendered package to its request: slot it into the reorder
/// buffer, promote whatever became contiguous, and wake the reader only
/// after the state guard is released.
fn deliver(req: &RequestShared, seq: u64, buf: Vec<u8>) {
    let mut st = req.state.lock().unwrap_or_else(PoisonError::into_inner);
    let mut ready = st.reorder.push(seq, buf);
    while let Some(b) = ready {
        st.ready.push_back(b);
        ready = st.reorder.pop_ready();
    }
    drop(st);
    req.ready.notify_all();
}

/// Render one package of one request: the request's slice of the same
/// package grid a batch run would use, framed positionally, through the
/// configured engine. Byte-identity with batch output follows from the
/// formatter contract: `begin` + per-row appends + `end`, independent of
/// package boundaries.
fn render_package(shared: &ServiceShared, task: &Task, state: &mut WorkerState) -> Vec<u8> {
    let req = &task.req;
    let start = req.rows.start + task.seq * shared.package_rows;
    let end = (start + shared.package_rows).min(req.rows.end);
    let start = start.min(end);
    let first = task.seq == 0;
    let last = task.seq + 1 == req.total_packages;
    let mut out =
        Vec::with_capacity(package_capacity_hint(req.row_bound, end - start).min(1 << 22));
    if first && req.framing.begin {
        req.formatter.begin(&mut out, &req.meta);
    }
    if end > start {
        let pkg = ProjectPackage {
            job: 0,
            pkg: WorkPackage {
                seq: task.seq,
                table: req.table,
                update: req.update,
                rows: start..end,
            },
        };
        if shared.columnar {
            format_package_columnar(
                &req.rt,
                &pkg,
                req.formatter.as_ref(),
                &req.meta,
                &mut state.batch,
                &mut state.scratch,
                &mut out,
            );
        } else {
            format_package(
                &req.rt,
                &pkg,
                req.formatter.as_ref(),
                &req.meta,
                &mut state.row_buf,
                &mut state.scratch,
                &mut out,
            );
        }
    }
    if last && req.framing.end {
        req.formatter.end(&mut out, &req.meta);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{generate_table_range, RunConfig};
    use crate::telemetry::TelemetryConfig;
    use pdgf_gen::MapResolver;
    use pdgf_output::{CsvFormatter, JsonFormatter, MemorySink, SqlFormatter, XmlFormatter};
    use pdgf_schema::{Expr, Field, GeneratorSpec, Schema, SqlType, Table};

    fn runtime(rows: u64) -> Arc<SchemaRuntime> {
        let schema = Schema::new("serve", 77).table(
            Table::new("t", &format!("{rows}"))
                .field(
                    Field::new("id", SqlType::BigInt, GeneratorSpec::Id { permute: false })
                        .primary(),
                )
                .field(Field::new(
                    "v",
                    SqlType::Integer,
                    GeneratorSpec::Long {
                        min: Expr::parse("0").unwrap(),
                        max: Expr::parse("999999").unwrap(),
                    },
                )),
        );
        Arc::new(SchemaRuntime::build(&schema, &MapResolver::new()).unwrap())
    }

    fn batch_bytes(rt: &SchemaRuntime, formatter: &dyn Formatter) -> Vec<u8> {
        let mut sink = MemorySink::new();
        generate_table_range(
            rt,
            0,
            0,
            0..rt.tables()[0].size,
            formatter,
            &mut sink,
            &RunConfig::new().workers(0).package_rows(64),
            None,
        )
        .unwrap();
        sink.as_str().as_bytes().to_vec()
    }

    fn drain(mut stream: ResponseStream) -> Vec<u8> {
        let mut out = Vec::new();
        while let Some(chunk) = stream.next_package() {
            out.extend_from_slice(&chunk);
        }
        out
    }

    #[test]
    fn point_and_batch_lineage_routes_agree() {
        let rt = runtime(100);
        let service = RowService::new(Arc::clone(&rt), ServeConfig::new().workers(1), None);
        // The two hooks derive the cell seed through genuinely different
        // code paths (direct FieldCoord walk vs hoisted update_seed +
        // per-cell mix); serve correctness rests on them agreeing.
        for column in 0..2 {
            for update in [0u32, 1, 3] {
                for row in [0u64, 1, 17, 99, 1 << 40] {
                    assert_eq!(
                        service.point_lineage(0, column, update, row),
                        service.batch_lineage(0, column, update, row),
                        "column {column} update {update} row {row}"
                    );
                }
            }
        }
    }

    #[test]
    fn range_responses_concatenate_to_batch_bytes() {
        let rt = runtime(1_000);
        let formatters: [Arc<dyn Formatter>; 4] = [
            Arc::new(CsvFormatter::new().with_header()),
            Arc::new(JsonFormatter),
            Arc::new(XmlFormatter),
            Arc::new(SqlFormatter::new()),
        ];
        let service = RowService::new(
            Arc::clone(&rt),
            ServeConfig::new().workers(3).package_rows(37),
            None,
        );
        for formatter in &formatters {
            let whole = batch_bytes(&rt, formatter.as_ref());
            let mut concat = Vec::new();
            for range in [0..311u64, 311..312, 312..1_000] {
                let a = drain(
                    service
                        .submit(
                            RowRequest::range(0, 0, range.clone()),
                            Arc::clone(formatter),
                        )
                        .unwrap(),
                );
                // Same range twice returns identical bytes.
                let b = drain(
                    service
                        .submit(RowRequest::range(0, 0, range), Arc::clone(formatter))
                        .unwrap(),
                );
                assert_eq!(a, b, "determinism: repeated request differs");
                concat.extend_from_slice(&a);
            }
            assert_eq!(
                concat,
                whole,
                "format={}: concatenated ranges != batch file",
                formatter.name()
            );
        }
    }

    #[test]
    fn row_path_matches_columnar_path() {
        let rt = runtime(300);
        let csv: Arc<dyn Formatter> = Arc::new(CsvFormatter::new());
        let columnar = RowService::new(
            Arc::clone(&rt),
            ServeConfig::new()
                .workers(2)
                .package_rows(16)
                .columnar(true),
            None,
        );
        let row = RowService::new(
            Arc::clone(&rt),
            ServeConfig::new()
                .workers(2)
                .package_rows(16)
                .columnar(false),
            None,
        );
        let a = drain(
            columnar
                .submit(RowRequest::range(0, 0, 10..290), Arc::clone(&csv))
                .unwrap(),
        );
        let b = drain(
            row.submit(RowRequest::range(0, 0, 10..290), Arc::clone(&csv))
                .unwrap(),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn point_lookups_tile_the_whole_table() {
        let rt = runtime(50);
        let service = RowService::new(
            Arc::clone(&rt),
            ServeConfig::new().workers(2).package_rows(8),
            None,
        );
        let csv: Arc<dyn Formatter> = Arc::new(CsvFormatter::new());
        let whole = batch_bytes(&rt, &CsvFormatter::new());
        let mut concat = Vec::new();
        for row in 0..50 {
            concat.extend_from_slice(&service.row_bytes(0, 0, row, Arc::clone(&csv)).unwrap());
        }
        assert_eq!(concat, whole, "point lookups tile the CSV body");
    }

    /// The backpressure contract: with ONE worker, a reader that never
    /// consumes its stream must not wedge the pool — another request
    /// completes fully while the slow reader sits on its window.
    #[test]
    fn unread_stream_does_not_stall_other_requests() {
        let rt = runtime(10_000);
        let service = RowService::new(
            Arc::clone(&rt),
            ServeConfig::new().workers(1).package_rows(100).window(2),
            None,
        );
        let csv: Arc<dyn Formatter> = Arc::new(CsvFormatter::new());
        // 100 packages total, window 2: only 2 are ever issued because
        // the reader never consumes one.
        let slow = service
            .submit(RowRequest::range(0, 0, 0..10_000), Arc::clone(&csv))
            .unwrap();
        let fast = drain(
            service
                .submit(RowRequest::range(0, 0, 0..10_000), Arc::clone(&csv))
                .unwrap(),
        );
        assert_eq!(fast, batch_bytes(&rt, &CsvFormatter::new()));
        drop(slow);
        let stats = service.stats();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.aborted, 1);
    }

    #[test]
    fn invalid_requests_are_rejected() {
        let rt = runtime(100);
        let service = RowService::new(
            Arc::clone(&rt),
            ServeConfig::new().workers(1).max_request_rows(50),
            None,
        );
        let csv: Arc<dyn Formatter> = Arc::new(CsvFormatter::new());
        assert_eq!(
            service
                .submit(RowRequest::range(9, 0, 0..1), Arc::clone(&csv))
                .err(),
            Some(SubmitError::UnknownTable(9))
        );
        assert!(matches!(
            service
                .submit(RowRequest::range(0, 0, 50..200), Arc::clone(&csv))
                .err(),
            Some(SubmitError::RangeOutOfBounds { .. })
        ));
        assert_eq!(
            service
                .submit(RowRequest::range(0, 0, 0..51), Arc::clone(&csv))
                .err(),
            Some(SubmitError::TooLarge {
                requested: 51,
                max: 50
            })
        );
        assert_eq!(service.stats().rejected, 3);
        assert_eq!(service.table_index("t"), Some(0));
        assert_eq!(service.table_index("nope"), None);
    }

    #[test]
    fn request_events_and_stats_flow_through_telemetry() {
        let rt = runtime(200);
        let telemetry = Telemetry::with_config(TelemetryConfig {
            stall_timeout: Duration::from_secs(10),
            bus_capacity: 256,
        });
        let sub = telemetry.subscribe();
        let mut service = RowService::new(
            Arc::clone(&rt),
            ServeConfig::new().workers(2).package_rows(64),
            Some(&telemetry),
        );
        let csv: Arc<dyn Formatter> = Arc::new(CsvFormatter::new());
        let bytes = drain(
            service
                .submit(RowRequest::range(0, 0, 0..200), Arc::clone(&csv))
                .unwrap(),
        );
        assert!(!bytes.is_empty());
        let stats = service.stats();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.rows, 200);
        assert_eq!(stats.bytes, bytes.len() as u64);
        assert_eq!(stats.latency.count, 1);
        assert!(stats.qps > 0.0);
        service.shutdown();
        telemetry.close();
        let kinds: Vec<&'static str> = std::iter::from_fn(|| sub.recv())
            .map(|e| match e.event {
                RunEvent::RunStarted { .. } => "run_started",
                RunEvent::RequestStarted { .. } => "request_started",
                RunEvent::RequestFinished { .. } => "request_finished",
                RunEvent::RunFinished { .. } => "run_finished",
                _ => "other",
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                "run_started",
                "request_started",
                "request_finished",
                "run_finished"
            ]
        );
    }

    #[test]
    fn empty_table_range_still_owns_framing() {
        let rt = runtime(0);
        let service = RowService::new(Arc::clone(&rt), ServeConfig::new().workers(1), None);
        let xml: Arc<dyn Formatter> = Arc::new(XmlFormatter);
        let got = drain(
            service
                .submit(RowRequest::range(0, 0, 0..0), Arc::clone(&xml))
                .unwrap(),
        );
        assert_eq!(got, batch_bytes(&rt, &XmlFormatter));
    }
}
