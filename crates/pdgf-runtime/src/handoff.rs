//! The worker/output-stage handoff primitives of the scheduler.
//!
//! The parallel pipeline of [`crate::scheduler`] rests on exactly two
//! pieces of cross-thread coordination, factored out here so they can be
//! model-checked in isolation (see `tests/loom.rs`):
//!
//! * [`TicketCounter`] — the global package queue. Packages are uniform,
//!   so instead of work stealing every worker claims the next index off
//!   one atomic counter; each ticket is handed out exactly once.
//! * [`channel`] — the bounded MPSC channel carrying formatted package
//!   buffers from workers to the single output stage, with backpressure
//!   (workers stall rather than buffering the whole project when a sink
//!   is slow) and hang-up semantics in both directions: dropping the
//!   [`Receiver`] makes every [`Sender::send`] fail (how a sink error
//!   stops the pool), and dropping all senders ends the receiver's
//!   iteration (how the output stage knows the run is complete).
//!
//! Everything is built on the [`crate::sync`] facade, so compiling with
//! `--cfg loom` swaps the primitives for loom's instrumented versions.
//! Lock poisoning is deliberately ignored (`PoisonError::into_inner`):
//! the protected state is a plain queue that stays valid if a peer
//! panicked mid-send, and the scheduler's own lost-package accounting
//! catches any shortfall.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, MutexGuard, PoisonError};

use crate::sync::{AtomicU64, Condvar, Mutex, Ordering};

/// A claim-once ticket dispenser over `0..limit`.
///
/// Every call to [`claim`](Self::claim) returns a ticket no other call
/// ever received; once `limit` tickets are out, all callers get `None`.
#[derive(Debug)]
pub struct TicketCounter {
    next: AtomicU64,
    limit: u64,
}

impl TicketCounter {
    /// Dispenser for tickets `0..limit`.
    pub fn new(limit: u64) -> Self {
        Self {
            next: AtomicU64::new(0),
            limit,
        }
    }

    /// Claim the next ticket, or `None` when all have been handed out.
    pub fn claim(&self) -> Option<u64> {
        let t = self.next.fetch_add(1, Ordering::Relaxed);
        (t < self.limit).then_some(t)
    }
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receiver_alive: bool,
}

impl<T> Shared<T> {
    fn state(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Error returned by [`Sender::send`] after the receiver hung up; carries
/// the unsent value back to the caller.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

/// Sending half of a [`channel`]. Cloneable; the channel disconnects for
/// the receiver once every clone is dropped.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Deliver `value`, blocking while the channel is at capacity.
    /// Fails (returning the value) once the receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state();
        loop {
            if !state.receiver_alive {
                return Err(SendError(value));
            }
            if state.queue.len() < self.shared.capacity {
                break;
            }
            state = self
                .shared
                .not_full
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        state.queue.push_back(value);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state().senders += 1;
        Self {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state();
        state.senders -= 1;
        let disconnected = state.senders == 0;
        drop(state);
        if disconnected {
            // Wake a receiver blocked on an empty queue so it can see
            // the disconnect and finish.
            self.shared.not_empty.notify_all();
        }
    }
}

/// Receiving half of a [`channel`].
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Take the next value, blocking while the channel is empty.
    /// Returns `None` once the queue is drained and all senders are gone.
    pub fn recv(&self) -> Option<T> {
        let mut state = self.shared.state();
        loop {
            if let Some(v) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Some(v);
            }
            if state.senders == 0 {
                return None;
            }
            state = self
                .shared
                .not_empty
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.state().receiver_alive = false;
        // Wake senders blocked on a full queue so they can observe the
        // hang-up instead of waiting forever.
        self.shared.not_full.notify_all();
    }
}

/// Iterate by draining: `for v in rx` receives until disconnect.
impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;

    fn into_iter(self) -> IntoIter<T> {
        IntoIter { rx: self }
    }
}

/// Draining iterator over a [`Receiver`].
pub struct IntoIter<T> {
    rx: Receiver<T>,
}

impl<T> Iterator for IntoIter<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.rx.recv()
    }
}

/// A bounded multi-producer single-consumer channel holding at most
/// `capacity` values (at least 1).
pub fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(capacity.max(1)),
            senders: 1,
            receiver_alive: true,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity: capacity.max(1),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn tickets_cover_the_range_exactly_once() {
        let tickets = TicketCounter::new(1000);
        let seen = std::sync::Mutex::new(vec![0u32; 1000]);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let mut mine = Vec::new();
                    while let Some(t) = tickets.claim() {
                        mine.push(t);
                    }
                    let mut seen = seen.lock().unwrap();
                    for t in mine {
                        seen[t as usize] += 1;
                    }
                });
            }
        });
        assert!(seen.lock().unwrap().iter().all(|&n| n == 1));
        assert_eq!(tickets.claim(), None, "exhausted counter stays exhausted");
    }

    #[test]
    fn zero_ticket_counter_is_empty() {
        assert_eq!(TicketCounter::new(0).claim(), None);
    }

    #[test]
    fn channel_delivers_in_fifo_order() {
        let (tx, rx) = channel::<u32>(2);
        let t = std::thread::spawn(move || {
            for v in 0..100 {
                tx.send(v).unwrap();
            }
        });
        let got: Vec<u32> = rx.into_iter().collect();
        t.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn receiver_ends_when_all_senders_drop() {
        let (tx, rx) = channel::<u32>(4);
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.into_iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = channel::<u32>(1);
        drop(rx);
        let err = tx.send(7).unwrap_err();
        assert_eq!(err.0, 7, "the value comes back");
    }

    #[test]
    fn receiver_drop_unblocks_a_full_channel_sender() {
        let (tx, rx) = channel::<u32>(1);
        tx.send(0).unwrap();
        let sender = std::thread::spawn(move || tx.send(1).is_err());
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(rx);
        assert!(
            sender.join().unwrap(),
            "blocked sender must fail, not hang, on receiver drop"
        );
    }

    #[test]
    fn backpressure_bounds_the_queue() {
        let (tx, rx) = channel::<u32>(2);
        let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let c = counter.clone();
        let t = std::thread::spawn(move || {
            for v in 0..10 {
                tx.send(v).unwrap();
                c.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        let sent_before_any_recv = counter.load(std::sync::atomic::Ordering::SeqCst);
        assert!(
            sent_before_any_recv <= 3,
            "sender ran {sent_before_any_recv} sends past a capacity-2 channel"
        );
        assert_eq!(rx.into_iter().count(), 10);
        t.join().unwrap();
    }
}
