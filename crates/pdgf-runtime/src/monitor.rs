//! Live progress counters.
//!
//! The paper's demo monitors generation through Java Mission Control /
//! JMX; the equivalent observability surface here is a cheap shared
//! counter set that workers bump and a UI (or test) can snapshot at any
//! time: "the progress of single tables and the complete data set as well
//! as general performance parameters can be visualized". The monitor
//! tracks both the aggregate run and each table's own progress, and its
//! throughput clock starts at the *first recorded package* — a monitor
//! created long before the run starts does not understate MB/s.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Shared progress counters for one generation run.
#[derive(Debug, Clone)]
pub struct Monitor {
    inner: Arc<MonitorInner>,
}

#[derive(Debug)]
struct MonitorInner {
    rows: AtomicU64,
    bytes: AtomicU64,
    packages: AtomicU64,
    /// Set when the first package (or framing bytes) is recorded; the
    /// throughput clock measures from here, not from `Monitor::new()`.
    started: OnceLock<Instant>,
    /// Per-table counters, keyed by table name in first-seen order.
    tables: Mutex<Vec<TableCounters>>,
}

#[derive(Debug)]
struct TableCounters {
    name: String,
    rows: u64,
    bytes: u64,
    packages: u64,
}

/// A point-in-time view of a [`Monitor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Snapshot {
    /// Rows generated so far.
    pub rows: u64,
    /// Output bytes produced so far.
    pub bytes: u64,
    /// Work packages completed so far.
    pub packages: u64,
    /// Seconds since the first recorded package (0 before any).
    pub elapsed_secs: f64,
    /// Megabytes per second since the first recorded package.
    pub throughput_mb_s: f64,
}

/// A point-in-time view of one table's progress.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSnapshot {
    /// Table name.
    pub table: String,
    /// Rows generated so far for this table.
    pub rows: u64,
    /// Output bytes produced so far for this table.
    pub bytes: u64,
    /// Work packages completed so far for this table.
    pub packages: u64,
}

impl Default for Monitor {
    fn default() -> Self {
        Self::new()
    }
}

impl Monitor {
    /// Fresh counters. The throughput clock starts lazily at the first
    /// recorded package, so creating the monitor early costs nothing.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(MonitorInner {
                rows: AtomicU64::new(0),
                bytes: AtomicU64::new(0),
                packages: AtomicU64::new(0),
                started: OnceLock::new(),
                tables: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Record a completed package of `rows` rows and `bytes` output bytes
    /// (aggregate counters only).
    #[inline]
    pub fn record_package(&self, rows: u64, bytes: u64) {
        self.inner.started.get_or_init(Instant::now);
        self.inner.rows.fetch_add(rows, Ordering::Relaxed);
        self.inner.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.inner.packages.fetch_add(1, Ordering::Relaxed);
    }

    /// A poisoned monitor lock only risks slightly stale counters — the
    /// run's correctness never depends on them — so recover the guard
    /// instead of propagating the panic.
    fn tables(&self) -> MutexGuard<'_, Vec<TableCounters>> {
        self.inner
            .tables
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Record a completed package of `table`, updating both the aggregate
    /// and the table's own counters.
    pub fn record_table_package(&self, table: &str, rows: u64, bytes: u64) {
        self.record_package(rows, bytes);
        let mut tables = self.tables();
        let entry = Self::entry(&mut tables, table);
        entry.rows += rows;
        entry.bytes += bytes;
        entry.packages += 1;
    }

    /// Record framing bytes (headers, document closers) of `table`: bytes
    /// that reach the sink outside any work package.
    pub fn record_table_framing(&self, table: &str, bytes: u64) {
        if bytes == 0 {
            return;
        }
        self.inner.started.get_or_init(Instant::now);
        self.inner.bytes.fetch_add(bytes, Ordering::Relaxed);
        let mut tables = self.tables();
        Self::entry(&mut tables, table).bytes += bytes;
    }

    fn entry<'t>(tables: &'t mut Vec<TableCounters>, table: &str) -> &'t mut TableCounters {
        let i = match tables.iter().position(|t| t.name == table) {
            Some(i) => i,
            None => {
                tables.push(TableCounters {
                    name: table.to_string(),
                    rows: 0,
                    bytes: 0,
                    packages: 0,
                });
                tables.len() - 1
            }
        };
        &mut tables[i]
    }

    /// Current aggregate totals and derived throughput.
    pub fn snapshot(&self) -> Snapshot {
        let elapsed = self
            .inner
            .started
            .get()
            .map(|s| s.elapsed().as_secs_f64())
            .unwrap_or(0.0);
        let bytes = self.inner.bytes.load(Ordering::Relaxed);
        Snapshot {
            rows: self.inner.rows.load(Ordering::Relaxed),
            bytes,
            packages: self.inner.packages.load(Ordering::Relaxed),
            elapsed_secs: elapsed,
            throughput_mb_s: if elapsed > 0.0 {
                bytes as f64 / 1e6 / elapsed
            } else {
                0.0
            },
        }
    }

    /// Per-table progress, in first-seen order.
    pub fn table_snapshots(&self) -> Vec<TableSnapshot> {
        self.tables()
            .iter()
            .map(|t| TableSnapshot {
                table: t.name.clone(),
                rows: t.rows,
                bytes: t.bytes,
                packages: t.packages,
            })
            .collect()
    }

    /// Progress of one table, if any of its packages have been recorded.
    pub fn table_snapshot(&self, table: &str) -> Option<TableSnapshot> {
        self.table_snapshots()
            .into_iter()
            .find(|t| t.table == table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Monitor::new();
        m.record_package(100, 4096);
        m.record_package(50, 1024);
        let s = m.snapshot();
        assert_eq!(s.rows, 150);
        assert_eq!(s.bytes, 5120);
        assert_eq!(s.packages, 2);
        assert!(s.elapsed_secs >= 0.0);
    }

    #[test]
    fn clones_share_counters() {
        let m = Monitor::new();
        let m2 = m.clone();
        m.record_package(1, 10);
        m2.record_package(2, 20);
        assert_eq!(m.snapshot().rows, 3);
        assert_eq!(m2.snapshot().bytes, 30);
    }

    #[test]
    fn counters_are_thread_safe() {
        let m = Monitor::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.record_package(1, 2);
                    }
                });
            }
        });
        let snap = m.snapshot();
        assert_eq!(snap.rows, 8000);
        assert_eq!(snap.bytes, 16_000);
        assert_eq!(snap.packages, 8000);
    }

    #[test]
    fn clock_starts_at_first_package_not_construction() {
        let m = Monitor::new();
        assert_eq!(m.snapshot().elapsed_secs, 0.0, "no packages, no clock");
        assert_eq!(m.snapshot().throughput_mb_s, 0.0);
        std::thread::sleep(std::time::Duration::from_millis(60));
        m.record_package(10, 1_000_000);
        let s = m.snapshot();
        // The 60 ms spent idle before the run must not count: a delayed
        // run's throughput is measured from its own first package.
        assert!(
            s.elapsed_secs < 0.05,
            "clock includes pre-run idle time: {}s",
            s.elapsed_secs
        );
    }

    #[test]
    fn per_table_counters_track_each_table() {
        let m = Monitor::new();
        m.record_table_package("a", 10, 100);
        m.record_table_package("b", 20, 200);
        m.record_table_package("a", 5, 50);
        m.record_table_framing("a", 7);
        m.record_table_framing("b", 0); // no-op

        let a = m.table_snapshot("a").expect("table a recorded");
        assert_eq!(a.rows, 15);
        assert_eq!(a.bytes, 157);
        assert_eq!(a.packages, 2);
        let b = m.table_snapshot("b").expect("table b recorded");
        assert_eq!(b.rows, 20);
        assert_eq!(b.bytes, 200);
        assert_eq!(b.packages, 1);
        assert!(m.table_snapshot("c").is_none());

        // Aggregate view includes framing bytes and both tables.
        let s = m.snapshot();
        assert_eq!(s.rows, 35);
        assert_eq!(s.bytes, 357);
        assert_eq!(s.packages, 3);

        let all = m.table_snapshots();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].table, "a", "first-seen order");
    }
}
