//! Live progress counters.
//!
//! The paper's demo monitors generation through Java Mission Control /
//! JMX; the equivalent observability surface here is a cheap shared
//! counter set that workers bump and a UI (or test) can snapshot at any
//! time: "the progress of single tables and the complete data set as well
//! as general performance parameters can be visualized".

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Shared progress counters for one generation run.
#[derive(Debug, Clone)]
pub struct Monitor {
    inner: Arc<MonitorInner>,
}

#[derive(Debug)]
struct MonitorInner {
    rows: AtomicU64,
    bytes: AtomicU64,
    packages: AtomicU64,
    started: Instant,
}

/// A point-in-time view of a [`Monitor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Snapshot {
    /// Rows generated so far.
    pub rows: u64,
    /// Output bytes produced so far.
    pub bytes: u64,
    /// Work packages completed so far.
    pub packages: u64,
    /// Seconds since the monitor was created.
    pub elapsed_secs: f64,
    /// Megabytes per second since the monitor was created.
    pub throughput_mb_s: f64,
}

impl Default for Monitor {
    fn default() -> Self {
        Self::new()
    }
}

impl Monitor {
    /// Fresh counters, clock starting now.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(MonitorInner {
                rows: AtomicU64::new(0),
                bytes: AtomicU64::new(0),
                packages: AtomicU64::new(0),
                started: Instant::now(),
            }),
        }
    }

    /// Record a completed package of `rows` rows and `bytes` output bytes.
    #[inline]
    pub fn record_package(&self, rows: u64, bytes: u64) {
        self.inner.rows.fetch_add(rows, Ordering::Relaxed);
        self.inner.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.inner.packages.fetch_add(1, Ordering::Relaxed);
    }

    /// Current totals and derived throughput.
    pub fn snapshot(&self) -> Snapshot {
        let elapsed = self.inner.started.elapsed().as_secs_f64();
        let bytes = self.inner.bytes.load(Ordering::Relaxed);
        Snapshot {
            rows: self.inner.rows.load(Ordering::Relaxed),
            bytes,
            packages: self.inner.packages.load(Ordering::Relaxed),
            elapsed_secs: elapsed,
            throughput_mb_s: if elapsed > 0.0 {
                bytes as f64 / 1e6 / elapsed
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Monitor::new();
        m.record_package(100, 4096);
        m.record_package(50, 1024);
        let s = m.snapshot();
        assert_eq!(s.rows, 150);
        assert_eq!(s.bytes, 5120);
        assert_eq!(s.packages, 2);
        assert!(s.elapsed_secs >= 0.0);
    }

    #[test]
    fn clones_share_counters() {
        let m = Monitor::new();
        let m2 = m.clone();
        m.record_package(1, 10);
        m2.record_package(2, 20);
        assert_eq!(m.snapshot().rows, 3);
        assert_eq!(m2.snapshot().bytes, 30);
    }

    #[test]
    fn counters_are_thread_safe() {
        let m = Monitor::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.record_package(1, 2);
                    }
                });
            }
        });
        let snap = m.snapshot();
        assert_eq!(snap.rows, 8000);
        assert_eq!(snap.bytes, 16_000);
        assert_eq!(snap.packages, 8000);
    }
}
