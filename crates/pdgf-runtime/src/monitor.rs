//! Live progress counters.
//!
//! The paper's demo monitors generation through Java Mission Control /
//! JMX; the equivalent observability surface here is a cheap shared
//! counter set that workers bump and a UI (or test) can snapshot at any
//! time: "the progress of single tables and the complete data set as well
//! as general performance parameters can be visualized". The monitor
//! tracks both the aggregate run and each table's own progress, and its
//! throughput clock starts at the *first recorded package* — a monitor
//! created long before the run starts does not understate MB/s.
//!
//! Recording is designed for the output stage's per-package cadence: a
//! run pre-registers its tables once ([`Monitor::register_table`]) and
//! records through the returned [`TableHandle`] with a handful of relaxed
//! atomic adds — no name lookup, no lock. The name-keyed
//! [`record_table_package`](Monitor::record_table_package) entry point
//! remains for callers without a handle; it pays a registry lock plus a
//! linear scan per call and is not meant for hot paths.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Shared progress counters for one generation run.
#[derive(Debug, Clone)]
pub struct Monitor {
    inner: Arc<MonitorInner>,
}

#[derive(Debug)]
struct MonitorInner {
    rows: AtomicU64,
    bytes: AtomicU64,
    packages: AtomicU64,
    /// Set when the first package (or framing bytes) is recorded; the
    /// throughput clock measures from here, not from `Monitor::new()`.
    started: OnceLock<Instant>,
    /// Per-table counter cells, in first-registered order. The lock only
    /// guards the registry vector; the cells themselves are atomic.
    tables: Mutex<Vec<Arc<TableCell>>>,
}

impl MonitorInner {
    fn start_clock(&self) {
        self.started.get_or_init(Instant::now);
    }
}

#[derive(Debug)]
struct TableCell {
    name: String,
    rows: AtomicU64,
    bytes: AtomicU64,
    packages: AtomicU64,
}

impl TableCell {
    fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            rows: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            packages: AtomicU64::new(0),
        }
    }
}

/// A pre-registered table's recording handle: bumps its table's and the
/// aggregate counters with relaxed atomics only — the per-package fast
/// path ([`Monitor::register_table`]).
#[derive(Debug, Clone)]
pub struct TableHandle {
    inner: Arc<MonitorInner>,
    cell: Arc<TableCell>,
}

impl TableHandle {
    /// Record a completed package of this table.
    #[inline]
    pub fn record_package(&self, rows: u64, bytes: u64) {
        self.inner.start_clock();
        self.inner.rows.fetch_add(rows, Ordering::Relaxed);
        self.inner.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.inner.packages.fetch_add(1, Ordering::Relaxed);
        self.cell.rows.fetch_add(rows, Ordering::Relaxed);
        self.cell.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.cell.packages.fetch_add(1, Ordering::Relaxed);
    }

    /// Record framing bytes (headers, document closers): bytes that reach
    /// the sink outside any work package.
    #[inline]
    pub fn record_framing(&self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        self.inner.start_clock();
        self.inner.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.cell.bytes.fetch_add(bytes, Ordering::Relaxed);
    }
}

/// A point-in-time view of a [`Monitor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Snapshot {
    /// Rows generated so far.
    pub rows: u64,
    /// Output bytes produced so far.
    pub bytes: u64,
    /// Work packages completed so far.
    pub packages: u64,
    /// Seconds since the first recorded package (0 before any).
    pub elapsed_secs: f64,
    /// Megabytes per second since the first recorded package.
    pub throughput_mb_s: f64,
}

/// A point-in-time view of one table's progress.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSnapshot {
    /// Table name.
    pub table: String,
    /// Rows generated so far for this table.
    pub rows: u64,
    /// Output bytes produced so far for this table.
    pub bytes: u64,
    /// Work packages completed so far for this table.
    pub packages: u64,
}

impl Default for Monitor {
    fn default() -> Self {
        Self::new()
    }
}

impl Monitor {
    /// Fresh counters. The throughput clock starts lazily at the first
    /// recorded package, so creating the monitor early costs nothing.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(MonitorInner {
                rows: AtomicU64::new(0),
                bytes: AtomicU64::new(0),
                packages: AtomicU64::new(0),
                started: OnceLock::new(),
                tables: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Record a completed package of `rows` rows and `bytes` output bytes
    /// (aggregate counters only).
    #[inline]
    pub fn record_package(&self, rows: u64, bytes: u64) {
        self.inner.start_clock();
        self.inner.rows.fetch_add(rows, Ordering::Relaxed);
        self.inner.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.inner.packages.fetch_add(1, Ordering::Relaxed);
    }

    /// A poisoned monitor lock only risks slightly stale counters — the
    /// run's correctness never depends on them — so recover the guard
    /// instead of propagating the panic.
    fn tables(&self) -> MutexGuard<'_, Vec<Arc<TableCell>>> {
        self.inner
            .tables
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Register `table` (idempotently) and return its lock-free recording
    /// handle. A run registers every table once up front; per-package
    /// recording through the handle then never takes the registry lock.
    /// First-registered order is the order [`table_snapshots`]
    /// (Self::table_snapshots) reports.
    pub fn register_table(&self, table: &str) -> TableHandle {
        let mut tables = self.tables();
        let cell = match tables.iter().find(|c| c.name == table) {
            Some(cell) => Arc::clone(cell),
            None => {
                let cell = Arc::new(TableCell::new(table));
                tables.push(Arc::clone(&cell));
                cell
            }
        };
        drop(tables);
        TableHandle {
            inner: Arc::clone(&self.inner),
            cell,
        }
    }

    /// Record a completed package of `table`, updating both the aggregate
    /// and the table's own counters. Convenience path: resolves the name
    /// on every call — hot loops should hold a [`TableHandle`] instead.
    pub fn record_table_package(&self, table: &str, rows: u64, bytes: u64) {
        self.register_table(table).record_package(rows, bytes);
    }

    /// Record framing bytes (headers, document closers) of `table`: bytes
    /// that reach the sink outside any work package.
    pub fn record_table_framing(&self, table: &str, bytes: u64) {
        self.register_table(table).record_framing(bytes);
    }

    /// Current aggregate totals and derived throughput.
    pub fn snapshot(&self) -> Snapshot {
        let elapsed = self
            .inner
            .started
            .get()
            .map(|s| s.elapsed().as_secs_f64())
            .unwrap_or(0.0);
        let bytes = self.inner.bytes.load(Ordering::Relaxed);
        Snapshot {
            rows: self.inner.rows.load(Ordering::Relaxed),
            bytes,
            packages: self.inner.packages.load(Ordering::Relaxed),
            elapsed_secs: elapsed,
            throughput_mb_s: if elapsed > 0.0 {
                bytes as f64 / 1e6 / elapsed
            } else {
                0.0
            },
        }
    }

    /// Per-table progress, in first-registered order. Tables registered
    /// but not yet producing output appear with zero counts.
    pub fn table_snapshots(&self) -> Vec<TableSnapshot> {
        // Clone the cell list (cheap Arc bumps) so the registry guard is
        // released before the per-table snapshot work — string clones
        // never happen under the lock writers contend on.
        let cells: Vec<Arc<TableCell>> = self.tables().clone();
        cells
            .iter()
            .map(|c| TableSnapshot {
                table: c.name.clone(),
                rows: c.rows.load(Ordering::Relaxed),
                bytes: c.bytes.load(Ordering::Relaxed),
                packages: c.packages.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Progress of one table, if it has been registered.
    pub fn table_snapshot(&self, table: &str) -> Option<TableSnapshot> {
        self.table_snapshots()
            .into_iter()
            .find(|t| t.table == table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Monitor::new();
        m.record_package(100, 4096);
        m.record_package(50, 1024);
        let s = m.snapshot();
        assert_eq!(s.rows, 150);
        assert_eq!(s.bytes, 5120);
        assert_eq!(s.packages, 2);
        assert!(s.elapsed_secs >= 0.0);
    }

    #[test]
    fn clones_share_counters() {
        let m = Monitor::new();
        let m2 = m.clone();
        m.record_package(1, 10);
        m2.record_package(2, 20);
        assert_eq!(m.snapshot().rows, 3);
        assert_eq!(m2.snapshot().bytes, 30);
    }

    #[test]
    fn counters_are_thread_safe() {
        let m = Monitor::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.record_package(1, 2);
                    }
                });
            }
        });
        let snap = m.snapshot();
        assert_eq!(snap.rows, 8000);
        assert_eq!(snap.bytes, 16_000);
        assert_eq!(snap.packages, 8000);
    }

    #[test]
    fn clock_starts_at_first_package_not_construction() {
        let m = Monitor::new();
        assert_eq!(m.snapshot().elapsed_secs, 0.0, "no packages, no clock");
        assert_eq!(m.snapshot().throughput_mb_s, 0.0);
        std::thread::sleep(std::time::Duration::from_millis(60));
        m.record_package(10, 1_000_000);
        let s = m.snapshot();
        // The 60 ms spent idle before the run must not count: a delayed
        // run's throughput is measured from its own first package.
        assert!(
            s.elapsed_secs < 0.05,
            "clock includes pre-run idle time: {}s",
            s.elapsed_secs
        );
    }

    #[test]
    fn per_table_counters_track_each_table() {
        let m = Monitor::new();
        m.record_table_package("a", 10, 100);
        m.record_table_package("b", 20, 200);
        m.record_table_package("a", 5, 50);
        m.record_table_framing("a", 7);
        m.record_table_framing("b", 0); // no-op

        let a = m.table_snapshot("a").expect("table a recorded");
        assert_eq!(a.rows, 15);
        assert_eq!(a.bytes, 157);
        assert_eq!(a.packages, 2);
        let b = m.table_snapshot("b").expect("table b recorded");
        assert_eq!(b.rows, 20);
        assert_eq!(b.bytes, 200);
        assert_eq!(b.packages, 1);
        assert!(m.table_snapshot("c").is_none());

        // Aggregate view includes framing bytes and both tables.
        let s = m.snapshot();
        assert_eq!(s.rows, 35);
        assert_eq!(s.bytes, 357);
        assert_eq!(s.packages, 3);

        let all = m.table_snapshots();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].table, "a", "first-seen order");
    }

    #[test]
    fn handles_record_without_the_registry_lock() {
        let m = Monitor::new();
        let a = m.register_table("a");
        let a2 = m.register_table("a");
        let b = m.register_table("b");
        // Pre-registered tables appear immediately, with zero counts, in
        // registration order — the shape a progress UI wants up front.
        let all = m.table_snapshots();
        assert_eq!(all.len(), 2);
        assert_eq!((all[0].table.as_str(), all[0].rows), ("a", 0));

        std::thread::scope(|s| {
            for handle in [&a, &a2] {
                s.spawn(move || {
                    for _ in 0..500 {
                        handle.record_package(2, 10);
                    }
                });
            }
            s.spawn(|| {
                for _ in 0..100 {
                    b.record_package(1, 1);
                }
                b.record_framing(9);
            });
        });
        let sa = m.table_snapshot("a").expect("a");
        assert_eq!(sa.rows, 2000, "both handles hit the same cell");
        assert_eq!(sa.packages, 1000);
        let sb = m.table_snapshot("b").expect("b");
        assert_eq!(sb.bytes, 109);
        let total = m.snapshot();
        assert_eq!(total.rows, 2100);
        assert_eq!(total.bytes, 10_109);
    }

    #[test]
    fn poisoned_registry_recovers_with_honest_counters() {
        // A worker panicking while it holds the registry guard poisons
        // the mutex; surviving workers keep recording and the final
        // snapshot must count every completed package exactly once.
        let m = Monitor::new();
        let lineitem = m.register_table("lineitem");
        lineitem.record_package(10, 100);
        {
            let m = m.clone();
            let handle = std::thread::spawn(move || {
                let _guard = m.tables();
                panic!("worker dies holding the registry lock");
            });
            assert!(handle.join().is_err(), "the panic must reach join");
        }
        assert!(
            m.inner.tables.lock().is_err(),
            "the lock really was poisoned"
        );
        // Registration, handle recording, and snapshots all run through
        // the recovery helper and must still work.
        let orders = m.register_table("orders");
        orders.record_package(5, 50);
        lineitem.record_package(10, 100);
        let tables = m.table_snapshots();
        assert_eq!(tables.len(), 2);
        assert_eq!((tables[0].rows, tables[0].bytes), (20, 200));
        assert_eq!((tables[1].rows, tables[1].bytes), (5, 50));
        let total = m.snapshot();
        assert_eq!((total.rows, total.bytes, total.packages), (25, 250, 3));
    }
}
