//! The project-wide scheduler: one worker pool generating the work
//! packages of *every* table with sorted, per-table output streams.
//!
//! The pipeline is the paper's data flow: scheduler → workers (seed +
//! generate + format) → output system (reorder + sink). Where earlier
//! revisions spawned a fresh pool per table and ran tables strictly
//! sequentially — paying the spawn cost for every small table and idling
//! workers during each table's tail — [`run_project`] creates one pool
//! per run and drains a single global queue of packages spanning all
//! tables (and update epochs). Workers claim packages from a shared
//! ticket counter (packages are uniform, so a ticket counter beats work
//! stealing), format rows into recycled byte buffers, and hand completed
//! buffers to the output stage through a bounded channel for
//! backpressure. The output stage routes each package to its job's
//! [`ReorderBuffer`] and sink, so every table's stream stays byte-
//! identical to a sequential run even while tables overlap in time, and
//! written buffers return to a [`BufferPool`] shared with the workers —
//! after warm-up the steady state allocates nothing per package.
//!
//! Framing ([`Framing`]) makes node sharding exact for framed formats: a
//! shard emits the formatter's `begin`/`end` bytes only when it owns the
//! start/end of the table, so concatenated shard outputs equal the
//! single-node byte stream for CSV-with-header, XML, and SQL alike.
//!
//! Observability rides along without touching the bytes: a run accepts an
//! [`Observability`] bundle (progress [`Monitor`] and/or [`Telemetry`]).
//! With telemetry attached, workers time a sampled subset of rows into
//! per-worker histograms and the output stage publishes run/job/package
//! events — all copies of counters flowing outward, nothing flowing back
//! into generation, so output stays a pure function of (schema, seed,
//! format) with or without observers.

use std::io;
use std::sync::Arc;
use std::time::Instant;

use pdgf_gen::{GenScratch, SchemaRuntime};
use pdgf_output::{BufferPool, Formatter, ReorderBuffer, Sink, TableMeta};
use pdgf_schema::{ColumnBatch, Value};

use crate::handoff::{channel, TicketCounter};
use crate::metrics::{now_ns, PackageTimings, WorkerPhases, ROW_SAMPLE_EVERY};
use crate::monitor::TableHandle;
use crate::package::{packages_for_jobs, Framing, ProjectPackage, TableJob};
use crate::telemetry::{JobInfo, Observability, RunScope};

/// Scheduler configuration, built fluently and validated at set time:
///
/// ```
/// use pdgf_runtime::RunConfig;
/// let cfg = RunConfig::new().workers(8).package_rows(16_384);
/// assert_eq!(cfg.worker_threads(), 8);
/// assert_eq!(cfg.rows_per_package(), 16_384);
/// ```
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Worker threads. `0` runs inline on the calling thread (no thread
    /// or channel overhead — the configuration for latency microbenches).
    pub(crate) workers: usize,
    /// Rows per work package; always ≥ 1.
    pub(crate) package_rows: u64,
    /// Generate packages through the columnar batch path (default). The
    /// row path stays available (`columnar(false)`) for A/B comparison;
    /// both paths produce byte-identical output.
    pub(crate) columnar: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            workers: available_workers(),
            package_rows: 10_000,
            columnar: true,
        }
    }
}

impl RunConfig {
    /// Start from the defaults: one worker per available core, 10 000
    /// rows per package.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker thread count. `0` means inline execution on the
    /// calling thread.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Set the rows per work package.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is 0 — a zero-row package cannot make progress,
    /// and catching the misconfiguration at build time beats an infinite
    /// scheduling loop at run time.
    pub fn package_rows(mut self, rows: u64) -> Self {
        assert!(rows > 0, "RunConfig::package_rows must be at least 1");
        self.package_rows = rows;
        self
    }

    /// Choose between the columnar batch path (`true`, the default) and
    /// the per-row path (`false`). Output bytes are identical either way;
    /// the switch exists for A/B benchmarking and as an escape hatch.
    pub fn columnar(mut self, columnar: bool) -> Self {
        self.columnar = columnar;
        self
    }

    /// Configured worker thread count (`0` = inline).
    pub fn worker_threads(&self) -> usize {
        self.workers
    }

    /// Whether the columnar batch path is enabled.
    pub fn columnar_enabled(&self) -> bool {
        self.columnar
    }

    /// Configured rows per work package.
    pub fn rows_per_package(&self) -> u64 {
        self.package_rows
    }
}

/// Default worker count: one per available core.
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Result of generating one table (or table shard).
#[derive(Debug, Clone, Default)]
pub struct TableRunStats {
    /// Rows actually written to the sink (counted from the packages the
    /// output stage wrote, not assumed from the requested range).
    pub rows: u64,
    /// Bytes this run wrote to the sink — the delta produced by this job,
    /// not the sink's cumulative total, so reusing one sink across table
    /// runs (single-file multi-table output) does not over-count.
    pub bytes: u64,
    /// Wall-clock seconds from run start until this job's output was
    /// fully written. In a project run tables overlap in time, so this is
    /// a completion time, not an exclusive-occupancy time.
    pub seconds: f64,
}

impl TableRunStats {
    /// Megabytes per second.
    pub fn throughput_mb_s(&self) -> f64 {
        if self.seconds > 0.0 {
            self.bytes as f64 / 1e6 / self.seconds
        } else {
            0.0
        }
    }
}

/// Metadata for a runtime table.
pub fn table_meta(rt: &SchemaRuntime, table: u32) -> TableMeta {
    let t = &rt.tables()[table as usize];
    TableMeta {
        name: t.name.clone(),
        columns: t.columns.iter().map(|c| c.name.clone()).collect(),
    }
}

/// Generate rows `rows` of `table` (update epoch `update`), formatted by
/// `formatter`, into `sink`. Output bytes are identical for any worker
/// count — the determinism contract the test suite checks.
///
/// Framing is positional: `formatter.begin` is emitted only when the
/// range starts at row 0 and `formatter.end` only when it reaches the
/// table's last row, so node shards of framed formats concatenate into
/// exactly the single-node byte stream. Build a [`TableJob`] and call
/// [`run_project`] for explicit control over framing.
///
/// `obs` attaches observers: `None`, `&Monitor`, `&Telemetry`, or a full
/// [`Observability`].
#[allow(clippy::too_many_arguments)] // the full coordinate set is the API
pub fn generate_table_range<'a>(
    rt: &SchemaRuntime,
    table: u32,
    update: u32,
    rows: std::ops::Range<u64>,
    formatter: &dyn Formatter,
    sink: &mut dyn Sink,
    cfg: &RunConfig,
    obs: impl Into<Observability<'a>>,
) -> io::Result<TableRunStats> {
    let size = rt.tables()[table as usize].size;
    let job = TableJob {
        table,
        update,
        framing: Framing::for_range(&rows, size),
        rows,
    };
    let stats = run_project(rt, &[job], formatter, &mut [sink], cfg, obs)?;
    stats
        .into_iter()
        .next()
        .ok_or_else(|| io::Error::other("run_project returned no stats for its single job"))
}

/// Per-job bookkeeping of the output stage.
struct JobOutput {
    /// Packages of this job not yet written to the sink.
    remaining: u64,
    reorder: ReorderBuffer<(u64, u64, Vec<u8>, PackageTimings)>,
    stats: TableRunStats,
}

/// Read-only context shared by the output-stage helpers: the run's static
/// shape plus its (optional) observers.
struct RunCtx<'a> {
    formatter: &'a dyn Formatter,
    jobs: &'a [TableJob],
    metas: &'a [TableMeta],
    /// Per-job proven upper bound on formatted bytes per row, from the
    /// abstract interpreter's column profiles. `None` when no finite
    /// bound exists; package buffers are then sized by growth as before.
    row_bounds: &'a [Option<u64>],
    /// Per-job monitor handles, pre-registered at run start so the
    /// per-package path indexes directly instead of scanning by name.
    handles: Option<&'a [TableHandle]>,
    scope: Option<&'a RunScope>,
    started: Instant,
    /// Whether packages run through the columnar batch path.
    columnar: bool,
}

/// Cap on statically sized package buffers: a proven-but-huge bound (wide
/// rows × large packages) must not balloon a single allocation; past this
/// size ordinary growth takes over.
const MAX_PREALLOC_BYTES: u64 = 64 << 20;

/// Up-front capacity for one package buffer: the proven per-row bound
/// times the package's rows, capped at [`MAX_PREALLOC_BYTES`]. Zero (no
/// reservation) when the bound is unknown.
pub(crate) fn package_capacity_hint(row_bound: Option<u64>, rows: u64) -> usize {
    row_bound
        .and_then(|b| b.checked_mul(rows))
        .map_or(0, |b| b.min(MAX_PREALLOC_BYTES) as usize)
}

/// Generate every job of a project through one persistent worker pool.
///
/// `jobs[i]` writes to `sinks[i]`; each sink receives its job's bytes in
/// row order (byte-identical to a sequential run of that job alone),
/// while the pool keeps all workers busy across job boundaries. Sinks are
/// *not* [`finish`](Sink::finish)ed — that stays with the caller, which
/// may reuse a sink across runs.
///
/// On the first sink error the run aborts: the error is returned, and the
/// channel hang-up stops every worker regardless of which job it was
/// generating — an error on one table cannot deadlock workers that have
/// moved on to the next.
///
/// `obs` attaches observers: `None`, `&Monitor`, `&Telemetry`, or a full
/// [`Observability`]. Observers see lifecycle events and counters; they
/// cannot affect generated bytes.
pub fn run_project<'a>(
    rt: &SchemaRuntime,
    jobs: &[TableJob],
    formatter: &dyn Formatter,
    sinks: &mut [&mut dyn Sink],
    cfg: &RunConfig,
    obs: impl Into<Observability<'a>>,
) -> io::Result<Vec<TableRunStats>> {
    assert_eq!(jobs.len(), sinks.len(), "one sink per job");
    let obs = obs.into();
    // audit:allow(wall-clock) run statistics only; never influences generated bytes
    let started = Instant::now();
    let metas: Vec<TableMeta> = jobs.iter().map(|j| table_meta(rt, j.table)).collect();

    // Pre-register every job's table with the monitor so per-package
    // recording is a direct handle bump, not a name scan under a lock.
    // Registration order = job order, keeping first-seen order stable.
    let handles: Option<Vec<TableHandle>> = obs.monitor.map(|m| {
        metas
            .iter()
            .map(|meta| m.register_table(&meta.name))
            .collect()
    });
    let scope: Option<RunScope> = obs.telemetry.map(|t| {
        t.begin_run(
            jobs.iter()
                .zip(&metas)
                .map(|(j, m)| JobInfo::new(m.name.clone(), j.rows.end.saturating_sub(j.rows.start)))
                .collect(),
            cfg.workers,
        )
    });

    let mut outputs: Vec<JobOutput> = jobs
        .iter()
        .map(|_| JobOutput {
            remaining: 0,
            reorder: ReorderBuffer::new(),
            stats: TableRunStats::default(),
        })
        .collect();

    // Proven per-row byte bounds from the abstract interpreter, used to
    // pre-size package buffers to their final capacity. Purely an
    // allocation hint: output bytes are identical with or without it.
    let profiles = rt.profiles();
    let row_bounds: Vec<Option<u64>> = jobs
        .iter()
        .zip(&metas)
        .map(|(j, m)| formatter.max_row_bytes(m, &profiles[j.table as usize]))
        .collect();

    let ctx = RunCtx {
        formatter,
        jobs,
        metas: &metas,
        row_bounds: &row_bounds,
        handles: handles.as_deref(),
        scope: scope.as_ref(),
        started,
        columnar: cfg.columnar,
    };
    let result = run_phases(rt, &ctx, sinks, &mut outputs, cfg);

    if let Some(scope) = scope {
        // Success or failure, the scope closes with a terminal
        // `RunFinished` carrying whatever was actually written — so a
        // subscriber draining to JSONL always sees a terminated stream
        // (on errors: the `SinkError` from the output stage, then this).
        let rows = outputs.iter().map(|o| o.stats.rows).sum();
        let bytes = outputs.iter().map(|o| o.stats.bytes).sum();
        scope.finish(rows, bytes, started.elapsed().as_secs_f64());
    }
    result?;
    Ok(outputs.into_iter().map(|o| o.stats).collect())
}

/// The run body: framing, then inline or pooled package execution.
fn run_phases(
    rt: &SchemaRuntime,
    ctx: &RunCtx<'_>,
    sinks: &mut [&mut dyn Sink],
    outputs: &mut [JobOutput],
    cfg: &RunConfig,
) -> io::Result<()> {
    let packages = packages_for_jobs(ctx.jobs, cfg.package_rows);
    for p in &packages {
        outputs[p.job as usize].remaining += 1;
    }

    // Begin framing is written up front: jobs have disjoint sinks, so
    // cross-job write order never affects per-sink byte identity. Jobs
    // with no packages (empty shards that still own framing — e.g. an
    // empty table with a CSV header) complete right here.
    let mut frame_buf = Vec::new();
    for (idx, job) in ctx.jobs.iter().enumerate() {
        if job.framing.begin {
            frame_buf.clear();
            ctx.formatter.begin(&mut frame_buf, &ctx.metas[idx]);
            write_framing(ctx, &frame_buf, idx, sinks, outputs)?;
        }
        if outputs[idx].remaining == 0 {
            finish_job(ctx, idx, sinks, outputs)?;
        }
    }

    if packages.is_empty() {
        return Ok(());
    }
    if cfg.workers == 0 {
        run_inline(rt, ctx, &packages, sinks, outputs)
    } else {
        run_pool(rt, ctx, &packages, sinks, outputs, cfg)
    }
}

/// Append `bytes` framing output to job `idx`'s sink and counters.
fn write_framing(
    ctx: &RunCtx<'_>,
    bytes: &[u8],
    idx: usize,
    sinks: &mut [&mut dyn Sink],
    outputs: &mut [JobOutput],
) -> io::Result<()> {
    if bytes.is_empty() {
        return Ok(());
    }
    if let Some(scope) = ctx.scope {
        scope.job_started(idx);
        scope.begin_write(idx);
    }
    let write_result = sinks[idx].write_chunk(bytes);
    if let Some(scope) = ctx.scope {
        scope.end_write();
        if let Err(e) = &write_result {
            scope.sink_error(idx, e);
        }
    }
    write_result?;
    outputs[idx].stats.bytes += bytes.len() as u64;
    if let Some(handles) = ctx.handles {
        handles[idx].record_framing(bytes.len() as u64);
    }
    Ok(())
}

/// Write job `idx`'s end framing (if owned) and stamp its completion
/// time. Called exactly once per job, when its last package is written —
/// or immediately for jobs with no packages.
fn finish_job(
    ctx: &RunCtx<'_>,
    idx: usize,
    sinks: &mut [&mut dyn Sink],
    outputs: &mut [JobOutput],
) -> io::Result<()> {
    if ctx.jobs[idx].framing.end {
        let mut tail = Vec::new();
        ctx.formatter.end(&mut tail, &ctx.metas[idx]);
        write_framing(ctx, &tail, idx, sinks, outputs)?;
    }
    outputs[idx].stats.seconds = ctx.started.elapsed().as_secs_f64();
    if let Some(scope) = ctx.scope {
        // Jobs whose framing produced no bytes may not have announced
        // themselves yet; `job_started` is idempotent.
        scope.job_started(idx);
        scope.job_finished(idx, &outputs[idx].stats);
    }
    Ok(())
}

/// Write one completed package of job `idx` and, when it was the job's
/// last, finish the job.
#[allow(clippy::too_many_arguments)]
fn write_package(
    ctx: &RunCtx<'_>,
    seq: u64,
    rows: u64,
    buf: &[u8],
    mut timings: PackageTimings,
    idx: usize,
    sinks: &mut [&mut dyn Sink],
    outputs: &mut [JobOutput],
) -> io::Result<()> {
    if let Some(scope) = ctx.scope {
        scope.job_started(idx);
        scope.begin_write(idx);
    }
    let write_started = ctx.scope.map(|_| now_ns());
    let write_result = sinks[idx].write_chunk(buf);
    if let Some(scope) = ctx.scope {
        scope.end_write();
        if let Err(e) = &write_result {
            scope.sink_error(idx, e);
        }
    }
    write_result?;
    let out = &mut outputs[idx];
    out.stats.rows += rows;
    out.stats.bytes += buf.len() as u64;
    out.remaining -= 1;
    if let Some(handles) = ctx.handles {
        handles[idx].record_package(rows, buf.len() as u64);
    }
    if let Some(scope) = ctx.scope {
        if let Some(w0) = write_started {
            timings.write_ns = now_ns().saturating_sub(w0);
        }
        scope.package_completed(idx, seq, rows, buf.len() as u64, timings);
    }
    if out.remaining == 0 {
        finish_job(ctx, idx, sinks, outputs)?;
    }
    Ok(())
}

/// Reusable per-worker buffers: the row path's row buffer, the columnar
/// path's batch, and the generator scratch shared by both. One lives on
/// the inline thread and one in each pool worker (and in each serve
/// worker — see [`crate::serve`]); after warm-up neither path allocates
/// per package.
#[derive(Default)]
pub(crate) struct WorkerState {
    pub(crate) row_buf: Vec<Value>,
    pub(crate) batch: ColumnBatch,
    pub(crate) scratch: GenScratch,
}

/// Run one package through the configured path (columnar or row), timed
/// when telemetry is attached, appending formatted bytes to `out`.
fn execute_package(
    rt: &SchemaRuntime,
    ctx: &RunCtx<'_>,
    pkg: &ProjectPackage,
    state: &mut WorkerState,
    out: &mut Vec<u8>,
    phases: Option<&Arc<WorkerPhases>>,
) -> PackageTimings {
    let meta = &ctx.metas[pkg.job as usize];
    match (ctx.columnar, phases) {
        (true, Some(phases)) => format_package_columnar_timed(
            rt,
            pkg,
            ctx.formatter,
            meta,
            &mut state.batch,
            &mut state.scratch,
            out,
            phases,
        ),
        (true, None) => {
            format_package_columnar(
                rt,
                pkg,
                ctx.formatter,
                meta,
                &mut state.batch,
                &mut state.scratch,
                out,
            );
            PackageTimings::default()
        }
        (false, Some(phases)) => format_package_timed(
            rt,
            pkg,
            ctx.formatter,
            meta,
            &mut state.row_buf,
            &mut state.scratch,
            out,
            phases,
        ),
        (false, None) => {
            format_package(
                rt,
                pkg,
                ctx.formatter,
                meta,
                &mut state.row_buf,
                &mut state.scratch,
                out,
            );
            PackageTimings::default()
        }
    }
}

/// The columnar package body: generate the whole package column by
/// column into a typed [`ColumnBatch`], then transpose it through the
/// formatter's [`rows_columnar`](Formatter::rows_columnar). Byte-
/// identical to [`format_package`] by the kernel and formatter contracts.
pub(crate) fn format_package_columnar(
    rt: &SchemaRuntime,
    pkg: &ProjectPackage,
    formatter: &dyn Formatter,
    meta: &TableMeta,
    batch: &mut ColumnBatch,
    scratch: &mut GenScratch,
    out: &mut Vec<u8>,
) {
    rt.fill_batch(
        pkg.pkg.table,
        pkg.pkg.update,
        pkg.pkg.rows.clone(),
        batch,
        scratch,
    );
    formatter.rows_columnar(out, meta, batch);
}

/// [`format_package_columnar`] with phase instrumentation. The columnar
/// path has natural package-level phase boundaries (fill, then
/// transpose), so instead of sampling rows it times the two stages once
/// and feeds the per-row averages to the worker histograms — every row
/// is "sampled" at the cost of three clock reads per package.
#[allow(clippy::too_many_arguments)]
fn format_package_columnar_timed(
    rt: &SchemaRuntime,
    pkg: &ProjectPackage,
    formatter: &dyn Formatter,
    meta: &TableMeta,
    batch: &mut ColumnBatch,
    scratch: &mut GenScratch,
    out: &mut Vec<u8>,
    phases: &WorkerPhases,
) -> PackageTimings {
    let started = now_ns();
    let mut t = PackageTimings::default();
    rt.fill_batch(
        pkg.pkg.table,
        pkg.pkg.update,
        pkg.pkg.rows.clone(),
        batch,
        scratch,
    );
    let g1 = now_ns();
    formatter.rows_columnar(out, meta, batch);
    let f1 = now_ns();
    t.generate_ns = g1.saturating_sub(started);
    t.format_ns = f1.saturating_sub(g1);
    let rows = batch.rows() as u64;
    if let (Some(g), Some(f)) = (
        t.generate_ns.checked_div(rows),
        t.format_ns.checked_div(rows),
    ) {
        phases.generate.record(g);
        phases.format.record(f);
        t.sampled_rows = rows;
    }
    t.total_ns = now_ns().saturating_sub(started);
    phases.add_busy_ns(t.total_ns);
    t
}

pub(crate) fn format_package(
    rt: &SchemaRuntime,
    pkg: &ProjectPackage,
    formatter: &dyn Formatter,
    meta: &TableMeta,
    row_buf: &mut Vec<Value>,
    scratch: &mut GenScratch,
    out: &mut Vec<u8>,
) {
    for row in pkg.pkg.rows.clone() {
        rt.row_into_with_scratch(pkg.pkg.table, pkg.pkg.update, row, row_buf, scratch);
        formatter.row(out, meta, row_buf);
    }
}

/// [`format_package`] with phase instrumentation: one row in
/// [`ROW_SAMPLE_EVERY`] is timed around generate and format separately,
/// feeding the worker's private histograms; the whole package gets two
/// clock reads for busy time. Only used when telemetry is attached —
/// the uninstrumented path has zero added clock reads.
#[allow(clippy::too_many_arguments)]
fn format_package_timed(
    rt: &SchemaRuntime,
    pkg: &ProjectPackage,
    formatter: &dyn Formatter,
    meta: &TableMeta,
    row_buf: &mut Vec<Value>,
    scratch: &mut GenScratch,
    out: &mut Vec<u8>,
    phases: &WorkerPhases,
) -> PackageTimings {
    debug_assert!(ROW_SAMPLE_EVERY.is_power_of_two());
    let started = now_ns();
    let mut t = PackageTimings::default();
    for (i, row) in pkg.pkg.rows.clone().enumerate() {
        if (i as u64) & (ROW_SAMPLE_EVERY - 1) == 0 {
            let g0 = now_ns();
            rt.row_into_with_scratch(pkg.pkg.table, pkg.pkg.update, row, row_buf, scratch);
            let g1 = now_ns();
            formatter.row(out, meta, row_buf);
            let f1 = now_ns();
            phases.generate.record(g1.saturating_sub(g0));
            phases.format.record(f1.saturating_sub(g1));
            t.generate_ns += g1.saturating_sub(g0);
            t.format_ns += f1.saturating_sub(g1);
            t.sampled_rows += 1;
        } else {
            rt.row_into_with_scratch(pkg.pkg.table, pkg.pkg.update, row, row_buf, scratch);
            formatter.row(out, meta, row_buf);
        }
    }
    t.total_ns = now_ns().saturating_sub(started);
    phases.add_busy_ns(t.total_ns);
    t
}

/// Inline execution on the calling thread: packages run in global queue
/// order, which is already per-job row order.
fn run_inline(
    rt: &SchemaRuntime,
    ctx: &RunCtx<'_>,
    packages: &[ProjectPackage],
    sinks: &mut [&mut dyn Sink],
    outputs: &mut [JobOutput],
) -> io::Result<()> {
    let mut state = WorkerState::default();
    let mut out = Vec::new();
    let phases: Option<Arc<WorkerPhases>> = ctx.scope.map(|s| s.slot(0));
    let total = packages.len() as u64;
    // Seed the watchdog's pending gauge up front: an inline run that
    // wedges inside its first package is outstanding work, not idle.
    if let Some(scope) = ctx.scope {
        scope.set_queue_depth(total);
    }
    for (done, p) in packages.iter().enumerate() {
        out.clear();
        let idx = p.job as usize;
        let want = package_capacity_hint(ctx.row_bounds[idx], p.pkg.len());
        if out.capacity() < want {
            out.reserve(want);
        }
        let timings = execute_package(rt, ctx, p, &mut state, &mut out, phases.as_ref());
        write_package(
            ctx,
            p.pkg.seq,
            p.pkg.len(),
            &out,
            timings,
            idx,
            sinks,
            outputs,
        )?;
        if let Some(scope) = ctx.scope {
            scope.set_queue_depth(total - (done as u64 + 1));
        }
    }
    Ok(())
}

/// Pooled execution: one scope of workers drains the global package
/// queue; the output stage on the calling thread reorders per job.
fn run_pool(
    rt: &SchemaRuntime,
    ctx: &RunCtx<'_>,
    packages: &[ProjectPackage],
    sinks: &mut [&mut dyn Sink],
    outputs: &mut [JobOutput],
    cfg: &RunConfig,
) -> io::Result<()> {
    let n_packages = packages.len() as u64;
    let tickets = TicketCounter::new(n_packages);
    // Bounded channel: workers stall rather than buffering the whole
    // project when a sink is slow.
    let channel_depth = cfg.workers * 4;
    let (tx, rx) = channel::<(u32, u64, u64, Vec<u8>, PackageTimings)>(channel_depth);
    // Written buffers return here and workers take them back out; sized
    // past the channel depth so even a full pipeline keeps recycling.
    let pool = BufferPool::new(channel_depth + cfg.workers + 1);
    if let Some(scope) = ctx.scope {
        scope.set_queue_depth(n_packages);
    }

    let mut result: io::Result<()> = Ok(());
    let mut written_packages = 0u64;
    std::thread::scope(|thread_scope| {
        for worker in 0..cfg.workers {
            let tx = tx.clone();
            let tickets = &tickets;
            let pool = &pool;
            let phases: Option<Arc<WorkerPhases>> = ctx.scope.map(|s| s.slot(worker));
            thread_scope.spawn(move || {
                let mut state = WorkerState::default();
                while let Some(idx) = tickets.claim() {
                    let p = &packages[idx as usize];
                    let mut out = pool.take_with_capacity(package_capacity_hint(
                        ctx.row_bounds[p.job as usize],
                        p.pkg.len(),
                    ));
                    let timings =
                        execute_package(rt, ctx, p, &mut state, &mut out, phases.as_ref());
                    if tx
                        .send((p.job, p.pkg.seq, p.pkg.len(), out, timings))
                        .is_err()
                    {
                        // Output stage failed and hung up; stop quietly,
                        // the error is reported from the output side.
                        return;
                    }
                }
            });
        }
        drop(tx);

        // Output stage on the calling thread: route each package to its
        // job's reorder buffer and sink, recycle written buffers.
        for (job, seq, rows, buf, timings) in rx {
            let idx = job as usize;
            let mut ready = outputs[idx].reorder.push(seq, (seq, rows, buf, timings));
            while let Some((ready_seq, ready_rows, ready_buf, ready_timings)) = ready {
                if let Err(e) = write_package(
                    ctx,
                    ready_seq,
                    ready_rows,
                    &ready_buf,
                    ready_timings,
                    idx,
                    sinks,
                    outputs,
                ) {
                    result = Err(e);
                    return; // drops `rx`; workers see the hangup and stop
                }
                pool.put(ready_buf);
                written_packages += 1;
                if let Some(scope) = ctx.scope {
                    scope.set_queue_depth(n_packages - written_packages);
                }
                ready = outputs[idx].reorder.pop_ready();
            }
        }
        // Every sender completed, so a shortfall here means packages were
        // dropped between the workers and the sink — corrupt output, not
        // a debug-only concern.
        if written_packages != n_packages {
            let parked: usize = outputs.iter().map(|o| o.reorder.pending()).sum();
            result = Err(io::Error::other(format!(
                "output stage lost packages: wrote {written_packages} of \
                 {n_packages} ({parked} parked out of order)"
            )));
        }
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgf_gen::MapResolver;
    use pdgf_output::{CsvFormatter, JsonFormatter, MemorySink, SqlFormatter, XmlFormatter};
    use pdgf_schema::{Expr, Field, GeneratorSpec, Schema, SqlType, Table};

    use crate::monitor::Monitor;

    fn runtime(rows: u64) -> SchemaRuntime {
        let schema = Schema::new("sched", 11).table(
            Table::new("t", &format!("{rows}"))
                .field(
                    Field::new("id", SqlType::BigInt, GeneratorSpec::Id { permute: false })
                        .primary(),
                )
                .field(Field::new(
                    "v",
                    SqlType::Integer,
                    GeneratorSpec::Long {
                        min: Expr::parse("0").unwrap(),
                        max: Expr::parse("999999").unwrap(),
                    },
                )),
        );
        SchemaRuntime::build(&schema, &MapResolver::new()).unwrap()
    }

    /// Runtime with several tables of mixed sizes for project runs.
    fn multi_runtime(sizes: &[u64]) -> SchemaRuntime {
        let mut schema = Schema::new("multi", 23);
        for (i, rows) in sizes.iter().enumerate() {
            schema = schema.table(
                Table::new(&format!("t{i}"), &format!("{rows}"))
                    .field(
                        Field::new("id", SqlType::BigInt, GeneratorSpec::Id { permute: false })
                            .primary(),
                    )
                    .field(Field::new(
                        "v",
                        SqlType::Integer,
                        GeneratorSpec::Long {
                            min: Expr::parse("0").unwrap(),
                            max: Expr::parse("999999").unwrap(),
                        },
                    )),
            );
        }
        SchemaRuntime::build(&schema, &MapResolver::new()).unwrap()
    }

    fn run_fmt(
        rt: &SchemaRuntime,
        formatter: &dyn Formatter,
        workers: usize,
        package_rows: u64,
    ) -> String {
        let mut sink = MemorySink::new();
        let cfg = RunConfig::new().workers(workers).package_rows(package_rows);
        let stats = generate_table_range(
            rt,
            0,
            0,
            0..rt.tables()[0].size,
            formatter,
            &mut sink,
            &cfg,
            None,
        )
        .unwrap();
        assert_eq!(stats.rows, rt.tables()[0].size);
        assert_eq!(stats.bytes, sink.bytes_written());
        sink.as_str().to_string()
    }

    fn run(rt: &SchemaRuntime, workers: usize, package_rows: u64) -> String {
        run_fmt(rt, &CsvFormatter::new(), workers, package_rows)
    }

    #[test]
    fn config_builder_defaults_and_setters() {
        let d = RunConfig::default();
        assert_eq!(d.worker_threads(), available_workers());
        assert_eq!(d.rows_per_package(), 10_000);
        assert!(d.columnar_enabled(), "columnar path is the default");
        let cfg = RunConfig::new().workers(0).package_rows(1).columnar(false);
        assert_eq!(cfg.worker_threads(), 0, "0 workers = inline is legal");
        assert_eq!(cfg.rows_per_package(), 1);
        assert!(!cfg.columnar_enabled());
    }

    #[test]
    #[should_panic(expected = "package_rows must be at least 1")]
    fn config_builder_rejects_zero_package_rows() {
        let _ = RunConfig::new().package_rows(0);
    }

    #[test]
    fn inline_output_has_one_line_per_row() {
        let rt = runtime(100);
        let out = run(&rt, 0, 10);
        assert_eq!(out.lines().count(), 100);
        assert!(out.starts_with("1,"));
    }

    #[test]
    fn parallel_output_is_byte_identical_to_inline() {
        let rt = runtime(5_000);
        let reference = run(&rt, 0, 128);
        for workers in [1, 2, 4, 8] {
            for pkg in [7, 100, 1024, 100_000] {
                assert_eq!(
                    run(&rt, workers, pkg),
                    reference,
                    "workers={workers} pkg={pkg}"
                );
            }
        }
    }

    #[test]
    fn every_format_is_byte_identical_across_parallelism() {
        let rt = runtime(2_000);
        let formatters: [&dyn Formatter; 4] = [
            &CsvFormatter::new(),
            &JsonFormatter,
            &XmlFormatter,
            &SqlFormatter::new(),
        ];
        for formatter in formatters {
            let reference = run_fmt(&rt, formatter, 0, 128);
            for workers in [1, 2, 4] {
                for pkg in [7, 256, 100_000] {
                    assert_eq!(
                        run_fmt(&rt, formatter, workers, pkg),
                        reference,
                        "format={} workers={workers} pkg={pkg}",
                        formatter.name()
                    );
                }
            }
        }
    }

    /// The columnar path (default) and the row path (`columnar(false)`)
    /// produce the same bytes for every format, worker count, and package
    /// size — including ragged tails.
    #[test]
    fn columnar_path_matches_row_path_bytes() {
        let rt = runtime(1_500);
        let formatters: [&dyn Formatter; 4] = [
            &CsvFormatter::new(),
            &JsonFormatter,
            &XmlFormatter,
            &SqlFormatter::new(),
        ];
        for formatter in formatters {
            for workers in [0usize, 2] {
                for pkg in [7u64, 256, 100_000] {
                    let run_with = |columnar: bool| {
                        let mut sink = MemorySink::new();
                        let cfg = RunConfig::new()
                            .workers(workers)
                            .package_rows(pkg)
                            .columnar(columnar);
                        generate_table_range(
                            &rt,
                            0,
                            0,
                            0..rt.tables()[0].size,
                            formatter,
                            &mut sink,
                            &cfg,
                            None,
                        )
                        .unwrap();
                        sink.as_str().to_string()
                    };
                    assert_eq!(
                        run_with(true),
                        run_with(false),
                        "format={} workers={workers} pkg={pkg}",
                        formatter.name()
                    );
                }
            }
        }
    }

    /// The heart of the project pool: every table's stream is byte-
    /// identical to its own sequential run, for every worker count, even
    /// though the pool interleaves tables.
    #[test]
    fn project_run_streams_match_sequential_per_table_runs() {
        let rt = multi_runtime(&[1, 700, 0, 2_500, 35, 1_200]);
        let formatters: [&dyn Formatter; 2] = [&CsvFormatter::new().with_header(), &XmlFormatter];
        for formatter in formatters {
            let reference: Vec<String> = (0..rt.tables().len())
                .map(|t| {
                    let mut sink = MemorySink::new();
                    generate_table_range(
                        &rt,
                        t as u32,
                        0,
                        0..rt.tables()[t].size,
                        formatter,
                        &mut sink,
                        &RunConfig::new().workers(0).package_rows(64),
                        None,
                    )
                    .unwrap();
                    sink.as_str().to_string()
                })
                .collect();
            for workers in [0usize, 1, 2, 4, 8] {
                let jobs: Vec<TableJob> = rt
                    .tables()
                    .iter()
                    .enumerate()
                    .map(|(t, table)| TableJob::full_table(t as u32, table.size))
                    .collect();
                let mut sinks: Vec<MemorySink> =
                    (0..jobs.len()).map(|_| MemorySink::new()).collect();
                {
                    let mut refs: Vec<&mut dyn Sink> =
                        sinks.iter_mut().map(|s| s as &mut dyn Sink).collect();
                    let stats = run_project(
                        &rt,
                        &jobs,
                        formatter,
                        &mut refs,
                        &RunConfig::new().workers(workers).package_rows(77),
                        None,
                    )
                    .unwrap();
                    for (t, s) in stats.iter().enumerate() {
                        assert_eq!(s.rows, rt.tables()[t].size, "table {t} rows");
                    }
                }
                for (t, sink) in sinks.iter().enumerate() {
                    assert_eq!(
                        sink.as_str(),
                        reference[t],
                        "format={} workers={workers} table={t}",
                        formatter.name()
                    );
                }
            }
        }
    }

    #[test]
    fn sub_ranges_generate_the_matching_slice() {
        let rt = runtime(1000);
        let all = run(&rt, 0, 100);
        let mut sink = MemorySink::new();
        let stats = generate_table_range(
            &rt,
            0,
            0,
            200..300,
            &CsvFormatter::new(),
            &mut sink,
            &RunConfig::new().workers(2).package_rows(17),
            None,
        )
        .unwrap();
        assert_eq!(stats.rows, 100, "rows reflect the requested sub-range");
        let slice: Vec<&str> = all.lines().skip(200).take(100).collect();
        let got: Vec<&str> = sink.as_str().lines().collect();
        assert_eq!(got, slice);
    }

    /// Sharded framing: only the shard containing row 0 emits `begin`,
    /// only the shard reaching the last row emits `end`, so concatenated
    /// shards equal the whole-table bytes for framed formats.
    #[test]
    fn shards_concatenate_to_whole_table_bytes_for_framed_formats() {
        let rt = runtime(100);
        let formatters: [&dyn Formatter; 3] = [
            &CsvFormatter::new().with_header(),
            &XmlFormatter,
            &SqlFormatter::new(),
        ];
        for formatter in formatters {
            let whole = run_fmt(&rt, formatter, 2, 13);
            let mut concat = String::new();
            for shard in [0..40u64, 40..70, 70..100] {
                let mut sink = MemorySink::new();
                generate_table_range(
                    &rt,
                    0,
                    0,
                    shard,
                    formatter,
                    &mut sink,
                    &RunConfig::new().workers(2).package_rows(13),
                    None,
                )
                .unwrap();
                concat.push_str(sink.as_str());
            }
            assert_eq!(concat, whole, "format={}", formatter.name());
        }
    }

    #[test]
    fn monitor_sees_all_rows_and_bytes() {
        let rt = runtime(1000);
        let monitor = Monitor::new();
        let mut sink = MemorySink::new();
        generate_table_range(
            &rt,
            0,
            0,
            0..1000,
            &CsvFormatter::new(),
            &mut sink,
            &RunConfig::new().workers(3).package_rows(64),
            Some(&monitor),
        )
        .unwrap();
        let snap = monitor.snapshot();
        assert_eq!(snap.rows, 1000);
        assert_eq!(snap.bytes, sink.bytes_written());
        assert!(snap.packages >= 1000 / 64);
        // Per-table counters agree with the aggregate for a one-table run.
        let t = monitor.table_snapshot("t").expect("table t recorded");
        assert_eq!(t.rows, 1000);
        assert_eq!(t.bytes, snap.bytes);
    }

    #[test]
    fn monitor_tracks_headers_and_tables_separately() {
        let rt = multi_runtime(&[100, 300]);
        let monitor = Monitor::new();
        let jobs = [TableJob::full_table(0, 100), TableJob::full_table(1, 300)];
        let mut s0 = MemorySink::new();
        let mut s1 = MemorySink::new();
        {
            let mut refs: Vec<&mut dyn Sink> = vec![&mut s0, &mut s1];
            run_project(
                &rt,
                &jobs,
                &CsvFormatter::new().with_header(),
                &mut refs,
                &RunConfig::new().workers(2).package_rows(32),
                Some(&monitor),
            )
            .unwrap();
        }
        let t0 = monitor.table_snapshot("t0").expect("t0 recorded");
        let t1 = monitor.table_snapshot("t1").expect("t1 recorded");
        assert_eq!(t0.rows, 100);
        assert_eq!(t1.rows, 300);
        assert_eq!(t0.bytes, s0.bytes_written(), "header bytes included");
        assert_eq!(t1.bytes, s1.bytes_written());
        let snap = monitor.snapshot();
        assert_eq!(snap.rows, 400);
        assert_eq!(snap.bytes, s0.bytes_written() + s1.bytes_written());
    }

    #[test]
    fn empty_table_produces_no_rows() {
        let rt = runtime(0);
        assert_eq!(run(&rt, 2, 10), "");
    }

    #[test]
    fn empty_table_still_owns_its_framing() {
        let rt = runtime(0);
        // A header-CSV empty table is a header and nothing else; an XML
        // empty table is an open+close pair.
        let header = run_fmt(&rt, &CsvFormatter::new().with_header(), 2, 10);
        assert_eq!(header, "id,v\n");
        let xml = run_fmt(&rt, &XmlFormatter, 2, 10);
        assert!(xml.starts_with("<t>"), "{xml}");
        assert!(xml.trim_end().ends_with("</t>"), "{xml}");
    }

    #[test]
    fn header_formatter_emits_begin_once() {
        let rt = runtime(10);
        let mut sink = MemorySink::new();
        generate_table_range(
            &rt,
            0,
            0,
            0..10,
            &CsvFormatter::new().with_header(),
            &mut sink,
            &RunConfig::new().workers(2).package_rows(3),
            None,
        )
        .unwrap();
        let out = sink.as_str();
        assert!(out.starts_with("id,v\n"));
        assert_eq!(out.matches("id,v").count(), 1);
    }

    /// `TableRunStats::bytes` reports this run's delta, not the sink's
    /// cumulative counter, so reusing one sink across table runs (single-
    /// file multi-table output) does not over-count.
    #[test]
    fn stats_bytes_are_per_run_deltas_on_a_shared_sink() {
        let rt = multi_runtime(&[200, 500]);
        let mut sink = MemorySink::new();
        let cfg = RunConfig::new().workers(2).package_rows(64);
        let first = generate_table_range(
            &rt,
            0,
            0,
            0..200,
            &CsvFormatter::new(),
            &mut sink,
            &cfg,
            None,
        )
        .unwrap();
        let after_first = sink.bytes_written();
        assert_eq!(first.bytes, after_first);
        let second = generate_table_range(
            &rt,
            1,
            0,
            0..500,
            &CsvFormatter::new(),
            &mut sink,
            &cfg,
            None,
        )
        .unwrap();
        assert_eq!(
            second.bytes,
            sink.bytes_written() - after_first,
            "second run must report its own bytes, not the sink total"
        );
        assert!(second.bytes > 0);
    }

    struct FailingSink {
        wrote: u64,
        budget: u64,
    }

    impl Sink for FailingSink {
        fn write_chunk(&mut self, bytes: &[u8]) -> io::Result<()> {
            if self.wrote + bytes.len() as u64 > self.budget {
                return Err(io::Error::other("disk full"));
            }
            self.wrote += bytes.len() as u64;
            Ok(())
        }
        fn finish(&mut self) -> io::Result<u64> {
            Ok(self.wrote)
        }
        fn bytes_written(&self) -> u64 {
            self.wrote
        }
    }

    #[test]
    fn failing_sink_surfaces_the_error() {
        let rt = runtime(10_000);
        let mut sink = FailingSink {
            wrote: 0,
            budget: 4_096,
        };
        let err = generate_table_range(
            &rt,
            0,
            0,
            0..10_000,
            &CsvFormatter::new(),
            &mut sink,
            &RunConfig::new().workers(2).package_rows(100),
            None,
        )
        .unwrap_err();
        assert_eq!(err.to_string(), "disk full");
    }

    /// A sink error on table k must stop the whole pool without
    /// deadlocking workers that are already generating table k+1: the
    /// channel hang-up reaches every worker regardless of which job its
    /// current package belongs to.
    #[test]
    fn failing_sink_on_one_table_does_not_deadlock_the_project_pool() {
        let rt = multi_runtime(&[20_000, 20_000, 20_000]);
        let jobs: Vec<TableJob> = rt
            .tables()
            .iter()
            .enumerate()
            .map(|(t, table)| TableJob::full_table(t as u32, table.size))
            .collect();
        let mut ok0 = MemorySink::new();
        let mut bad = FailingSink {
            wrote: 0,
            budget: 2_048,
        };
        let mut ok2 = MemorySink::new();
        let mut refs: Vec<&mut dyn Sink> = vec![&mut ok0, &mut bad, &mut ok2];
        let err = run_project(
            &rt,
            &jobs,
            &CsvFormatter::new(),
            &mut refs,
            &RunConfig::new().workers(4).package_rows(100),
            None,
        )
        .unwrap_err();
        assert_eq!(err.to_string(), "disk full");
    }
}
