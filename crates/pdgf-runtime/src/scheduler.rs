//! The single-node scheduler: a worker pool generating work packages with
//! sorted, single-stream output.
//!
//! The pipeline is the paper's data flow: scheduler → workers (seed +
//! generate + format) → output system (reorder + sink). Workers claim
//! packages from a shared counter (packages are uniform, so a ticket
//! counter beats work stealing), format rows into recycled byte buffers,
//! and hand completed buffers to the output stage through a bounded
//! channel for backpressure. A reorder buffer releases buffers in package
//! order, so the sink receives bytes identical to a sequential run, and
//! written buffers return to a [`BufferPool`] shared with the workers —
//! after warm-up the steady state allocates nothing per package.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crossbeam::channel;
use pdgf_gen::{GenScratch, SchemaRuntime};
use pdgf_output::{BufferPool, Formatter, ReorderBuffer, Sink, TableMeta};
use pdgf_schema::Value;

use crate::monitor::Monitor;
use crate::package::packages_for;

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Worker threads. `0` runs inline on the calling thread (no thread
    /// or channel overhead — the configuration for latency microbenches).
    pub workers: usize,
    /// Rows per work package.
    pub package_rows: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            workers: available_workers(),
            package_rows: 10_000,
        }
    }
}

/// Default worker count: one per available core.
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Result of generating one table (or table shard).
#[derive(Debug, Clone)]
pub struct TableRunStats {
    /// Rows actually written to the sink (counted from the packages the
    /// output stage wrote, not assumed from the requested range).
    pub rows: u64,
    /// Bytes written to the sink.
    pub bytes: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
}

impl TableRunStats {
    /// Megabytes per second.
    pub fn throughput_mb_s(&self) -> f64 {
        if self.seconds > 0.0 {
            self.bytes as f64 / 1e6 / self.seconds
        } else {
            0.0
        }
    }
}

/// Metadata for a runtime table.
pub fn table_meta(rt: &SchemaRuntime, table: u32) -> TableMeta {
    let t = &rt.tables()[table as usize];
    TableMeta {
        name: t.name.clone(),
        columns: t.columns.iter().map(|c| c.name.clone()).collect(),
    }
}

/// Generate rows `rows` of `table` (update epoch `update`), formatted by
/// `formatter`, into `sink`. Output bytes are identical for any worker
/// count — the determinism contract the test suite checks.
#[allow(clippy::too_many_arguments)] // the full coordinate set is the API
pub fn generate_table_range(
    rt: &SchemaRuntime,
    table: u32,
    update: u32,
    rows: std::ops::Range<u64>,
    formatter: &dyn Formatter,
    sink: &mut dyn Sink,
    cfg: &RunConfig,
    monitor: Option<&Monitor>,
) -> io::Result<TableRunStats> {
    let started = Instant::now();
    let meta = table_meta(rt, table);

    let mut head = Vec::new();
    formatter.begin(&mut head, &meta);
    if !head.is_empty() {
        sink.write_chunk(&head)?;
    }

    let rows_written = if cfg.workers == 0 {
        generate_inline(rt, table, update, rows, formatter, &meta, sink, monitor)?
    } else {
        generate_parallel(
            rt, table, update, rows, formatter, &meta, sink, cfg, monitor,
        )?
    };

    let mut tail = Vec::new();
    formatter.end(&mut tail, &meta);
    if !tail.is_empty() {
        sink.write_chunk(&tail)?;
    }

    Ok(TableRunStats {
        rows: rows_written,
        bytes: sink.bytes_written(),
        seconds: started.elapsed().as_secs_f64(),
    })
}

#[allow(clippy::too_many_arguments)]
fn format_package(
    rt: &SchemaRuntime,
    table: u32,
    update: u32,
    rows: std::ops::Range<u64>,
    formatter: &dyn Formatter,
    meta: &TableMeta,
    row_buf: &mut Vec<Value>,
    scratch: &mut GenScratch,
    out: &mut Vec<u8>,
) {
    for row in rows {
        rt.row_into_with_scratch(table, update, row, row_buf, scratch);
        formatter.row(out, meta, row_buf);
    }
}

#[allow(clippy::too_many_arguments)]
fn generate_inline(
    rt: &SchemaRuntime,
    table: u32,
    update: u32,
    rows: std::ops::Range<u64>,
    formatter: &dyn Formatter,
    meta: &TableMeta,
    sink: &mut dyn Sink,
    monitor: Option<&Monitor>,
) -> io::Result<u64> {
    let mut row_buf = Vec::new();
    let mut scratch = GenScratch::default();
    let mut out = Vec::new();
    let mut written_rows = 0u64;
    // Inline mode still chunks so the buffer does not grow unbounded.
    for pkg in packages_for(table, update, rows, 10_000) {
        out.clear();
        let n = pkg.len();
        format_package(
            rt,
            table,
            update,
            pkg.rows,
            formatter,
            meta,
            &mut row_buf,
            &mut scratch,
            &mut out,
        );
        sink.write_chunk(&out)?;
        written_rows += n;
        if let Some(m) = monitor {
            m.record_package(n, out.len() as u64);
        }
    }
    Ok(written_rows)
}

#[allow(clippy::too_many_arguments)]
fn generate_parallel(
    rt: &SchemaRuntime,
    table: u32,
    update: u32,
    rows: std::ops::Range<u64>,
    formatter: &dyn Formatter,
    meta: &TableMeta,
    sink: &mut dyn Sink,
    cfg: &RunConfig,
    monitor: Option<&Monitor>,
) -> io::Result<u64> {
    let packages = packages_for(table, update, rows, cfg.package_rows);
    if packages.is_empty() {
        return Ok(0);
    }
    let next_package = AtomicU64::new(0);
    let n_packages = packages.len() as u64;
    // Bounded channel: workers stall rather than buffering the whole
    // table when the sink is slow.
    let channel_depth = cfg.workers * 4;
    let (tx, rx) = channel::bounded::<(u64, u64, Vec<u8>)>(channel_depth);
    // Written buffers return here and workers take them back out; sized
    // past the channel depth so even a full pipeline keeps recycling.
    let pool = BufferPool::new(channel_depth + cfg.workers + 1);

    let mut result: io::Result<()> = Ok(());
    let mut written_rows = 0u64;
    let mut written_packages = 0u64;
    std::thread::scope(|scope| {
        for _ in 0..cfg.workers {
            let tx = tx.clone();
            let packages = &packages;
            let next_package = &next_package;
            let pool = &pool;
            scope.spawn(move || {
                let mut row_buf = Vec::new();
                let mut scratch = GenScratch::default();
                loop {
                    let idx = next_package.fetch_add(1, Ordering::Relaxed);
                    if idx >= n_packages {
                        return;
                    }
                    let pkg = &packages[idx as usize];
                    let mut out = pool.take();
                    format_package(
                        rt,
                        table,
                        update,
                        pkg.rows.clone(),
                        formatter,
                        meta,
                        &mut row_buf,
                        &mut scratch,
                        &mut out,
                    );
                    if tx.send((pkg.seq, pkg.len(), out)).is_err() {
                        // Output stage failed and hung up; stop quietly,
                        // the error is reported from the output side.
                        return;
                    }
                }
            });
        }
        drop(tx);

        // Output stage on the calling thread: reorder, write, recycle.
        let mut reorder = ReorderBuffer::new();
        for (seq, rows, buf) in rx {
            let mut ready = reorder.push(seq, (rows, buf));
            while let Some((ready_rows, ready_buf)) = ready {
                if let Err(e) = sink.write_chunk(&ready_buf) {
                    result = Err(e);
                    return; // drops `rx`; workers see the hangup and stop
                }
                if let Some(m) = monitor {
                    m.record_package(ready_rows, ready_buf.len() as u64);
                }
                pool.put(ready_buf);
                written_rows += ready_rows;
                written_packages += 1;
                ready = reorder.pop_ready();
            }
        }
        // Every sender completed, so a shortfall here means packages were
        // dropped between the workers and the sink — corrupt output, not
        // a debug-only concern.
        if written_packages != n_packages {
            result = Err(io::Error::other(format!(
                "output stage lost packages: wrote {written_packages} of \
                 {n_packages} ({} parked out of order)",
                reorder.pending()
            )));
        }
    });
    result.map(|()| written_rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgf_gen::MapResolver;
    use pdgf_output::{CsvFormatter, JsonFormatter, MemorySink, SqlFormatter, XmlFormatter};
    use pdgf_schema::{Expr, Field, GeneratorSpec, Schema, SqlType, Table};

    fn runtime(rows: u64) -> SchemaRuntime {
        let schema = Schema::new("sched", 11).table(
            Table::new("t", &format!("{rows}"))
                .field(
                    Field::new("id", SqlType::BigInt, GeneratorSpec::Id { permute: false })
                        .primary(),
                )
                .field(Field::new(
                    "v",
                    SqlType::Integer,
                    GeneratorSpec::Long {
                        min: Expr::parse("0").unwrap(),
                        max: Expr::parse("999999").unwrap(),
                    },
                )),
        );
        SchemaRuntime::build(&schema, &MapResolver::new()).unwrap()
    }

    fn run_fmt(
        rt: &SchemaRuntime,
        formatter: &dyn Formatter,
        workers: usize,
        package_rows: u64,
    ) -> String {
        let mut sink = MemorySink::new();
        let cfg = RunConfig {
            workers,
            package_rows,
        };
        let stats = generate_table_range(
            rt,
            0,
            0,
            0..rt.tables()[0].size,
            formatter,
            &mut sink,
            &cfg,
            None,
        )
        .unwrap();
        assert_eq!(stats.rows, rt.tables()[0].size);
        assert_eq!(stats.bytes, sink.bytes_written());
        sink.as_str().to_string()
    }

    fn run(rt: &SchemaRuntime, workers: usize, package_rows: u64) -> String {
        run_fmt(rt, &CsvFormatter::new(), workers, package_rows)
    }

    #[test]
    fn inline_output_has_one_line_per_row() {
        let rt = runtime(100);
        let out = run(&rt, 0, 10);
        assert_eq!(out.lines().count(), 100);
        assert!(out.starts_with("1,"));
    }

    #[test]
    fn parallel_output_is_byte_identical_to_inline() {
        let rt = runtime(5_000);
        let reference = run(&rt, 0, 128);
        for workers in [1, 2, 4, 8] {
            for pkg in [7, 100, 1024, 100_000] {
                assert_eq!(
                    run(&rt, workers, pkg),
                    reference,
                    "workers={workers} pkg={pkg}"
                );
            }
        }
    }

    #[test]
    fn every_format_is_byte_identical_across_parallelism() {
        let rt = runtime(2_000);
        let formatters: [&dyn Formatter; 4] = [
            &CsvFormatter::new(),
            &JsonFormatter,
            &XmlFormatter,
            &SqlFormatter::new(),
        ];
        for formatter in formatters {
            let reference = run_fmt(&rt, formatter, 0, 128);
            for workers in [1, 2, 4] {
                for pkg in [7, 256, 100_000] {
                    assert_eq!(
                        run_fmt(&rt, formatter, workers, pkg),
                        reference,
                        "format={} workers={workers} pkg={pkg}",
                        formatter.name()
                    );
                }
            }
        }
    }

    #[test]
    fn sub_ranges_generate_the_matching_slice() {
        let rt = runtime(1000);
        let all = run(&rt, 0, 100);
        let mut sink = MemorySink::new();
        let stats = generate_table_range(
            &rt,
            0,
            0,
            200..300,
            &CsvFormatter::new(),
            &mut sink,
            &RunConfig {
                workers: 2,
                package_rows: 17,
            },
            None,
        )
        .unwrap();
        assert_eq!(stats.rows, 100, "rows reflect the requested sub-range");
        let slice: Vec<&str> = all.lines().skip(200).take(100).collect();
        let got: Vec<&str> = sink.as_str().lines().collect();
        assert_eq!(got, slice);
    }

    #[test]
    fn monitor_sees_all_rows_and_bytes() {
        let rt = runtime(1000);
        let monitor = Monitor::new();
        let mut sink = MemorySink::new();
        generate_table_range(
            &rt,
            0,
            0,
            0..1000,
            &CsvFormatter::new(),
            &mut sink,
            &RunConfig {
                workers: 3,
                package_rows: 64,
            },
            Some(&monitor),
        )
        .unwrap();
        let snap = monitor.snapshot();
        assert_eq!(snap.rows, 1000);
        assert_eq!(snap.bytes, sink.bytes_written());
        assert!(snap.packages >= 1000 / 64);
    }

    #[test]
    fn empty_table_produces_no_rows() {
        let rt = runtime(0);
        assert_eq!(run(&rt, 2, 10), "");
    }

    #[test]
    fn header_formatter_emits_begin_once() {
        let rt = runtime(10);
        let mut sink = MemorySink::new();
        generate_table_range(
            &rt,
            0,
            0,
            0..10,
            &CsvFormatter::new().with_header(),
            &mut sink,
            &RunConfig {
                workers: 2,
                package_rows: 3,
            },
            None,
        )
        .unwrap();
        let out = sink.as_str();
        assert!(out.starts_with("id,v\n"));
        assert_eq!(out.matches("id,v").count(), 1);
    }

    #[test]
    fn failing_sink_surfaces_the_error() {
        struct FailingSink {
            wrote: u64,
            budget: u64,
        }
        impl Sink for FailingSink {
            fn write_chunk(&mut self, bytes: &[u8]) -> io::Result<()> {
                if self.wrote + bytes.len() as u64 > self.budget {
                    return Err(io::Error::other("disk full"));
                }
                self.wrote += bytes.len() as u64;
                Ok(())
            }
            fn finish(&mut self) -> io::Result<u64> {
                Ok(self.wrote)
            }
            fn bytes_written(&self) -> u64 {
                self.wrote
            }
        }
        let rt = runtime(10_000);
        let mut sink = FailingSink {
            wrote: 0,
            budget: 4_096,
        };
        let err = generate_table_range(
            &rt,
            0,
            0,
            0..10_000,
            &CsvFormatter::new(),
            &mut sink,
            &RunConfig {
                workers: 2,
                package_rows: 100,
            },
            None,
        )
        .unwrap_err();
        assert_eq!(err.to_string(), "disk full");
    }
}
