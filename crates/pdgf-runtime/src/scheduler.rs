//! The single-node scheduler: a worker pool generating work packages with
//! sorted, single-stream output.
//!
//! The pipeline is the paper's data flow: scheduler → workers (seed +
//! generate + format) → output system (reorder + sink). Workers claim
//! packages from a shared counter (packages are uniform, so a ticket
//! counter beats work stealing), format rows into private buffers, and
//! hand completed buffers to the output stage through a bounded channel
//! for backpressure. A reorder buffer releases buffers in package order,
//! so the sink receives bytes identical to a sequential run.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crossbeam::channel;
use pdgf_gen::SchemaRuntime;
use pdgf_output::{Formatter, ReorderBuffer, Sink, TableMeta};
use pdgf_schema::Value;

use crate::monitor::Monitor;
use crate::package::packages_for;

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Worker threads. `0` runs inline on the calling thread (no thread
    /// or channel overhead — the configuration for latency microbenches).
    pub workers: usize,
    /// Rows per work package.
    pub package_rows: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self { workers: available_workers(), package_rows: 10_000 }
    }
}

/// Default worker count: one per available core.
pub fn available_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

/// Result of generating one table (or table shard).
#[derive(Debug, Clone)]
pub struct TableRunStats {
    /// Rows generated.
    pub rows: u64,
    /// Bytes written to the sink.
    pub bytes: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
}

impl TableRunStats {
    /// Megabytes per second.
    pub fn throughput_mb_s(&self) -> f64 {
        if self.seconds > 0.0 {
            self.bytes as f64 / 1e6 / self.seconds
        } else {
            0.0
        }
    }
}

/// Metadata for a runtime table.
pub fn table_meta(rt: &SchemaRuntime, table: u32) -> TableMeta {
    let t = &rt.tables()[table as usize];
    TableMeta {
        name: t.name.clone(),
        columns: t.columns.iter().map(|c| c.name.clone()).collect(),
    }
}

/// Generate rows `rows` of `table` (update epoch `update`), formatted by
/// `formatter`, into `sink`. Output bytes are identical for any worker
/// count — the determinism contract the test suite checks.
#[allow(clippy::too_many_arguments)] // the full coordinate set is the API
pub fn generate_table_range(
    rt: &SchemaRuntime,
    table: u32,
    update: u32,
    rows: std::ops::Range<u64>,
    formatter: &dyn Formatter,
    sink: &mut dyn Sink,
    cfg: &RunConfig,
    monitor: Option<&Monitor>,
) -> io::Result<TableRunStats> {
    let started = Instant::now();
    let meta = table_meta(rt, table);
    let total_rows = rows.end.saturating_sub(rows.start);

    let mut head = String::new();
    formatter.begin(&mut head, &meta);
    if !head.is_empty() {
        sink.write_chunk(head.as_bytes())?;
    }

    if cfg.workers == 0 {
        generate_inline(rt, table, update, rows, formatter, &meta, sink, monitor)?;
    } else {
        generate_parallel(rt, table, update, rows, formatter, &meta, sink, cfg, monitor)?;
    }

    let mut tail = String::new();
    formatter.end(&mut tail, &meta);
    if !tail.is_empty() {
        sink.write_chunk(tail.as_bytes())?;
    }

    Ok(TableRunStats {
        rows: total_rows,
        bytes: sink.bytes_written(),
        seconds: started.elapsed().as_secs_f64(),
    })
}

#[allow(clippy::too_many_arguments)]
fn format_package(
    rt: &SchemaRuntime,
    table: u32,
    update: u32,
    rows: std::ops::Range<u64>,
    formatter: &dyn Formatter,
    meta: &TableMeta,
    row_buf: &mut Vec<Value>,
    out: &mut String,
) {
    for row in rows {
        rt.row_into(table, update, row, row_buf);
        formatter.row(out, meta, row_buf);
    }
}

#[allow(clippy::too_many_arguments)]
fn generate_inline(
    rt: &SchemaRuntime,
    table: u32,
    update: u32,
    rows: std::ops::Range<u64>,
    formatter: &dyn Formatter,
    meta: &TableMeta,
    sink: &mut dyn Sink,
    monitor: Option<&Monitor>,
) -> io::Result<()> {
    let mut row_buf = Vec::new();
    let mut out = String::new();
    // Inline mode still chunks so the buffer does not grow unbounded.
    for pkg in packages_for(table, update, rows, 10_000) {
        out.clear();
        let n = pkg.len();
        format_package(rt, table, update, pkg.rows, formatter, meta, &mut row_buf, &mut out);
        sink.write_chunk(out.as_bytes())?;
        if let Some(m) = monitor {
            m.record_package(n, out.len() as u64);
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn generate_parallel(
    rt: &SchemaRuntime,
    table: u32,
    update: u32,
    rows: std::ops::Range<u64>,
    formatter: &dyn Formatter,
    meta: &TableMeta,
    sink: &mut dyn Sink,
    cfg: &RunConfig,
    monitor: Option<&Monitor>,
) -> io::Result<()> {
    let packages = packages_for(table, update, rows, cfg.package_rows);
    if packages.is_empty() {
        return Ok(());
    }
    let next_package = AtomicU64::new(0);
    let n_packages = packages.len() as u64;
    // Bounded channel: workers stall rather than buffering the whole
    // table when the sink is slow.
    let (tx, rx) = channel::bounded::<(u64, u64, String)>(cfg.workers * 4);

    let mut result: io::Result<()> = Ok(());
    std::thread::scope(|scope| {
        for _ in 0..cfg.workers {
            let tx = tx.clone();
            let packages = &packages;
            let next_package = &next_package;
            scope.spawn(move || {
                let mut row_buf = Vec::new();
                loop {
                    let idx = next_package.fetch_add(1, Ordering::Relaxed);
                    if idx >= n_packages {
                        return;
                    }
                    let pkg = &packages[idx as usize];
                    let mut out = String::new();
                    format_package(
                        rt,
                        table,
                        update,
                        pkg.rows.clone(),
                        formatter,
                        meta,
                        &mut row_buf,
                        &mut out,
                    );
                    if tx.send((pkg.seq, pkg.len(), out)).is_err() {
                        // Output stage failed and hung up; stop quietly,
                        // the error is reported from the output side.
                        return;
                    }
                }
            });
        }
        drop(tx);

        // Output stage on the calling thread: reorder and write.
        let mut reorder = ReorderBuffer::new();
        for (seq, rows, buf) in rx {
            for (ready_rows, ready) in reorder.push(seq, (rows, buf)) {
                if let Err(e) = sink.write_chunk(ready.as_bytes()) {
                    result = Err(e);
                    return;
                }
                if let Some(m) = monitor {
                    m.record_package(ready_rows, ready.len() as u64);
                }
            }
        }
        debug_assert!(reorder.is_drained(), "packages lost");
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgf_gen::MapResolver;
    use pdgf_output::{CsvFormatter, MemorySink};
    use pdgf_schema::{Expr, Field, GeneratorSpec, Schema, SqlType, Table};

    fn runtime(rows: u64) -> SchemaRuntime {
        let schema = Schema::new("sched", 11).table(
            Table::new("t", &format!("{rows}"))
                .field(
                    Field::new("id", SqlType::BigInt, GeneratorSpec::Id { permute: false })
                        .primary(),
                )
                .field(Field::new(
                    "v",
                    SqlType::Integer,
                    GeneratorSpec::Long {
                        min: Expr::parse("0").unwrap(),
                        max: Expr::parse("999999").unwrap(),
                    },
                )),
        );
        SchemaRuntime::build(&schema, &MapResolver::new()).unwrap()
    }

    fn run(rt: &SchemaRuntime, workers: usize, package_rows: u64) -> String {
        let mut sink = MemorySink::new();
        let cfg = RunConfig { workers, package_rows };
        let stats = generate_table_range(
            rt,
            0,
            0,
            0..rt.tables()[0].size,
            &CsvFormatter::new(),
            &mut sink,
            &cfg,
            None,
        )
        .unwrap();
        assert_eq!(stats.rows, rt.tables()[0].size);
        assert_eq!(stats.bytes, sink.bytes_written());
        sink.as_str().to_string()
    }

    #[test]
    fn inline_output_has_one_line_per_row() {
        let rt = runtime(100);
        let out = run(&rt, 0, 10);
        assert_eq!(out.lines().count(), 100);
        assert!(out.starts_with("1,"));
    }

    #[test]
    fn parallel_output_is_byte_identical_to_inline() {
        let rt = runtime(5_000);
        let reference = run(&rt, 0, 128);
        for workers in [1, 2, 4, 8] {
            for pkg in [7, 100, 1024, 100_000] {
                assert_eq!(
                    run(&rt, workers, pkg),
                    reference,
                    "workers={workers} pkg={pkg}"
                );
            }
        }
    }

    #[test]
    fn sub_ranges_generate_the_matching_slice() {
        let rt = runtime(1000);
        let all = run(&rt, 0, 100);
        let mut sink = MemorySink::new();
        generate_table_range(
            &rt,
            0,
            0,
            200..300,
            &CsvFormatter::new(),
            &mut sink,
            &RunConfig { workers: 2, package_rows: 17 },
            None,
        )
        .unwrap();
        let slice: Vec<&str> = all.lines().skip(200).take(100).collect();
        let got: Vec<&str> = sink.as_str().lines().collect();
        assert_eq!(got, slice);
    }

    #[test]
    fn monitor_sees_all_rows_and_bytes() {
        let rt = runtime(1000);
        let monitor = Monitor::new();
        let mut sink = MemorySink::new();
        generate_table_range(
            &rt,
            0,
            0,
            0..1000,
            &CsvFormatter::new(),
            &mut sink,
            &RunConfig { workers: 3, package_rows: 64 },
            Some(&monitor),
        )
        .unwrap();
        let snap = monitor.snapshot();
        assert_eq!(snap.rows, 1000);
        assert_eq!(snap.bytes, sink.bytes_written());
        assert!(snap.packages >= 1000 / 64);
    }

    #[test]
    fn empty_table_produces_no_rows() {
        let rt = runtime(0);
        assert_eq!(run(&rt, 2, 10), "");
    }

    #[test]
    fn header_formatter_emits_begin_once() {
        let rt = runtime(10);
        let mut sink = MemorySink::new();
        generate_table_range(
            &rt,
            0,
            0,
            0..10,
            &CsvFormatter::new().with_header(),
            &mut sink,
            &RunConfig { workers: 2, package_rows: 3 },
            None,
        )
        .unwrap();
        let out = sink.as_str();
        assert!(out.starts_with("id,v\n"));
        assert_eq!(out.matches("id,v").count(), 1);
    }
}
