//! Synchronization facade for loom model checking.
//!
//! The scheduler's handoff primitives ([`crate::handoff`]) import their
//! synchronization types from here instead of `std::sync`. A normal
//! build re-exports the std types unchanged; building with
//! `RUSTFLAGS="--cfg loom"` swaps in `loom`'s instrumented equivalents
//! so `tests/loom.rs` can model-check the worker/output-stage handoff.
//! Both expose std's signatures (`lock()` returns a `LockResult`,
//! atomics take an `Ordering`), so call sites compile identically under
//! either cfg.

#[cfg(loom)]
pub(crate) use loom::sync::atomic::{AtomicU64, Ordering};
#[cfg(loom)]
pub(crate) use loom::sync::{Condvar, Mutex};

#[cfg(not(loom))]
pub(crate) use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(loom))]
pub(crate) use std::sync::{Condvar, Mutex};
