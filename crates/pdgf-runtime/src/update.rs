//! The update black box: deterministic data evolution over abstract time.
//!
//! PDGF's seeding hierarchy has an update level between column and row
//! (Figure 1, "Update RNG"), and update generation is one of PDGF's
//! distinguishing features over Myriad (Section 6; it is the mechanism
//! behind the TPC-DI data generator). An [`UpdateBlackBox`] turns a table
//! into a stream of per-epoch batches:
//!
//! * **inserts** — new rows appended past the current logical size,
//!   generated at the epoch's seed level;
//! * **updates** — existing rows whose non-key columns are regenerated at
//!   the epoch's seed level (so re-running any epoch reproduces it);
//! * **deletes** — existing rows removed from the logical table.
//!
//! Every batch is a pure function of `(schema seed, table, epoch)`:
//! batches can be generated out of order, on different nodes, and always
//! agree.

use pdgf_gen::SchemaRuntime;
use pdgf_prng::{PdgfDefaultRandom, PdgfRng};
use pdgf_schema::Value;

/// Fractions of the table's current logical size affected per epoch.
#[derive(Debug, Clone, Copy)]
pub struct UpdateConfig {
    /// New rows per epoch, as a fraction of the current size.
    pub insert_fraction: f64,
    /// Updated rows per epoch, as a fraction of the current size.
    pub update_fraction: f64,
    /// Deleted rows per epoch, as a fraction of the current size.
    pub delete_fraction: f64,
}

impl Default for UpdateConfig {
    fn default() -> Self {
        Self {
            insert_fraction: 0.05,
            update_fraction: 0.05,
            delete_fraction: 0.01,
        }
    }
}

/// One row-level operation within a batch.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateOp {
    /// A new row: global row number and its values.
    Insert {
        /// Global row number of the inserted row.
        row: u64,
        /// Generated values (epoch-seeded).
        values: Vec<Value>,
    },
    /// An existing row with regenerated non-key values.
    Update {
        /// Global row number of the updated row.
        row: u64,
        /// New values for all columns; key columns keep their original
        /// (epoch-0) values so identity is stable.
        values: Vec<Value>,
    },
    /// An existing row removed from the logical table.
    Delete {
        /// Global row number of the deleted row.
        row: u64,
    },
}

/// A deterministic batch of operations for one epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateBatch {
    /// The epoch this batch belongs to (1-based; epoch 0 is the initial
    /// load).
    pub epoch: u32,
    /// Operations in application order (deletes, then updates, then
    /// inserts).
    pub ops: Vec<UpdateOp>,
    /// Logical row-number high-water mark after applying this batch.
    pub high_water: u64,
}

fn sql_literal(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        Value::Long(_) | Value::Double(_) | Value::Decimal { .. } => v.to_string(),
        other => {
            let text = other.to_string();
            let mut out = String::with_capacity(text.len() + 2);
            out.push('\'');
            for c in text.chars() {
                if c == '\'' {
                    out.push('\'');
                }
                out.push(c);
            }
            out.push('\'');
            out
        }
    }
}

impl UpdateBatch {
    /// Render the batch as executable SQL DML — the change-data-capture
    /// form an ETL benchmark (TPC-DI-style) feeds to the target system.
    /// `columns` are the table's column names; `key_column` indexes the
    /// identity column used in UPDATE/DELETE predicates.
    ///
    /// Note: deletes/updates address rows by *key value*; because key
    /// columns keep their epoch-0 identity, the key of row `r` is
    /// recomputable and stable across epochs.
    pub fn to_sql(
        &self,
        table: &str,
        columns: &[String],
        key_column: usize,
        key_of: &dyn Fn(u64) -> Value,
    ) -> Vec<String> {
        let mut out = Vec::with_capacity(self.ops.len());
        for op in &self.ops {
            match op {
                UpdateOp::Delete { row } => out.push(format!(
                    "DELETE FROM {table} WHERE {} = {}",
                    columns[key_column],
                    sql_literal(&key_of(*row))
                )),
                UpdateOp::Update { row, values } => {
                    let sets: Vec<String> = columns
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != key_column)
                        .map(|(i, c)| format!("{c} = {}", sql_literal(&values[i])))
                        .collect();
                    out.push(format!(
                        "UPDATE {table} SET {} WHERE {} = {}",
                        sets.join(", "),
                        columns[key_column],
                        sql_literal(&key_of(*row))
                    ));
                }
                UpdateOp::Insert { values, .. } => {
                    let vals: Vec<String> = values.iter().map(sql_literal).collect();
                    out.push(format!(
                        "INSERT INTO {table} ({}) VALUES ({})",
                        columns.join(", "),
                        vals.join(", ")
                    ));
                }
            }
        }
        out
    }
}

/// Generates per-epoch update batches for one table.
#[derive(Debug, Clone)]
pub struct UpdateBlackBox {
    table: u32,
    config: UpdateConfig,
}

impl UpdateBlackBox {
    /// Black box for `table` under `config`.
    pub fn new(table: u32, config: UpdateConfig) -> Self {
        Self { table, config }
    }

    /// Row-count bookkeeping: `(live_estimate, high_water)` entering
    /// `epoch`. Deterministic closed-form recursion over epochs.
    fn sizes_before(&self, rt: &SchemaRuntime, epoch: u32) -> (u64, u64) {
        let base = rt.tables()[self.table as usize].size;
        let mut live = base;
        let mut high_water = base;
        for _ in 1..epoch {
            let inserts = (live as f64 * self.config.insert_fraction).round() as u64;
            let deletes = ((live as f64 * self.config.delete_fraction).round() as u64).min(live);
            live = live + inserts - deletes;
            high_water += inserts;
        }
        (live, high_water)
    }

    /// The batch for `epoch` (>= 1). Pure in `(rt.seed, table, epoch)`.
    pub fn batch(&self, rt: &SchemaRuntime, epoch: u32) -> UpdateBatch {
        assert!(epoch >= 1, "epoch 0 is the initial load");
        let (live, high_water) = self.sizes_before(rt, epoch);
        let n_inserts = (live as f64 * self.config.insert_fraction).round() as u64;
        let n_updates = ((live as f64 * self.config.update_fraction).round() as u64).min(live);
        let n_deletes = ((live as f64 * self.config.delete_fraction).round() as u64).min(live);

        // The operation stream is seeded from the table's auxiliary seed
        // and the epoch, independent of any column stream.
        let seed = rt.seed_tree().table_aux_seed(self.table, u64::from(epoch));
        let mut rng = PdgfDefaultRandom::seed_from(seed);

        let n_cols = rt.tables()[self.table as usize].columns.len() as u32;
        let key_cols: Vec<bool> = rt.tables()[self.table as usize]
            .columns
            .iter()
            .map(|c| c.primary)
            .collect();

        let mut ops = Vec::with_capacity((n_deletes + n_updates + n_inserts) as usize);

        // Deletes: distinct existing row numbers below the high-water mark.
        // (BTreeSet, not HashSet: only membership is queried, but the
        // deterministic path stays hash-free by policy — see xtask audit.)
        let mut deleted = std::collections::BTreeSet::new();
        while (deleted.len() as u64) < n_deletes.min(high_water) {
            let row = rng.next_bounded(high_water);
            if deleted.insert(row) {
                ops.push(UpdateOp::Delete { row });
            }
        }

        // Updates: distinct rows, not deleted this epoch, values
        // regenerated at this epoch's seed level (key columns keep their
        // epoch-0 identity).
        let mut updated = std::collections::BTreeSet::new();
        while (updated.len() as u64) < n_updates.min(high_water - deleted.len() as u64) {
            let row = rng.next_bounded(high_water);
            if deleted.contains(&row) || !updated.insert(row) {
                continue;
            }
            let values = (0..n_cols)
                .map(|c| {
                    if key_cols[c as usize] {
                        rt.value(self.table, c, 0, row)
                    } else {
                        rt.value(self.table, c, epoch, row)
                    }
                })
                .collect();
            ops.push(UpdateOp::Update { row, values });
        }

        // Inserts: fresh rows above the high-water mark, generated at the
        // epoch's seed level so each epoch's inserts are distinct data.
        for i in 0..n_inserts {
            let row = high_water + i;
            let values = (0..n_cols)
                .map(|c| rt.value(self.table, c, epoch, row))
                .collect();
            ops.push(UpdateOp::Insert { row, values });
        }

        UpdateBatch {
            epoch,
            ops,
            high_water: high_water + n_inserts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgf_gen::MapResolver;
    use pdgf_schema::{Expr, Field, GeneratorSpec, Schema, SqlType, Table};

    fn runtime() -> SchemaRuntime {
        let schema = Schema::new("upd", 5).table(
            Table::new("t", "1000")
                .field(
                    Field::new("id", SqlType::BigInt, GeneratorSpec::Id { permute: false })
                        .primary(),
                )
                .field(Field::new(
                    "v",
                    SqlType::Integer,
                    GeneratorSpec::Long {
                        min: Expr::parse("0").unwrap(),
                        max: Expr::parse("1000000").unwrap(),
                    },
                )),
        );
        SchemaRuntime::build(&schema, &MapResolver::new()).unwrap()
    }

    fn bb() -> UpdateBlackBox {
        UpdateBlackBox::new(
            0,
            UpdateConfig {
                insert_fraction: 0.10,
                update_fraction: 0.05,
                delete_fraction: 0.02,
            },
        )
    }

    #[test]
    fn batches_are_deterministic() {
        let rt = runtime();
        for epoch in 1..=3 {
            assert_eq!(bb().batch(&rt, epoch), bb().batch(&rt, epoch));
        }
    }

    #[test]
    fn epoch_one_counts_match_fractions() {
        let rt = runtime();
        let batch = bb().batch(&rt, 1);
        let inserts = batch
            .ops
            .iter()
            .filter(|o| matches!(o, UpdateOp::Insert { .. }))
            .count();
        let updates = batch
            .ops
            .iter()
            .filter(|o| matches!(o, UpdateOp::Update { .. }))
            .count();
        let deletes = batch
            .ops
            .iter()
            .filter(|o| matches!(o, UpdateOp::Delete { .. }))
            .count();
        assert_eq!(inserts, 100);
        assert_eq!(updates, 50);
        assert_eq!(deletes, 20);
        assert_eq!(batch.high_water, 1100);
    }

    #[test]
    fn inserted_rows_extend_the_id_space() {
        let rt = runtime();
        let batch = bb().batch(&rt, 1);
        for op in &batch.ops {
            if let UpdateOp::Insert { row, values } = op {
                assert!(*row >= 1000, "insert below high water");
                assert_eq!(values[0], Value::Long(*row as i64 + 1));
            }
        }
    }

    #[test]
    fn updates_keep_key_columns_stable() {
        let rt = runtime();
        let batch = bb().batch(&rt, 2);
        for op in &batch.ops {
            if let UpdateOp::Update { row, values } = op {
                // Key column regenerated at epoch 0 == original identity.
                assert_eq!(values[0], rt.value(0, 0, 0, *row));
                // Non-key column differs from the original with high
                // probability; spot-check at least one difference exists
                // across the batch below.
                let _ = &values[1];
            }
        }
        let changed = batch
            .ops
            .iter()
            .filter(|o| {
                matches!(o, UpdateOp::Update { row, values }
                    if values[1] != rt.value(0, 1, 0, *row))
            })
            .count();
        assert!(changed > 40, "updates barely change values: {changed}");
    }

    #[test]
    fn deletes_and_updates_are_disjoint() {
        let rt = runtime();
        let batch = bb().batch(&rt, 1);
        let deleted: std::collections::HashSet<u64> = batch
            .ops
            .iter()
            .filter_map(|o| match o {
                UpdateOp::Delete { row } => Some(*row),
                _ => None,
            })
            .collect();
        for op in &batch.ops {
            if let UpdateOp::Update { row, .. } = op {
                assert!(!deleted.contains(row), "row {row} deleted and updated");
            }
        }
        assert_eq!(deleted.len(), 20, "deletes must be distinct rows");
    }

    #[test]
    fn later_epochs_grow_the_high_water_mark() {
        let rt = runtime();
        let b1 = bb().batch(&rt, 1);
        let b2 = bb().batch(&rt, 2);
        let b3 = bb().batch(&rt, 3);
        assert!(b1.high_water < b2.high_water);
        assert!(b2.high_water < b3.high_water);
        // Epoch 2 inserts start exactly at epoch 1's high-water mark.
        let min_insert_row = b2
            .ops
            .iter()
            .filter_map(|o| match o {
                UpdateOp::Insert { row, .. } => Some(*row),
                _ => None,
            })
            .min()
            .unwrap();
        assert_eq!(min_insert_row, b1.high_water);
    }

    #[test]
    fn different_epochs_produce_different_batches() {
        let rt = runtime();
        assert_ne!(bb().batch(&rt, 1).ops, bb().batch(&rt, 2).ops);
    }

    #[test]
    fn batches_render_as_sql_dml() {
        let rt = runtime();
        let batch = bb().batch(&rt, 1);
        let columns = vec!["id".to_string(), "v".to_string()];
        let stmts = batch.to_sql("t", &columns, 0, &|row| rt.value(0, 0, 0, row));
        assert_eq!(stmts.len(), batch.ops.len());
        assert!(stmts
            .iter()
            .any(|s| s.starts_with("DELETE FROM t WHERE id = ")));
        assert!(stmts.iter().any(|s| s.starts_with("UPDATE t SET v = ")));
        assert!(stmts
            .iter()
            .any(|s| s.starts_with("INSERT INTO t (id, v) VALUES (")));
        // Updates never assign the key column.
        assert!(stmts
            .iter()
            .filter(|s| s.starts_with("UPDATE"))
            .all(|s| !s.contains("SET id")));
    }

    #[test]
    fn sql_literals_escape_text() {
        assert_eq!(sql_literal(&Value::Null), "NULL");
        assert_eq!(sql_literal(&Value::Bool(true)), "TRUE");
        assert_eq!(sql_literal(&Value::Long(-3)), "-3");
        assert_eq!(sql_literal(&Value::decimal(150, 2)), "1.50");
        assert_eq!(sql_literal(&Value::text("O'Brien")), "'O''Brien'");
    }
}
