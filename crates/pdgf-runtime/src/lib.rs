//! Execution layer of the PDGF reproduction.
//!
//! Figure 2 of the paper shows the architecture this crate implements:
//! a controller initializes the system, "the meta scheduler manages
//! multi-node scheduling, while the scheduler assigns work packages to
//! the workers. A work package is a set of rows of a table that need to
//! be generated. The workers then initialize the correct generators using
//! the seeding system and the update black box. Whenever a work package
//! is generated, it is sent to the output system, where it can be
//! formatted and sorted."
//!
//! * [`package`] — work packages and row-range partitioning,
//! * [`scheduler`] — the single-node worker pool with sorted output,
//! * [`meta`] — the meta-scheduler: sharding a project across nodes,
//! * [`update`] — the update black box: deterministic insert/update/
//!   delete batches per abstract time unit,
//! * [`monitor`] — live progress counters (the demo's Mission Control
//!   substitute),
//! * [`events`] — the structured run-event stream (bounded, never
//!   blocking; a slow subscriber drops events, it cannot stall the run),
//! * [`metrics`] — per-worker phase-latency histograms, utilization and
//!   queue-depth sampling,
//! * [`telemetry`] — the handle tying events + metrics + the stall
//!   watchdog to a run ([`Observability`] attaches them),
//! * [`serve`] — the on-the-fly row service: one persistent pool
//!   answering row-range and point-lookup requests on demand, byte-
//!   identical to batch output,
//! * [`driver`] — whole-project generation runs and reports,
//! * [`handoff`] — the worker/output-stage handoff primitives (ticket
//!   counter and bounded channel), model-checkable under `--cfg loom`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod driver;
pub mod events;
pub mod handoff;
pub mod meta;
pub mod metrics;
pub mod monitor;
pub mod package;
pub mod scheduler;
pub mod serve;
mod sync;
pub mod telemetry;
pub mod update;

pub use driver::{GenerationRun, RunReport, TableReport};
pub use events::{EventBus, EventSubscriber, RunEvent, StampedEvent};
pub use handoff::TicketCounter;
pub use meta::{MetaScheduler, NodeReport, NodeSinkFactory};
pub use metrics::{
    Histogram, HistogramSnapshot, MetricsSnapshot, PackageTimings, PhaseStats, QueueDepthStats,
};
pub use monitor::{Monitor, Snapshot, TableHandle, TableSnapshot};
pub use package::{
    packages_for, packages_for_jobs, Framing, ProjectPackage, TableJob, WorkPackage,
};
pub use scheduler::{
    available_workers, generate_table_range, run_project, table_meta, RunConfig, TableRunStats,
};
pub use serve::{
    Admitted, ResponseStream, RowRequest, RowService, ServeConfig, ServeStats, SubmitError,
};
pub use telemetry::{Observability, Telemetry, TelemetryConfig};
pub use update::{UpdateBatch, UpdateBlackBox, UpdateConfig, UpdateOp};
