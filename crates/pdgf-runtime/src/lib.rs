//! Execution layer of the PDGF reproduction.
//!
//! Figure 2 of the paper shows the architecture this crate implements:
//! a controller initializes the system, "the meta scheduler manages
//! multi-node scheduling, while the scheduler assigns work packages to
//! the workers. A work package is a set of rows of a table that need to
//! be generated. The workers then initialize the correct generators using
//! the seeding system and the update black box. Whenever a work package
//! is generated, it is sent to the output system, where it can be
//! formatted and sorted."
//!
//! * [`package`] — work packages and row-range partitioning,
//! * [`scheduler`] — the single-node worker pool with sorted output,
//! * [`meta`] — the meta-scheduler: sharding a project across nodes,
//! * [`update`] — the update black box: deterministic insert/update/
//!   delete batches per abstract time unit,
//! * [`monitor`] — live progress counters (the demo's Mission Control
//!   substitute),
//! * [`driver`] — whole-project generation runs and reports,
//! * [`handoff`] — the worker/output-stage handoff primitives (ticket
//!   counter and bounded channel), model-checkable under `--cfg loom`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod driver;
pub mod handoff;
pub mod meta;
pub mod monitor;
pub mod package;
pub mod scheduler;
mod sync;
pub mod update;

pub use driver::{GenerationRun, RunReport, TableReport};
pub use handoff::TicketCounter;
pub use meta::{MetaScheduler, NodeReport};
pub use monitor::{Monitor, Snapshot, TableSnapshot};
pub use package::{
    packages_for, packages_for_jobs, Framing, ProjectPackage, TableJob, WorkPackage,
};
pub use scheduler::{generate_table_range, run_project, RunConfig, TableRunStats};
pub use update::{UpdateBatch, UpdateBlackBox, UpdateConfig, UpdateOp};
