//! Whole-project generation runs.
//!
//! The [`GenerationRun`] is the controller of Figure 2: it hands every
//! table of a compiled schema to the project-wide scheduler as one job
//! list — a single worker pool generates all tables, overlapping them in
//! time — and collects a [`RunReport`] with the statistics the paper's
//! evaluation plots (bytes, rows, wall time, MB/s).

use std::io;
use std::time::Instant;

use pdgf_gen::SchemaRuntime;
use pdgf_output::{Formatter, Sink};

use crate::monitor::Monitor;
use crate::package::TableJob;
use crate::scheduler::{run_project, RunConfig};

/// Statistics for one generated table.
#[derive(Debug, Clone)]
pub struct TableReport {
    /// Table name.
    pub table: String,
    /// Rows generated.
    pub rows: u64,
    /// Bytes written.
    pub bytes: u64,
    /// Seconds from run start until this table's output was complete.
    /// Tables share one worker pool and overlap in time, so these do not
    /// sum to the run's wall time.
    pub seconds: f64,
}

/// Statistics for a full project run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-table statistics, in schema order.
    pub tables: Vec<TableReport>,
    /// Total wall-clock seconds.
    pub seconds: f64,
}

impl RunReport {
    /// Total rows across tables.
    pub fn total_rows(&self) -> u64 {
        self.tables.iter().map(|t| t.rows).sum()
    }

    /// Total bytes across tables.
    pub fn total_bytes(&self) -> u64 {
        self.tables.iter().map(|t| t.bytes).sum()
    }

    /// Aggregate throughput in MB/s.
    pub fn throughput_mb_s(&self) -> f64 {
        if self.seconds > 0.0 {
            self.total_bytes() as f64 / 1e6 / self.seconds
        } else {
            0.0
        }
    }
}

/// Drives generation of all tables of one compiled schema through one
/// persistent worker pool.
pub struct GenerationRun<'rt> {
    rt: &'rt SchemaRuntime,
    config: RunConfig,
    monitor: Option<Monitor>,
}

impl<'rt> GenerationRun<'rt> {
    /// Run over `rt` with the given scheduler configuration.
    pub fn new(rt: &'rt SchemaRuntime, config: RunConfig) -> Self {
        Self {
            rt,
            config,
            monitor: None,
        }
    }

    /// Attach a progress monitor.
    pub fn with_monitor(mut self, monitor: Monitor) -> Self {
        self.monitor = Some(monitor);
        self
    }

    /// Generate every table, obtaining each table's sink from
    /// `make_sink(table_name)`. All sinks are created up front (tables
    /// generate concurrently) and finished after the run.
    pub fn run(
        &self,
        formatter: &dyn Formatter,
        make_sink: &mut dyn FnMut(&str) -> io::Result<Box<dyn Sink>>,
    ) -> io::Result<RunReport> {
        let started = Instant::now();
        let tables = self.rt.tables();
        let jobs: Vec<TableJob> = tables
            .iter()
            .enumerate()
            .map(|(t, table)| TableJob::full_table(t as u32, table.size))
            .collect();
        let mut sinks: Vec<Box<dyn Sink>> = tables
            .iter()
            .map(|t| make_sink(&t.name))
            .collect::<io::Result<_>>()?;
        let stats = {
            let mut refs: Vec<&mut dyn Sink> = sinks
                .iter_mut()
                .map(|s| &mut **s as &mut dyn Sink)
                .collect();
            run_project(
                self.rt,
                &jobs,
                formatter,
                &mut refs,
                &self.config,
                self.monitor.as_ref(),
            )?
        };
        for sink in &mut sinks {
            sink.finish()?;
        }
        let tables = tables
            .iter()
            .zip(stats)
            .map(|(table, s)| TableReport {
                table: table.name.clone(),
                rows: s.rows,
                bytes: s.bytes,
                seconds: s.seconds,
            })
            .collect();
        Ok(RunReport {
            tables,
            seconds: started.elapsed().as_secs_f64(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgf_gen::MapResolver;
    use pdgf_output::{CsvFormatter, MemorySink, NullSink};
    use pdgf_schema::{Expr, Field, GeneratorSpec, Schema, SqlType, Table};

    fn runtime() -> SchemaRuntime {
        let schema = Schema::new("drv", 3)
            .table(Table::new("a", "100").field(Field::new(
                "id",
                SqlType::BigInt,
                GeneratorSpec::Id { permute: false },
            )))
            .table(Table::new("b", "200").field(Field::new(
                "v",
                SqlType::Integer,
                GeneratorSpec::Long {
                    min: Expr::parse("0").unwrap(),
                    max: Expr::parse("9").unwrap(),
                },
            )));
        SchemaRuntime::build(&schema, &MapResolver::new()).unwrap()
    }

    #[test]
    fn run_covers_all_tables() {
        let rt = runtime();
        let run = GenerationRun::new(
            &rt,
            RunConfig {
                workers: 2,
                package_rows: 32,
            },
        );
        let mut make = |_: &str| -> io::Result<Box<dyn Sink>> { Ok(Box::new(NullSink::new())) };
        let report = run.run(&CsvFormatter::new(), &mut make).unwrap();
        assert_eq!(report.tables.len(), 2);
        assert_eq!(report.tables[0].table, "a");
        assert_eq!(report.total_rows(), 300);
        assert!(report.total_bytes() > 0);
        assert!(report.seconds >= 0.0);
        let _ = report.throughput_mb_s();
    }

    #[test]
    fn monitor_tracks_whole_run() {
        let rt = runtime();
        let monitor = Monitor::new();
        let run = GenerationRun::new(
            &rt,
            RunConfig {
                workers: 1,
                package_rows: 64,
            },
        )
        .with_monitor(monitor.clone());
        let mut make = |_: &str| -> io::Result<Box<dyn Sink>> { Ok(Box::new(NullSink::new())) };
        let report = run.run(&CsvFormatter::new(), &mut make).unwrap();
        assert_eq!(monitor.snapshot().rows, report.total_rows());
        assert_eq!(monitor.snapshot().bytes, report.total_bytes());
        // The monitor resolves progress per table as well.
        assert_eq!(monitor.table_snapshot("a").unwrap().rows, 100);
        assert_eq!(monitor.table_snapshot("b").unwrap().rows, 200);
    }

    #[test]
    fn sink_factory_sees_table_names() {
        let rt = runtime();
        let run = GenerationRun::new(
            &rt,
            RunConfig {
                workers: 0,
                package_rows: 64,
            },
        );
        let mut names = Vec::new();
        let mut make = |name: &str| -> io::Result<Box<dyn Sink>> {
            names.push(name.to_string());
            Ok(Box::new(NullSink::new()))
        };
        run.run(&CsvFormatter::new(), &mut make).unwrap();
        assert_eq!(names, vec!["a", "b"]);
    }

    /// The pooled project run produces exactly the bytes of per-table
    /// sequential runs, per sink.
    #[test]
    fn pooled_run_matches_sequential_bytes() {
        let rt = runtime();
        let collect = |workers: usize| -> Vec<String> {
            let sinks =
                std::sync::Arc::new(parking_lot::Mutex::new(Vec::<(String, Vec<u8>)>::new()));
            let run = GenerationRun::new(
                &rt,
                RunConfig {
                    workers,
                    package_rows: 17,
                },
            );
            let mut make = {
                let sinks = sinks.clone();
                move |name: &str| -> io::Result<Box<dyn Sink>> {
                    Ok(Box::new(SharedSink {
                        name: name.to_string(),
                        buf: Vec::new(),
                        dest: sinks.clone(),
                    }))
                }
            };
            run.run(&CsvFormatter::new(), &mut make).unwrap();
            let mut out = sinks.lock().clone();
            out.sort();
            out.into_iter()
                .map(|(n, b)| format!("{n}:{}", String::from_utf8(b).unwrap()))
                .collect()
        };
        let sequential = collect(0);
        for workers in [1, 3, 8] {
            assert_eq!(collect(workers), sequential, "workers={workers}");
        }
    }

    type CapturedOutputs = std::sync::Arc<parking_lot::Mutex<Vec<(String, Vec<u8>)>>>;

    struct SharedSink {
        name: String,
        buf: Vec<u8>,
        dest: CapturedOutputs,
    }

    impl Sink for SharedSink {
        fn write_chunk(&mut self, bytes: &[u8]) -> io::Result<()> {
            self.buf.extend_from_slice(bytes);
            Ok(())
        }
        fn finish(&mut self) -> io::Result<u64> {
            let n = self.buf.len() as u64;
            self.dest
                .lock()
                .push((self.name.clone(), std::mem::take(&mut self.buf)));
            Ok(n)
        }
        fn bytes_written(&self) -> u64 {
            self.buf.len() as u64
        }
    }

    #[test]
    fn memory_sinks_via_boxes_round_trip() {
        // Box<MemorySink> returned from the factory still collects bytes.
        let rt = runtime();
        let run = GenerationRun::new(
            &rt,
            RunConfig {
                workers: 2,
                package_rows: 64,
            },
        );
        let mut total = 0u64;
        {
            let mut make =
                |_: &str| -> io::Result<Box<dyn Sink>> { Ok(Box::new(MemorySink::new())) };
            let report = run.run(&CsvFormatter::new(), &mut make).unwrap();
            total += report.total_bytes();
        }
        assert!(total > 0);
    }
}
