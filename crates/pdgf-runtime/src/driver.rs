//! Whole-project generation runs.
//!
//! The [`GenerationRun`] is the controller of Figure 2: it walks every
//! table of a compiled schema, drives the scheduler, and collects a
//! [`RunReport`] with the statistics the paper's evaluation plots
//! (bytes, rows, wall time, MB/s).

use std::io;
use std::time::Instant;

use pdgf_gen::SchemaRuntime;
use pdgf_output::{Formatter, Sink};

use crate::monitor::Monitor;
use crate::scheduler::{generate_table_range, RunConfig};

/// Statistics for one generated table.
#[derive(Debug, Clone)]
pub struct TableReport {
    /// Table name.
    pub table: String,
    /// Rows generated.
    pub rows: u64,
    /// Bytes written.
    pub bytes: u64,
    /// Seconds spent on this table.
    pub seconds: f64,
}

/// Statistics for a full project run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-table statistics, in schema order.
    pub tables: Vec<TableReport>,
    /// Total wall-clock seconds.
    pub seconds: f64,
}

impl RunReport {
    /// Total rows across tables.
    pub fn total_rows(&self) -> u64 {
        self.tables.iter().map(|t| t.rows).sum()
    }

    /// Total bytes across tables.
    pub fn total_bytes(&self) -> u64 {
        self.tables.iter().map(|t| t.bytes).sum()
    }

    /// Aggregate throughput in MB/s.
    pub fn throughput_mb_s(&self) -> f64 {
        if self.seconds > 0.0 {
            self.total_bytes() as f64 / 1e6 / self.seconds
        } else {
            0.0
        }
    }
}

/// Drives generation of all tables of one compiled schema.
pub struct GenerationRun<'rt> {
    rt: &'rt SchemaRuntime,
    config: RunConfig,
    monitor: Option<Monitor>,
}

impl<'rt> GenerationRun<'rt> {
    /// Run over `rt` with the given scheduler configuration.
    pub fn new(rt: &'rt SchemaRuntime, config: RunConfig) -> Self {
        Self {
            rt,
            config,
            monitor: None,
        }
    }

    /// Attach a progress monitor.
    pub fn with_monitor(mut self, monitor: Monitor) -> Self {
        self.monitor = Some(monitor);
        self
    }

    /// Generate every table, obtaining each table's sink from
    /// `make_sink(table_name)`.
    pub fn run(
        &self,
        formatter: &dyn Formatter,
        make_sink: &mut dyn FnMut(&str) -> io::Result<Box<dyn Sink>>,
    ) -> io::Result<RunReport> {
        let started = Instant::now();
        let mut tables = Vec::with_capacity(self.rt.tables().len());
        for (t_idx, table) in self.rt.tables().iter().enumerate() {
            let mut sink = make_sink(&table.name)?;
            let stats = generate_table_range(
                self.rt,
                t_idx as u32,
                0,
                0..table.size,
                formatter,
                sink.as_mut(),
                &self.config,
                self.monitor.as_ref(),
            )?;
            sink.finish()?;
            tables.push(TableReport {
                table: table.name.clone(),
                rows: stats.rows,
                bytes: stats.bytes,
                seconds: stats.seconds,
            });
        }
        Ok(RunReport {
            tables,
            seconds: started.elapsed().as_secs_f64(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgf_gen::MapResolver;
    use pdgf_output::{CsvFormatter, NullSink};
    use pdgf_schema::{Expr, Field, GeneratorSpec, Schema, SqlType, Table};

    fn runtime() -> SchemaRuntime {
        let schema = Schema::new("drv", 3)
            .table(Table::new("a", "100").field(Field::new(
                "id",
                SqlType::BigInt,
                GeneratorSpec::Id { permute: false },
            )))
            .table(Table::new("b", "200").field(Field::new(
                "v",
                SqlType::Integer,
                GeneratorSpec::Long {
                    min: Expr::parse("0").unwrap(),
                    max: Expr::parse("9").unwrap(),
                },
            )));
        SchemaRuntime::build(&schema, &MapResolver::new()).unwrap()
    }

    #[test]
    fn run_covers_all_tables() {
        let rt = runtime();
        let run = GenerationRun::new(
            &rt,
            RunConfig {
                workers: 2,
                package_rows: 32,
            },
        );
        let mut make = |_: &str| -> io::Result<Box<dyn Sink>> { Ok(Box::new(NullSink::new())) };
        let report = run.run(&CsvFormatter::new(), &mut make).unwrap();
        assert_eq!(report.tables.len(), 2);
        assert_eq!(report.tables[0].table, "a");
        assert_eq!(report.total_rows(), 300);
        assert!(report.total_bytes() > 0);
        assert!(report.seconds >= 0.0);
        let _ = report.throughput_mb_s();
    }

    #[test]
    fn monitor_tracks_whole_run() {
        let rt = runtime();
        let monitor = Monitor::new();
        let run = GenerationRun::new(
            &rt,
            RunConfig {
                workers: 1,
                package_rows: 64,
            },
        )
        .with_monitor(monitor.clone());
        let mut make = |_: &str| -> io::Result<Box<dyn Sink>> { Ok(Box::new(NullSink::new())) };
        let report = run.run(&CsvFormatter::new(), &mut make).unwrap();
        assert_eq!(monitor.snapshot().rows, report.total_rows());
        assert_eq!(monitor.snapshot().bytes, report.total_bytes());
    }

    #[test]
    fn sink_factory_sees_table_names() {
        let rt = runtime();
        let run = GenerationRun::new(
            &rt,
            RunConfig {
                workers: 0,
                package_rows: 64,
            },
        );
        let mut names = Vec::new();
        let mut make = |name: &str| -> io::Result<Box<dyn Sink>> {
            names.push(name.to_string());
            Ok(Box::new(NullSink::new()))
        };
        run.run(&CsvFormatter::new(), &mut make).unwrap();
        assert_eq!(names, vec!["a", "b"]);
    }
}
