//! Work packages: the scheduler's unit of work.
//!
//! "A work package is a set of rows of a table that need to be generated."
//! Packages are contiguous row ranges; their sequence number doubles as
//! the sort key for ordered output.

use std::ops::Range;

/// A contiguous run of rows of one table at one update epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkPackage {
    /// Sequence number within the generation run (sort key for output).
    pub seq: u64,
    /// Table index.
    pub table: u32,
    /// Update epoch.
    pub update: u32,
    /// Row range (global row numbers).
    pub rows: Range<u64>,
}

impl WorkPackage {
    /// Number of rows in the package.
    pub fn len(&self) -> u64 {
        self.rows.end - self.rows.start
    }

    /// True when the package covers no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Split `rows` of `table` into packages of at most `package_rows` rows,
/// numbered from 0.
pub fn packages_for(
    table: u32,
    update: u32,
    rows: Range<u64>,
    package_rows: u64,
) -> Vec<WorkPackage> {
    assert!(package_rows > 0, "package size must be positive");
    let mut out = Vec::new();
    let mut start = rows.start;
    let mut seq = 0;
    while start < rows.end {
        let end = rows.end.min(start + package_rows);
        out.push(WorkPackage {
            seq,
            table,
            update,
            rows: start..end,
        });
        start = end;
        seq += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division() {
        let p = packages_for(0, 0, 0..100, 25);
        assert_eq!(p.len(), 4);
        assert!(p.iter().all(|w| w.len() == 25));
        assert_eq!(p[3].rows, 75..100);
        assert_eq!(p[3].seq, 3);
    }

    #[test]
    fn remainder_package_is_short() {
        let p = packages_for(1, 2, 0..10, 4);
        assert_eq!(p.len(), 3);
        assert_eq!(p[2].rows, 8..10);
        assert_eq!(p[2].len(), 2);
        assert_eq!(p[0].table, 1);
        assert_eq!(p[0].update, 2);
    }

    #[test]
    fn offset_ranges_are_respected() {
        let p = packages_for(0, 0, 50..60, 100);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].rows, 50..60);
        assert!(!p[0].is_empty());
    }

    #[test]
    fn empty_range_yields_no_packages() {
        assert!(packages_for(0, 0, 5..5, 10).is_empty());
    }

    #[test]
    fn packages_cover_range_exactly_once() {
        let p = packages_for(0, 0, 0..1013, 64);
        let mut covered = 0u64;
        let mut expected_start = 0;
        for w in &p {
            assert_eq!(w.rows.start, expected_start, "gap or overlap");
            covered += w.len();
            expected_start = w.rows.end;
        }
        assert_eq!(covered, 1013);
    }
}
