//! Work packages: the scheduler's unit of work.
//!
//! "A work package is a set of rows of a table that need to be generated."
//! Packages are contiguous row ranges; their sequence number doubles as
//! the sort key for ordered output. Since the scheduler went project-wide
//! the queue spans every table (and update epoch) of a run: a [`TableJob`]
//! describes one table shard with its framing obligations, and
//! [`packages_for_jobs`] flattens a whole project into one global package
//! list whose entries are keyed by `(job, seq)` — `job` routes a finished
//! package to its sink, `seq` sorts it within that sink's stream.

use std::ops::Range;

/// A contiguous run of rows of one table at one update epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkPackage {
    /// Sequence number within the job (sort key for output).
    pub seq: u64,
    /// Table index.
    pub table: u32,
    /// Update epoch.
    pub update: u32,
    /// Row range (global row numbers).
    pub rows: Range<u64>,
}

impl WorkPackage {
    /// Number of rows in the package.
    pub fn len(&self) -> u64 {
        self.rows.end - self.rows.start
    }

    /// True when the package covers no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Which of the formatter's `begin`/`end` bytes a table shard owns.
///
/// A whole-table run owns both. A node shard of a framed format (CSV with
/// header, XML document, SQL script) owns `begin` only when it starts at
/// row 0 and `end` only when it finishes the table, so that concatenating
/// shard outputs in node order reproduces the single-node byte stream
/// exactly — headers appear once, documents close once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Framing {
    /// Emit the formatter's `begin` bytes before the first row.
    pub begin: bool,
    /// Emit the formatter's `end` bytes after the last row.
    pub end: bool,
}

impl Framing {
    /// Both `begin` and `end`: a self-contained document.
    pub fn full() -> Self {
        Self {
            begin: true,
            end: true,
        }
    }

    /// Neither: a middle fragment of a larger stream.
    pub fn none() -> Self {
        Self {
            begin: false,
            end: false,
        }
    }

    /// Framing implied by a row range of a `table_size`-row table: `begin`
    /// iff the range starts at row 0, `end` iff it reaches the table end.
    pub fn for_range(rows: &Range<u64>, table_size: u64) -> Self {
        Self {
            begin: rows.start == 0,
            end: rows.end >= table_size,
        }
    }
}

/// One table shard in a project run: the rows to generate plus the
/// framing bytes this shard is responsible for. The project scheduler
/// drains the packages of every job through one worker pool; each job has
/// its own sink and its own reorder stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableJob {
    /// Table index.
    pub table: u32,
    /// Update epoch.
    pub update: u32,
    /// Row range (global row numbers).
    pub rows: Range<u64>,
    /// Framing obligations of this shard.
    pub framing: Framing,
}

impl TableJob {
    /// Job covering all `size` rows of `table` at update epoch 0, with
    /// full framing.
    pub fn full_table(table: u32, size: u64) -> Self {
        Self {
            table,
            update: 0,
            rows: 0..size,
            framing: Framing::full(),
        }
    }

    /// Job for a sub-range of a `table_size`-row table, framed by
    /// position ([`Framing::for_range`]).
    pub fn shard(table: u32, update: u32, rows: Range<u64>, table_size: u64) -> Self {
        let framing = Framing::for_range(&rows, table_size);
        Self {
            table,
            update,
            rows,
            framing,
        }
    }
}

/// A work package within a project run: the job index routes the output,
/// the embedded package's `seq` orders it within the job's stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProjectPackage {
    /// Index into the run's job list.
    pub job: u32,
    /// The row range and per-job sequence number.
    pub pkg: WorkPackage,
}

/// Split `rows` of `table` into packages of at most `package_rows` rows,
/// numbered from 0.
pub fn packages_for(
    table: u32,
    update: u32,
    rows: Range<u64>,
    package_rows: u64,
) -> Vec<WorkPackage> {
    assert!(package_rows > 0, "package size must be positive");
    let mut out = Vec::new();
    let mut start = rows.start;
    let mut seq = 0;
    while start < rows.end {
        let end = rows.end.min(start + package_rows);
        out.push(WorkPackage {
            seq,
            table,
            update,
            rows: start..end,
        });
        start = end;
        seq += 1;
    }
    out
}

/// Flatten every job of a project into one global package list, job-major
/// (all of job 0's packages, then job 1's, …) with per-job sequence
/// numbers from 0. Workers claim entries in list order, so a run tends to
/// finish tables in schema order while later tables absorb idle workers
/// during each table's tail.
pub fn packages_for_jobs(jobs: &[TableJob], package_rows: u64) -> Vec<ProjectPackage> {
    assert!(
        jobs.len() <= u32::MAX as usize,
        "job index limited to u32::MAX"
    );
    let mut out = Vec::new();
    for (idx, job) in jobs.iter().enumerate() {
        for pkg in packages_for(job.table, job.update, job.rows.clone(), package_rows) {
            out.push(ProjectPackage {
                job: idx as u32,
                pkg,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division() {
        let p = packages_for(0, 0, 0..100, 25);
        assert_eq!(p.len(), 4);
        assert!(p.iter().all(|w| w.len() == 25));
        assert_eq!(p[3].rows, 75..100);
        assert_eq!(p[3].seq, 3);
    }

    #[test]
    fn remainder_package_is_short() {
        let p = packages_for(1, 2, 0..10, 4);
        assert_eq!(p.len(), 3);
        assert_eq!(p[2].rows, 8..10);
        assert_eq!(p[2].len(), 2);
        assert_eq!(p[0].table, 1);
        assert_eq!(p[0].update, 2);
    }

    #[test]
    fn offset_ranges_are_respected() {
        let p = packages_for(0, 0, 50..60, 100);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].rows, 50..60);
        assert!(!p[0].is_empty());
    }

    #[test]
    fn empty_range_yields_no_packages() {
        assert!(packages_for(0, 0, 5..5, 10).is_empty());
    }

    #[test]
    fn packages_cover_range_exactly_once() {
        let p = packages_for(0, 0, 0..1013, 64);
        let mut covered = 0u64;
        let mut expected_start = 0;
        for w in &p {
            assert_eq!(w.rows.start, expected_start, "gap or overlap");
            covered += w.len();
            expected_start = w.rows.end;
        }
        assert_eq!(covered, 1013);
    }

    #[test]
    fn framing_from_range_position() {
        assert_eq!(Framing::for_range(&(0..100), 100), Framing::full());
        assert!(Framing::for_range(&(0..50), 100).begin);
        assert!(!Framing::for_range(&(0..50), 100).end);
        assert!(!Framing::for_range(&(50..100), 100).begin);
        assert!(Framing::for_range(&(50..100), 100).end);
        assert_eq!(Framing::for_range(&(25..75), 100), Framing::none());
        // Empty table: the full range is 0..0, a complete document.
        assert_eq!(Framing::for_range(&(0..0), 0), Framing::full());
    }

    #[test]
    fn project_packages_are_job_major_with_per_job_sequences() {
        let jobs = [
            TableJob::full_table(0, 10),
            TableJob::full_table(3, 0),
            TableJob::shard(1, 2, 4..12, 20),
        ];
        let p = packages_for_jobs(&jobs, 4);
        // Job 0: 10 rows → 3 packages; job 1: empty → none; job 2: 8 rows
        // → 2 packages.
        assert_eq!(p.len(), 5);
        assert_eq!(
            p.iter().map(|x| x.job).collect::<Vec<_>>(),
            vec![0, 0, 0, 2, 2]
        );
        assert_eq!(p[0].pkg.seq, 0);
        assert_eq!(p[2].pkg.seq, 2);
        assert_eq!(p[3].pkg.seq, 0, "sequences restart per job");
        assert_eq!(p[3].pkg.table, 1);
        assert_eq!(p[3].pkg.update, 2);
        assert_eq!(p[3].pkg.rows, 4..8);
        assert_eq!(p[4].pkg.rows, 8..12);
    }
}
