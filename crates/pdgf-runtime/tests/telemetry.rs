//! Telemetry contract tests.
//!
//! Three guarantees the observability layer makes:
//!
//! 1. **Bytes are untouched** — attaching a telemetry handle (with a live
//!    subscriber) changes nothing about the generated output, at any
//!    worker count.
//! 2. **A slow subscriber loses events, never stalls the run** — the
//!    bounded bus drops on overflow and the drop counter reports exactly
//!    the shortfall: `received + dropped == published`.
//! 3. **The watchdog names the stuck table** — a sink that wedges mid-run
//!    raises `StallDetected` carrying the right table name, and the run
//!    completes once the sink is released.

use std::io;
use std::sync::mpsc;
use std::time::Duration;

use pdgf_gen::{MapResolver, SchemaRuntime};
use pdgf_output::{CsvFormatter, MemorySinkFactory, NullSink, Sink};
use pdgf_runtime::{GenerationRun, RunConfig, RunEvent, Telemetry, TelemetryConfig};
use pdgf_schema::{Expr, Field, GeneratorSpec, Schema, SqlType, Table};

fn runtime() -> SchemaRuntime {
    let schema = Schema::new("telemetry", 7)
        .table(Table::new("a", "150").field(Field::new(
            "id",
            SqlType::BigInt,
            GeneratorSpec::Id { permute: false },
        )))
        .table(
            Table::new("b", "400")
                .field(Field::new(
                    "id",
                    SqlType::BigInt,
                    GeneratorSpec::Id { permute: false },
                ))
                .field(Field::new(
                    "v",
                    SqlType::Integer,
                    GeneratorSpec::Long {
                        min: Expr::parse("0").unwrap(),
                        max: Expr::parse("999").unwrap(),
                    },
                )),
        );
    SchemaRuntime::build(&schema, &MapResolver::new()).unwrap()
}

/// Attaching telemetry — with a subscriber actively draining — must not
/// change a single output byte, for any worker count.
#[test]
fn bytes_identical_with_and_without_subscriber() {
    let rt = runtime();
    let collect = |workers: usize, telemetry: Option<Telemetry>| -> Vec<(String, Vec<u8>)> {
        let factory = MemorySinkFactory::new();
        let mut run = GenerationRun::new(&rt, RunConfig::new().workers(workers).package_rows(31));
        if let Some(t) = telemetry {
            run = run.with_telemetry(t);
        }
        run.run(&CsvFormatter::new(), factory.clone()).unwrap();
        factory.outputs()
    };

    let reference = collect(0, None);
    assert!(reference.iter().all(|(_, bytes)| !bytes.is_empty()));
    for workers in [0usize, 1, 2, 4] {
        let telemetry = Telemetry::new();
        let subscriber = telemetry.subscribe();
        let drain = std::thread::spawn(move || {
            let mut n = 0u64;
            while subscriber.recv().is_some() {
                n += 1;
            }
            n
        });
        let observed = collect(workers, Some(telemetry.clone()));
        telemetry.close();
        let events_seen = drain.join().unwrap();
        assert_eq!(observed, reference, "workers={workers}");
        assert!(events_seen > 0, "subscriber saw the event stream");
    }
}

/// A subscriber that never drains while the run is live: the bounded bus
/// fills, overflow is dropped, and the accounting is exact — what the
/// subscriber eventually receives plus the drop counter equals everything
/// published. The publish count itself is deterministic from the job and
/// package structure.
#[test]
fn slow_subscriber_drops_exactly_the_shortfall() {
    let rt = runtime();
    let capacity = 4usize;
    let telemetry = Telemetry::with_config(TelemetryConfig {
        bus_capacity: capacity,
        // Effectively disable the watchdog so StallDetected can't add
        // nondeterministic publishes.
        stall_timeout: Duration::from_secs(3600),
    });
    let subscriber = telemetry.subscribe();

    let package_rows = 64u64;
    let factory = MemorySinkFactory::new();
    GenerationRun::new(&rt, RunConfig::new().workers(2).package_rows(package_rows))
        .with_telemetry(telemetry.clone())
        .run(&CsvFormatter::new(), factory)
        .unwrap();
    telemetry.close();

    let mut received = 0u64;
    while subscriber.recv().is_some() {
        received += 1;
    }
    assert_eq!(received as usize, capacity, "bus held exactly its capacity");

    // RunStarted + per-job Started/Finished + one PackageCompleted per
    // package + RunFinished.
    let packages: u64 = rt
        .tables()
        .iter()
        .map(|t| t.size.div_ceil(package_rows))
        .sum();
    let expected = 1 + 2 * rt.tables().len() as u64 + packages + 1;
    assert_eq!(subscriber.published(), expected);
    assert_eq!(
        received + subscriber.dropped(),
        subscriber.published(),
        "drop counter reports exactly the shortfall"
    );
    assert_eq!(telemetry.dropped_events(), subscriber.dropped());
}

/// Sink whose first write blocks until released through a channel.
struct WedgedSink {
    release: Option<mpsc::Receiver<()>>,
    bytes: u64,
}

impl Sink for WedgedSink {
    fn write_chunk(&mut self, bytes: &[u8]) -> io::Result<()> {
        if let Some(rx) = self.release.take() {
            rx.recv().expect("release signal");
        }
        self.bytes += bytes.len() as u64;
        Ok(())
    }

    fn finish(&mut self) -> io::Result<u64> {
        Ok(self.bytes)
    }

    fn bytes_written(&self) -> u64 {
        self.bytes
    }
}

/// Wedge table `b`'s sink mid-run: the watchdog must raise
/// `StallDetected` naming `b` (not the healthy table), and after release
/// the run completes normally.
#[test]
fn watchdog_names_the_wedged_table() {
    let telemetry = Telemetry::with_config(TelemetryConfig {
        bus_capacity: 1024,
        stall_timeout: Duration::from_millis(50),
    });
    let subscriber = telemetry.subscribe();
    let (release_tx, release_rx) = mpsc::channel::<()>();

    let run_thread = {
        let telemetry = telemetry.clone();
        let rt = runtime();
        std::thread::spawn(move || {
            let mut release = Some(release_rx);
            let factory = move |table: &str| -> io::Result<Box<dyn Sink>> {
                if table == "b" {
                    Ok(Box::new(WedgedSink {
                        release: release.take(),
                        bytes: 0,
                    }))
                } else {
                    Ok(Box::new(NullSink::new()))
                }
            };
            GenerationRun::new(&rt, RunConfig::new().workers(2).package_rows(25))
                .with_telemetry(telemetry)
                .run(&CsvFormatter::new(), factory)
                .map(|r| r.total_rows())
        })
    };

    // Wait for the stall report, then release the sink.
    let stalled_table = loop {
        match subscriber.recv_timeout(Duration::from_secs(30)) {
            Some(event) => {
                if let RunEvent::StallDetected { table, stalled_ms } = &event.event {
                    assert!(*stalled_ms >= 50, "stall at least the timeout");
                    break table.clone();
                }
            }
            None => panic!("no StallDetected within 30s"),
        }
    };
    assert_eq!(stalled_table, "b", "watchdog blames the wedged table");
    release_tx.send(()).unwrap();

    let rows = run_thread.join().unwrap().unwrap();
    assert_eq!(rows, 550, "run completes after release");
    telemetry.close();

    // The stream still ends with a successful RunFinished.
    let mut finished = false;
    while let Some(event) = subscriber.try_recv() {
        if matches!(event.event, RunEvent::RunFinished { .. }) {
            finished = true;
        }
    }
    assert!(finished, "RunFinished published after the stall cleared");
}

/// Sink that fails after a small byte budget, so runs abort mid-stream.
struct FailingSink {
    wrote: u64,
    budget: u64,
}

impl Sink for FailingSink {
    fn write_chunk(&mut self, bytes: &[u8]) -> io::Result<()> {
        if self.wrote + bytes.len() as u64 > self.budget {
            return Err(io::Error::other("disk full"));
        }
        self.wrote += bytes.len() as u64;
        Ok(())
    }

    fn finish(&mut self) -> io::Result<u64> {
        Ok(self.wrote)
    }

    fn bytes_written(&self) -> u64 {
        self.wrote
    }
}

/// A run aborted by a sink error must still terminate its event stream:
/// the `SinkError` is followed by a terminal `RunFinished` carrying the
/// partial totals, so a `--metrics-out` JSONL of a failed run is a
/// complete, parseable record rather than a truncated one.
#[test]
fn failed_run_still_publishes_terminal_run_finished() {
    let rt = runtime();
    let telemetry = Telemetry::with_config(TelemetryConfig {
        bus_capacity: 1024,
        stall_timeout: Duration::from_secs(3600),
    });
    let subscriber = telemetry.subscribe();
    let factory = |table: &str| -> io::Result<Box<dyn Sink>> {
        if table == "b" {
            Ok(Box::new(FailingSink {
                wrote: 0,
                budget: 256,
            }))
        } else {
            Ok(Box::new(NullSink::new()))
        }
    };
    let err = GenerationRun::new(&rt, RunConfig::new().workers(2).package_rows(25))
        .with_telemetry(telemetry.clone())
        .run(&CsvFormatter::new(), factory)
        .unwrap_err();
    assert!(err.to_string().contains("disk full"), "{err}");
    telemetry.close();

    let mut kinds = Vec::new();
    while let Some(event) = subscriber.recv() {
        kinds.push(match event.event {
            RunEvent::SinkError { .. } => "sink_error",
            RunEvent::RunFinished { .. } => "run_finished",
            _ => "other",
        });
    }
    let sink_error = kinds.iter().position(|k| *k == "sink_error");
    assert!(sink_error.is_some(), "SinkError published: {kinds:?}");
    assert_eq!(
        kinds.last().copied(),
        Some("run_finished"),
        "terminal RunFinished closes the failed run's stream: {kinds:?}"
    );
    assert!(
        sink_error.unwrap() < kinds.len() - 1,
        "SinkError precedes the terminal event"
    );
}
