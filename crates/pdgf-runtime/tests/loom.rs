//! Loom model of the scheduler's full worker/output-stage handoff:
//! ticket queue → format into pooled buffer → bounded channel → reorder →
//! "sink" → recycle. Checks the three properties the pipeline's
//! correctness rests on: no lost package, no double-write, and in-order
//! output — plus clean shutdown when the output stage dies early. Build
//! with `RUSTFLAGS="--cfg loom" cargo test -p pdgf-runtime --test loom`
//! (see `scripts/concurrency.sh`).
#![cfg(loom)]

use loom::sync::Arc;
use pdgf_output::{BufferPool, ReorderBuffer};
use pdgf_runtime::handoff::{channel, TicketCounter};

/// The scheduler's run_pool dataflow in miniature: workers claim tickets,
/// stamp the ticket into a pooled buffer, and send it; the output stage
/// reorders, verifies, and recycles. Every ticket must come out exactly
/// once, in order, with intact payload bytes.
#[test]
fn handoff_delivers_every_package_once_in_order() {
    const WORKERS: u64 = 3;
    const PACKAGES: u64 = 9;
    loom::model(|| {
        let tickets = Arc::new(TicketCounter::new(PACKAGES));
        let pool = Arc::new(BufferPool::new(4));
        let (tx, rx) = channel::<(u64, Vec<u8>)>(4);

        let workers: Vec<_> = (0..WORKERS)
            .map(|_| {
                let tickets = tickets.clone();
                let pool = pool.clone();
                let tx = tx.clone();
                loom::thread::spawn(move || {
                    while let Some(seq) = tickets.claim() {
                        let mut buf = pool.take();
                        assert!(buf.is_empty(), "recycled buffer was not cleared");
                        buf.extend_from_slice(&seq.to_le_bytes());
                        if tx.send((seq, buf)).is_err() {
                            return; // output stage hung up
                        }
                    }
                })
            })
            .collect();
        drop(tx);

        // Output stage on this thread, exactly like the scheduler's.
        let mut reorder = ReorderBuffer::<(u64, Vec<u8>)>::new();
        let mut written = Vec::new();
        for (seq, buf) in rx {
            let mut ready = reorder.push(seq, (seq, buf));
            while let Some((ready_seq, ready_buf)) = ready {
                assert_eq!(
                    ready_buf,
                    ready_seq.to_le_bytes().to_vec(),
                    "payload corrupted in flight"
                );
                written.push(ready_seq);
                pool.put(ready_buf);
                ready = reorder.pop_ready();
            }
        }
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(
            written,
            (0..PACKAGES).collect::<Vec<_>>(),
            "packages lost, duplicated, or reordered"
        );
        assert!(reorder.is_drained());
        assert!(pool.idle() <= 4, "double-put grew the pool past its bound");
    });
}

/// When the output stage drops the receiver mid-run (sink error), every
/// worker must observe the hang-up and stop — no deadlock, no panic —
/// exactly how one table's failure stops the whole pool.
#[test]
fn receiver_drop_stops_all_workers() {
    loom::model(|| {
        let tickets = Arc::new(TicketCounter::new(6));
        let (tx, rx) = channel::<u64>(1);
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let tickets = tickets.clone();
                let tx = tx.clone();
                loom::thread::spawn(move || {
                    let mut sent = 0u64;
                    while let Some(seq) = tickets.claim() {
                        if tx.send(seq).is_err() {
                            return sent;
                        }
                        sent += 1;
                    }
                    sent
                })
            })
            .collect();
        drop(tx);

        // Accept one value, then fail like a full sink.
        let first = rx.recv();
        assert!(first.is_some());
        drop(rx);

        let delivered: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert!(
            delivered >= 1,
            "the received package was counted by its sender"
        );
    });
}

mod serve_models {
    //! Models of the serve layer added since the handoff models above:
    //! the [`RowService`] ticket-queue/`Condvar` delivery path and the
    //! `submit_clamped` cursor admission path. The service uses std
    //! primitives internally, which the loom facade delegates to, so the
    //! real service runs under the model harness unmodified.
    use std::sync::Arc;

    use pdgf_gen::{MapResolver, SchemaRuntime};
    use pdgf_output::{CsvFormatter, Formatter};
    use pdgf_runtime::serve::{RowRequest, RowService, ServeConfig};
    use pdgf_schema::{Expr, Field, GeneratorSpec, Schema, SqlType, Table};

    fn runtime(rows: u64) -> Arc<SchemaRuntime> {
        let schema = Schema::new("serve-loom", 77).table(
            Table::new("t", &format!("{rows}"))
                .field(
                    Field::new("id", SqlType::BigInt, GeneratorSpec::Id { permute: false })
                        .primary(),
                )
                .field(Field::new(
                    "v",
                    SqlType::Integer,
                    GeneratorSpec::Long {
                        min: Expr::parse("0").unwrap(),
                        max: Expr::parse("999999").unwrap(),
                    },
                )),
        );
        Arc::new(SchemaRuntime::build(&schema, &MapResolver::new()).unwrap())
    }

    fn formatter() -> Arc<dyn Formatter> {
        Arc::new(CsvFormatter::new())
    }

    /// Three clients race full-table requests through a two-worker
    /// service. The ticket queue hands packages to whichever worker is
    /// free, the reorder buffer re-sequences them, and the `ready`
    /// condvar hands them to the reader — every client must still see
    /// the identical in-order byte stream, every iteration.
    #[test]
    fn row_service_delivers_in_order_under_contention() {
        const ROWS: u64 = 96;
        let rt = runtime(ROWS);
        // Reference bytes from an uncontended single-client drain.
        let expected: Vec<u8> = {
            let service = RowService::new(
                Arc::clone(&rt),
                ServeConfig::new().workers(1).package_rows(8).window(2),
                None,
            );
            let mut stream = service
                .submit(RowRequest::range(0, 0, 0..ROWS), formatter())
                .unwrap();
            let mut out = Vec::new();
            while let Some(pkg) = stream.next_package() {
                out.extend_from_slice(&pkg);
            }
            out
        };
        let expected = Arc::new(expected);
        let rt2 = Arc::clone(&rt);
        loom::model(move || {
            let service = Arc::new(RowService::new(
                Arc::clone(&rt2),
                ServeConfig::new().workers(2).package_rows(8).window(3),
                None,
            ));
            let clients: Vec<_> = (0..3)
                .map(|_| {
                    let service = Arc::clone(&service);
                    let expected = Arc::clone(&expected);
                    loom::thread::spawn(move || {
                        let mut stream = service
                            .submit(RowRequest::range(0, 0, 0..ROWS), formatter())
                            .unwrap();
                        let mut out = Vec::new();
                        while let Some(pkg) = stream.next_package() {
                            out.extend_from_slice(&pkg);
                        }
                        assert_eq!(
                            out, *expected,
                            "contended stream diverged from the uncontended bytes"
                        );
                    })
                })
                .collect();
            for c in clients {
                c.join().unwrap();
            }
            let stats = service.stats();
            assert_eq!(stats.completed, 3, "every request must complete");
            assert_eq!(stats.aborted, 0);
        });
    }

    /// Two cursors tile the same table concurrently via
    /// `submit_clamped`: each admission serves exactly
    /// `max_request_rows` rows (except the final tile) and reports the
    /// resume row; the concatenated tiles must equal one unclamped
    /// response even while another cursor races the admission path.
    #[test]
    fn submit_clamped_cursors_tile_byte_identically() {
        const ROWS: u64 = 60;
        const CAP: u64 = 16;
        let rt = runtime(ROWS);
        let expected: Vec<u8> = {
            let service = RowService::new(
                Arc::clone(&rt),
                ServeConfig::new().workers(1).package_rows(8).window(2),
                None,
            );
            let mut stream = service
                .submit(RowRequest::range(0, 0, 0..ROWS), formatter())
                .unwrap();
            let mut out = Vec::new();
            while let Some(pkg) = stream.next_package() {
                out.extend_from_slice(&pkg);
            }
            out
        };
        let expected = Arc::new(expected);
        let rt2 = Arc::clone(&rt);
        loom::model(move || {
            let service = Arc::new(RowService::new(
                Arc::clone(&rt2),
                ServeConfig::new()
                    .workers(2)
                    .package_rows(8)
                    .window(2)
                    .max_request_rows(CAP),
                None,
            ));
            let cursors: Vec<_> = (0..2)
                .map(|_| {
                    let service = Arc::clone(&service);
                    let expected = Arc::clone(&expected);
                    loom::thread::spawn(move || {
                        let mut out = Vec::new();
                        let mut cursor = 0u64;
                        loop {
                            let admitted = service
                                .submit_clamped(RowRequest::range(0, 0, cursor..ROWS), formatter())
                                .unwrap();
                            let served_to = admitted.resume_at.unwrap_or(ROWS);
                            assert!(
                                served_to - cursor <= CAP,
                                "tile wider than the admission cap"
                            );
                            if served_to < ROWS {
                                assert_eq!(
                                    served_to - cursor,
                                    CAP,
                                    "non-final tile must serve exactly the cap"
                                );
                            }
                            let mut stream = admitted.stream;
                            while let Some(pkg) = stream.next_package() {
                                out.extend_from_slice(&pkg);
                            }
                            match admitted.resume_at {
                                Some(next) => cursor = next,
                                None => break,
                            }
                        }
                        assert_eq!(
                            out, *expected,
                            "clamped tiles did not concatenate to the unclamped bytes"
                        );
                    })
                })
                .collect();
            for c in cursors {
                c.join().unwrap();
            }
            assert_eq!(service.stats().aborted, 0);
        });
    }
}
