//! Loom model of the scheduler's full worker/output-stage handoff:
//! ticket queue → format into pooled buffer → bounded channel → reorder →
//! "sink" → recycle. Checks the three properties the pipeline's
//! correctness rests on: no lost package, no double-write, and in-order
//! output — plus clean shutdown when the output stage dies early. Build
//! with `RUSTFLAGS="--cfg loom" cargo test -p pdgf-runtime --test loom`
//! (see `scripts/concurrency.sh`).
#![cfg(loom)]

use loom::sync::Arc;
use pdgf_output::{BufferPool, ReorderBuffer};
use pdgf_runtime::handoff::{channel, TicketCounter};

/// The scheduler's run_pool dataflow in miniature: workers claim tickets,
/// stamp the ticket into a pooled buffer, and send it; the output stage
/// reorders, verifies, and recycles. Every ticket must come out exactly
/// once, in order, with intact payload bytes.
#[test]
fn handoff_delivers_every_package_once_in_order() {
    const WORKERS: u64 = 3;
    const PACKAGES: u64 = 9;
    loom::model(|| {
        let tickets = Arc::new(TicketCounter::new(PACKAGES));
        let pool = Arc::new(BufferPool::new(4));
        let (tx, rx) = channel::<(u64, Vec<u8>)>(4);

        let workers: Vec<_> = (0..WORKERS)
            .map(|_| {
                let tickets = tickets.clone();
                let pool = pool.clone();
                let tx = tx.clone();
                loom::thread::spawn(move || {
                    while let Some(seq) = tickets.claim() {
                        let mut buf = pool.take();
                        assert!(buf.is_empty(), "recycled buffer was not cleared");
                        buf.extend_from_slice(&seq.to_le_bytes());
                        if tx.send((seq, buf)).is_err() {
                            return; // output stage hung up
                        }
                    }
                })
            })
            .collect();
        drop(tx);

        // Output stage on this thread, exactly like the scheduler's.
        let mut reorder = ReorderBuffer::<(u64, Vec<u8>)>::new();
        let mut written = Vec::new();
        for (seq, buf) in rx {
            let mut ready = reorder.push(seq, (seq, buf));
            while let Some((ready_seq, ready_buf)) = ready {
                assert_eq!(
                    ready_buf,
                    ready_seq.to_le_bytes().to_vec(),
                    "payload corrupted in flight"
                );
                written.push(ready_seq);
                pool.put(ready_buf);
                ready = reorder.pop_ready();
            }
        }
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(
            written,
            (0..PACKAGES).collect::<Vec<_>>(),
            "packages lost, duplicated, or reordered"
        );
        assert!(reorder.is_drained());
        assert!(pool.idle() <= 4, "double-put grew the pool past its bound");
    });
}

/// When the output stage drops the receiver mid-run (sink error), every
/// worker must observe the hang-up and stop — no deadlock, no panic —
/// exactly how one table's failure stops the whole pool.
#[test]
fn receiver_drop_stops_all_workers() {
    loom::model(|| {
        let tickets = Arc::new(TicketCounter::new(6));
        let (tx, rx) = channel::<u64>(1);
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let tickets = tickets.clone();
                let tx = tx.clone();
                loom::thread::spawn(move || {
                    let mut sent = 0u64;
                    while let Some(seq) = tickets.claim() {
                        if tx.send(seq).is_err() {
                            return sent;
                        }
                        sent += 1;
                    }
                    sent
                })
            })
            .collect();
        drop(tx);

        // Accept one value, then fail like a full sink.
        let first = rx.recv();
        assert!(first.is_some());
        drop(rx);

        let delivered: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert!(
            delivered >= 1,
            "the received package was counted by its sender"
        );
    });
}
