//! Steady-state allocation test for the formatting hot path.
//!
//! A counting global allocator measures how many heap allocations a
//! generation run performs. The CSV path over non-text columns must not
//! allocate per row or per package in the steady state: generating 5×
//! the rows (and 5× the packages) may only add a small constant number
//! of allocations (buffer growth doublings, thread spawns), never a
//! count proportional to the row or package count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use pdgf_gen::{MapResolver, SchemaRuntime};
use pdgf_output::{CsvFormatter, NullSink};
use pdgf_runtime::{generate_table_range, RunConfig};
use pdgf_schema::model::DateFormat;
use pdgf_schema::{Date, Expr, Field, GeneratorSpec, Schema, SqlType, Table};

struct CountingAllocator;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::SeqCst);
    f();
    ALLOCS.load(Ordering::SeqCst) - before
}

/// Every non-text value kind on one table: none of them may allocate.
fn runtime(rows: u64) -> SchemaRuntime {
    let schema = Schema::new("zeroalloc", 77).table(
        Table::new("t", &format!("{rows}"))
            .field(
                Field::new("id", SqlType::BigInt, GeneratorSpec::Id { permute: false }).primary(),
            )
            .field(Field::new(
                "qty",
                SqlType::Integer,
                GeneratorSpec::Long {
                    min: Expr::parse("1").unwrap(),
                    max: Expr::parse("50").unwrap(),
                },
            ))
            .field(Field::new(
                "ratio",
                SqlType::Double,
                GeneratorSpec::Double {
                    min: Expr::parse("0").unwrap(),
                    max: Expr::parse("1000").unwrap(),
                    decimals: Some(2),
                },
            ))
            .field(Field::new(
                "price",
                SqlType::Decimal(12, 2),
                GeneratorSpec::Decimal {
                    min: Expr::parse("100").unwrap(),
                    max: Expr::parse("999999").unwrap(),
                    scale: 2,
                },
            ))
            .field(Field::new(
                "shipped",
                SqlType::Date,
                GeneratorSpec::DateRange {
                    min: Date::from_ymd(1992, 1, 1),
                    max: Date::from_ymd(1998, 12, 31),
                    format: DateFormat::Iso,
                },
            ))
            .field(Field::new(
                "flag",
                SqlType::Boolean,
                GeneratorSpec::RandomBool { true_prob: 0.5 },
            )),
    );
    SchemaRuntime::build(&schema, &MapResolver::new()).unwrap()
}

fn generate(rt: &SchemaRuntime, workers: usize, package_rows: u64) -> u64 {
    let mut sink = NullSink::new();
    let stats = generate_table_range(
        rt,
        0,
        0,
        0..rt.tables()[0].size,
        &CsvFormatter::new(),
        &mut sink,
        &RunConfig::new().workers(workers).package_rows(package_rows),
        None,
    )
    .unwrap();
    stats.rows
}

#[test]
fn csv_inline_path_does_not_allocate_per_row() {
    let small = runtime(8_000);
    let large = runtime(40_000);
    // Warm-up pass absorbs one-time lazy initialization (TLS, stdio).
    generate(&small, 0, 10_000);

    let base = allocations_during(|| assert_eq!(generate(&small, 0, 10_000), 8_000));
    let grown = allocations_during(|| assert_eq!(generate(&large, 0, 10_000), 40_000));

    // 32,000 extra rows and 4 extra packages may only cost a handful of
    // extra allocations (output-buffer growth doublings). The pre-change
    // code allocated a scratch `String` per row, i.e. tens of thousands.
    let delta = grown.saturating_sub(base);
    assert!(
        delta < 64,
        "inline CSV path allocates per row/package: {base} allocs for 8k rows, \
         {grown} for 40k (delta {delta})"
    );
}

#[test]
fn csv_parallel_path_does_not_allocate_per_package() {
    let small = runtime(8_000);
    let large = runtime(40_000);
    generate(&small, 2, 500);

    let base = allocations_during(|| assert_eq!(generate(&small, 2, 500), 8_000));
    let grown = allocations_during(|| assert_eq!(generate(&large, 2, 500), 40_000));

    // 64 extra packages flow through the pool/channel/reorder pipeline;
    // with buffer recycling they must not cost an allocation each. The
    // bound leaves room for thread spawning and ring growth, which both
    // runs pay equally, plus a few one-time doublings.
    let delta = grown.saturating_sub(base);
    assert!(
        delta < 128,
        "parallel CSV path allocates per package: {base} allocs for 16 packages, \
         {grown} for 80 (delta {delta})"
    );
}
