//! Branch-light byte-oriented formatting kernels for the row hot path.
//!
//! Every function appends to a `Vec<u8>` and produces **exactly** the
//! bytes `std::fmt` would — that is the whole contract. The scheduler's
//! byte-identity tests compare parallel output against an inline
//! reference render, and the fuzz tests in this module compare each
//! kernel against the `format!` rendering it replaces, so the kernels
//! can never drift from the std formatting they shadow.
//!
//! Why not `write!(out, ...)`? Every `write!` on the row path funnels
//! through `core::fmt` — a `dyn`-dispatched state machine with padding
//! and alignment logic that the output path never uses. Replacing it
//! with direct digit emission (two-digit lookup table, fixed-point
//! decimal splits, Hinnant civil-calendar dates) removes the dominant
//! per-cell cost of CSV rendering.
//!
//! Floating point uses a three-tier strategy:
//! 1. exact integers below 2^53 print their integer digits directly,
//! 2. values with at most nine fractional digits (the common case for
//!    rounded `Double` generators) print via a verified scaled-integer
//!    round trip,
//! 3. everything else falls back to an exact Dragon4 / Burger–Dybvig
//!    shortest-round-trip conversion over a fixed-size bignum.
//!
//! Tier 3 is slower than tiers 1–2 but allocation-free and byte-exact;
//! full-precision uniform doubles land there.

use pdgf_schema::{Date, Value, ValueRef};

/// `b"00"`..`b"99"` as one flat table: two output digits per lookup.
const DIGIT_PAIRS: &[u8; 200] = b"0001020304050607080910111213141516171819\
                                  2021222324252627282930313233343536373839\
                                  4041424344454647484950515253545556575859\
                                  6061626364656667686970717273747576777879\
                                  8081828384858687888990919293949596979899";

/// Powers of ten that fit in a `u64` (10^0 ..= 10^19).
const POW10_U64: [u64; 20] = {
    let mut t = [1u64; 20];
    let mut i = 1;
    while i < 20 {
        t[i] = t[i - 1] * 10;
        i += 1;
    }
    t
};

/// Append the decimal digits of `v`.
#[inline]
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    let mut buf = [0u8; 20];
    let mut pos = buf.len();
    while v >= 100 {
        let pair = ((v % 100) as usize) * 2;
        v /= 100;
        pos -= 2;
        buf[pos] = DIGIT_PAIRS[pair];
        buf[pos + 1] = DIGIT_PAIRS[pair + 1];
    }
    if v >= 10 {
        let pair = (v as usize) * 2;
        pos -= 2;
        buf[pos] = DIGIT_PAIRS[pair];
        buf[pos + 1] = DIGIT_PAIRS[pair + 1];
    } else {
        pos -= 1;
        buf[pos] = b'0' + v as u8;
    }
    out.extend_from_slice(&buf[pos..]);
}

/// Append the decimal rendering of `v` (sign included), matching
/// `write!("{v}")`.
#[inline]
pub fn write_i64(out: &mut Vec<u8>, v: i64) {
    if v < 0 {
        out.push(b'-');
    }
    write_u64(out, v.unsigned_abs());
}

/// Append `v` zero-padded on the left to at least `width` digits,
/// matching `write!("{v:0width$}")` for non-negative values.
#[inline]
pub fn write_u64_padded(out: &mut Vec<u8>, v: u64, width: usize) {
    let digits = dec_len(v);
    for _ in digits..width {
        out.push(b'0');
    }
    write_u64(out, v);
}

/// Number of decimal digits in `v` (1 for 0).
#[inline]
fn dec_len(v: u64) -> usize {
    // 20-entry linear scan beats ilog10 on the short values dates and
    // decimals produce; the table is tiny and the loop exits early.
    let mut n = 1;
    while n < 20 && v >= POW10_U64[n] {
        n += 1;
    }
    n
}

/// Append `"true"` / `"false"`, matching `write!("{b}")`.
#[inline]
pub fn write_bool(out: &mut Vec<u8>, b: bool) {
    out.extend_from_slice(if b { b"true" } else { b"false" });
}

/// Append two digits `00`..`99` as one digit-pair lookup.
#[inline]
fn push_2digits(out: &mut Vec<u8>, v: u64) {
    debug_assert!(v < 100);
    let pair = (v as usize) * 2;
    out.extend_from_slice(&DIGIT_PAIRS[pair..pair + 2]);
}

/// Append a fixed-point decimal, matching [`Value::Decimal`]'s `Display`:
/// `unscaled / 10^scale` with exactly `scale` fractional digits.
#[inline]
pub fn write_decimal(out: &mut Vec<u8>, unscaled: i64, scale: u8) {
    if scale == 0 {
        write_i64(out, unscaled);
        return;
    }
    if unscaled < 0 {
        out.push(b'-');
    }
    let mag = unscaled.unsigned_abs();
    // Scale 2 (money columns) skips the padded-write machinery: the
    // fraction is exactly one digit-pair lookup.
    if scale == 2 {
        write_u64(out, mag / 100);
        out.push(b'.');
        push_2digits(out, mag % 100);
        return;
    }
    let pow = 10i64.pow(u32::from(scale)).unsigned_abs();
    write_u64(out, mag / pow);
    out.push(b'.');
    write_u64_padded(out, mag % pow, usize::from(scale));
}

/// Append `YYYY-MM-DD`, matching [`Date`]'s `Display` (`{y:04}-{m:02}-{d:02}`,
/// where negative years keep std's sign-inside-the-padding rendering).
#[inline]
pub fn write_date(out: &mut Vec<u8>, date: Date) {
    let (y, m, d) = date.to_ymd();
    // Fast path: a four-digit year renders the whole `YYYY-MM-DD` as one
    // 10-byte store — two digit-pair lookups for the year, one each for
    // month and day — instead of three padded-write calls.
    if (1000..=9999).contains(&y) {
        let (yh, yl) = (((y / 100) as usize) * 2, ((y % 100) as usize) * 2);
        let (mp, dp) = ((m as usize) * 2, (d as usize) * 2);
        out.extend_from_slice(&[
            DIGIT_PAIRS[yh],
            DIGIT_PAIRS[yh + 1],
            DIGIT_PAIRS[yl],
            DIGIT_PAIRS[yl + 1],
            b'-',
            DIGIT_PAIRS[mp],
            DIGIT_PAIRS[mp + 1],
            b'-',
            DIGIT_PAIRS[dp],
            DIGIT_PAIRS[dp + 1],
        ]);
        return;
    }
    if y < 0 {
        // `{:04}` counts the sign toward the width: -5 → "-005".
        out.push(b'-');
        write_u64_padded(out, y.unsigned_abs().into(), 3);
    } else {
        write_u64_padded(out, y as u64, 4);
    }
    out.push(b'-');
    write_u64_padded(out, u64::from(m), 2);
    out.push(b'-');
    write_u64_padded(out, u64::from(d), 2);
}

/// Append `YYYY-MM-DD HH:MM:SS`, matching [`Value::Timestamp`]'s `Display`
/// (seconds since the epoch, Euclidean split so pre-1970 instants work).
#[inline]
pub fn write_timestamp(out: &mut Vec<u8>, t: i64) {
    let days = t.div_euclid(86_400);
    let secs = t.rem_euclid(86_400);
    // Saturate instead of panicking on day counts beyond the i32 calendar:
    // the schema analyzer rejects such TimestampRange bounds (E028), so
    // this clamp is unreachable through validated models.
    write_date(
        out,
        Date(days.clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32),
    );
    out.push(b' ');
    push_2digits(out, (secs / 3600) as u64);
    out.push(b':');
    push_2digits(out, ((secs % 3600) / 60) as u64);
    out.push(b':');
    push_2digits(out, (secs % 60) as u64);
}

/// Append `v` exactly as `write!("{v}")` renders a raw `f64` — the
/// shortest decimal that round-trips, in std's always-positional form
/// (`NaN`, `inf`, `-inf`, `-0` included).
pub fn write_f64_shortest(out: &mut Vec<u8>, v: f64) {
    if v.is_nan() {
        // std prints NaN unsigned regardless of the sign bit.
        out.extend_from_slice(b"NaN");
        return;
    }
    if v.is_sign_negative() {
        out.push(b'-');
    }
    let v = v.abs();
    if v == 0.0 {
        out.push(b'0');
        return;
    }
    if v.is_infinite() {
        out.extend_from_slice(b"inf");
        return;
    }
    // Tier 1: exact integers below 2^53. The rounding interval around an
    // integral double this small is narrower than ±0.5, so it contains
    // exactly one integer and the shortest decimal is its digit string.
    if v < 9_007_199_254_740_992.0 && v.fract() == 0.0 {
        write_u64(out, v as u64);
        return;
    }
    // Tier 2: at most nine fractional digits, verified by round trip.
    // The magnitude guard keeps the candidate unique (decimal grid step
    // 10^-9 exceeds the rounding interval for |v| < 2^20) and the f64
    // product exact enough that `.round()` lands on that candidate.
    if v < 1_048_576.0 {
        for (p, &pow10) in POW10_U64.iter().enumerate().take(10).skip(1) {
            let pow = pow10 as f64;
            let n = (v * pow).round();
            if n / pow == v {
                let n = n as u64;
                write_u64(out, n / pow10);
                out.push(b'.');
                write_u64_padded(out, n % pow10, p);
                return;
            }
        }
    }
    // Tier 3: exact shortest-round-trip conversion.
    let mut digits = [0u8; 20];
    let (len, k) = dragon::shortest(v, &mut digits);
    render_positional(out, &digits[..len], k);
}

/// Append `v` exactly as [`Value::Double`]'s `Display` renders it:
/// integral magnitudes below 1e15 keep a trailing `.0` (`{v:.1}`),
/// everything else uses the shortest round-trip form.
pub fn write_f64_display(out: &mut Vec<u8>, v: f64) {
    // NaN/inf fail the fract()==0.0 test (NaN comparisons are false), so
    // they take the shortest-form branch exactly as Value's Display does.
    if v.fract() == 0.0 && v.abs() < 1e15 {
        // |v| < 1e15 < 2^53: the integer is exact in both f64 and i64.
        if v == 0.0 {
            out.extend_from_slice(if v.is_sign_negative() {
                b"-0.0"
            } else {
                b"0.0"
            });
        } else {
            write_i64(out, v as i64);
            out.extend_from_slice(b".0");
        }
    } else {
        write_f64_shortest(out, v);
    }
}

/// Render shortest digits `d[0..n]` with value `0.d₁d₂…dₙ × 10^k` the way
/// std's float `Display` does: always positional, never scientific.
fn render_positional(out: &mut Vec<u8>, digits: &[u8], k: i32) {
    let n = digits.len() as i32;
    if k <= 0 {
        out.extend_from_slice(b"0.");
        for _ in k..0 {
            out.push(b'0');
        }
        out.extend_from_slice(digits);
    } else if k >= n {
        out.extend_from_slice(digits);
        for _ in n..k {
            out.push(b'0');
        }
    } else {
        out.extend_from_slice(&digits[..k as usize]);
        out.push(b'.');
        out.extend_from_slice(&digits[k as usize..]);
    }
}

/// Append the exact `Display` rendering of any [`Value`].
#[inline]
pub fn write_value(out: &mut Vec<u8>, v: &Value) {
    write_value_ref(out, ValueRef::from(v));
}

/// Append the exact `Display` rendering of a borrowed [`ValueRef`] — the
/// shared per-cell kernel of the row and columnar formatting paths.
#[inline]
pub fn write_value_ref(out: &mut Vec<u8>, v: ValueRef<'_>) {
    match v {
        ValueRef::Null => {}
        ValueRef::Bool(b) => write_bool(out, b),
        ValueRef::Long(n) => write_i64(out, n),
        ValueRef::Double(x) => write_f64_display(out, x),
        ValueRef::Decimal { unscaled, scale } => write_decimal(out, unscaled, scale),
        ValueRef::Date(d) => write_date(out, d),
        ValueRef::Timestamp(t) => write_timestamp(out, t),
        ValueRef::Text(s) => out.extend_from_slice(s.as_bytes()),
    }
}

/// Exact shortest-round-trip decimal conversion (Burger–Dybvig "free
/// format" / Dragon4) over a fixed-size 1280-bit integer, allocation-free.
mod dragon {
    /// 20 × 64-bit little-endian limbs: enough for `f · 2^1026 · 10^17`
    /// at the large end and `f · 2 · 10^323 · 10` at the subnormal end.
    #[derive(Clone, Copy)]
    struct Big {
        limbs: [u64; 20],
        /// Number of limbs in use (limbs[len..] are zero).
        len: usize,
    }

    impl Big {
        fn from_u64(v: u64) -> Self {
            let mut limbs = [0u64; 20];
            limbs[0] = v;
            Big {
                limbs,
                len: usize::from(v != 0),
            }
        }

        fn is_zero(&self) -> bool {
            self.len == 0
        }

        fn mul_small(&mut self, m: u64) {
            let mut carry = 0u128;
            for limb in self.limbs[..self.len].iter_mut() {
                let prod = u128::from(*limb) * u128::from(m) + carry;
                *limb = prod as u64;
                carry = prod >> 64;
            }
            while carry != 0 {
                assert!(self.len < 20, "bignum overflow");
                self.limbs[self.len] = carry as u64;
                self.len += 1;
                carry >>= 64;
            }
            if m == 0 {
                self.len = 0;
            }
            self.trim();
        }

        fn shl(&mut self, bits: u32) {
            let words = (bits / 64) as usize;
            let rem = bits % 64;
            if self.is_zero() {
                return;
            }
            let new_len = self.len + words + usize::from(rem != 0);
            assert!(new_len <= 20, "bignum overflow");
            if rem == 0 {
                for i in (0..self.len).rev() {
                    self.limbs[i + words] = self.limbs[i];
                }
            } else {
                self.limbs[self.len + words] = self.limbs[self.len - 1] >> (64 - rem);
                for i in (1..self.len).rev() {
                    self.limbs[i + words] =
                        (self.limbs[i] << rem) | (self.limbs[i - 1] >> (64 - rem));
                }
                self.limbs[words] = self.limbs[0] << rem;
            }
            for limb in &mut self.limbs[..words] {
                *limb = 0;
            }
            self.len = new_len;
            self.trim();
        }

        /// Multiply by 10^p in u64-sized chunks (10^19 fits a limb).
        fn mul_pow10(&mut self, mut p: u32) {
            while p >= 19 {
                self.mul_small(super::POW10_U64[19]);
                p -= 19;
            }
            if p > 0 {
                self.mul_small(super::POW10_U64[p as usize]);
            }
        }

        fn trim(&mut self) {
            while self.len > 0 && self.limbs[self.len - 1] == 0 {
                self.len -= 1;
            }
        }

        fn cmp(&self, other: &Big) -> std::cmp::Ordering {
            self.len.cmp(&other.len).then_with(|| {
                for i in (0..self.len).rev() {
                    let ord = self.limbs[i].cmp(&other.limbs[i]);
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            })
        }

        /// `self -= other`; requires `self >= other`.
        fn sub(&mut self, other: &Big) {
            let mut borrow = false;
            for i in 0..self.len {
                let rhs = if i < other.len { other.limbs[i] } else { 0 };
                let (d, b1) = self.limbs[i].overflowing_sub(rhs);
                let (d, b2) = d.overflowing_sub(u64::from(borrow));
                self.limbs[i] = d;
                borrow = b1 || b2;
            }
            debug_assert!(!borrow, "bignum sub underflow");
            self.trim();
        }

        /// `self + other` (by value — both fit comfortably in 20 limbs).
        fn add(&self, other: &Big) -> Big {
            let mut out = *self;
            let mut carry = false;
            let n = out.len.max(other.len);
            for i in 0..n {
                let rhs = if i < other.len { other.limbs[i] } else { 0 };
                let (s, c1) = out.limbs[i].overflowing_add(rhs);
                let (s, c2) = s.overflowing_add(u64::from(carry));
                out.limbs[i] = s;
                carry = c1 || c2;
            }
            out.len = n;
            if carry {
                assert!(n < 20, "bignum overflow");
                out.limbs[n] = 1;
                out.len = n + 1;
            }
            out
        }
    }

    /// Shortest round-trip digits for finite positive `v`: fills `digits`
    /// with ASCII digits and returns `(len, k)` where the value is
    /// `0.d₁…dₙ × 10^k`. Matches std's `Display` digit selection: the
    /// fewest digits that parse back to `v`, ties on the last digit
    /// broken toward the nearer candidate (half-way rounds up).
    pub(super) fn shortest(v: f64, digits: &mut [u8; 20]) -> (usize, i32) {
        debug_assert!(v.is_finite() && v > 0.0);
        let bits = v.to_bits();
        let exp_field = ((bits >> 52) & 0x7FF) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        // (f, e) with v = f · 2^e; subnormals have no hidden bit.
        let (f, e) = if exp_field == 0 {
            (frac, -1074i64)
        } else {
            (frac | (1u64 << 52), exp_field - 1075)
        };
        // Round-trip interval boundaries are inclusive iff the mantissa
        // is even (IEEE round-half-even admits the boundary itself).
        let inclusive = f & 1 == 0;
        // The gap to the next-lower float halves when f is a power of
        // two (except at the bottom exponent): boundary_minus = gap/4.
        let narrow_below = frac == 0 && exp_field > 1;

        // Scale everything to integers: v = r/s, half-gaps m±/s.
        let (mut r, mut s, mut m_plus, mut m_minus);
        if e >= 0 {
            let be_shift = e as u32;
            if !narrow_below {
                r = Big::from_u64(f);
                r.shl(be_shift + 1);
                s = Big::from_u64(2);
                m_plus = Big::from_u64(1);
                m_plus.shl(be_shift);
                m_minus = m_plus;
            } else {
                r = Big::from_u64(f);
                r.shl(be_shift + 2);
                s = Big::from_u64(4);
                m_plus = Big::from_u64(1);
                m_plus.shl(be_shift + 1);
                m_minus = Big::from_u64(1);
                m_minus.shl(be_shift);
            }
        } else if !narrow_below {
            r = Big::from_u64(f);
            r.shl(1);
            s = Big::from_u64(1);
            s.shl((1 - e) as u32);
            m_plus = Big::from_u64(1);
            m_minus = Big::from_u64(1);
        } else {
            r = Big::from_u64(f);
            r.shl(2);
            s = Big::from_u64(1);
            s.shl((2 - e) as u32);
            m_plus = Big::from_u64(2);
            m_minus = Big::from_u64(1);
        }

        // `in_hi(a, s)`: does a/s reach past the upper scaling bound?
        let past = |a: &Big, s: &Big| {
            let ord = a.cmp(s);
            ord == std::cmp::Ordering::Greater || (inclusive && ord == std::cmp::Ordering::Equal)
        };

        // Estimate k = ceil(log10(v)) and fix up exactly: find the k with
        // 10^(k-1) <= v+ < 10^k (bounds per `inclusive`), scaling s or
        // r/m± so the first generated digit is the leading digit.
        let mut k = (v.log10().floor() as i32) + 1;
        if k > 0 {
            s.mul_pow10(k as u32);
        } else if k < 0 {
            let p = (-k) as u32;
            r.mul_pow10(p);
            m_plus.mul_pow10(p);
            m_minus.mul_pow10(p);
        }
        loop {
            if past(&r.add(&m_plus), &s) {
                s.mul_small(10);
                k += 1;
                continue;
            }
            let mut hi10 = r.add(&m_plus);
            hi10.mul_small(10);
            if !past(&hi10, &s) {
                r.mul_small(10);
                m_plus.mul_small(10);
                m_minus.mul_small(10);
                k -= 1;
                continue;
            }
            break;
        }

        // Digit generation: emit while neither boundary is crossed.
        let mut len = 0usize;
        loop {
            r.mul_small(10);
            m_plus.mul_small(10);
            m_minus.mul_small(10);
            let mut d = 0u8;
            while r.cmp(&s) != std::cmp::Ordering::Less {
                r.sub(&s);
                d += 1;
            }
            debug_assert!(d <= 9, "digit overflow");
            let low = {
                let ord = r.cmp(&m_minus);
                ord == std::cmp::Ordering::Less || (inclusive && ord == std::cmp::Ordering::Equal)
            };
            let high = past(&r.add(&m_plus), &s);
            if !low && !high {
                digits[len] = b'0' + d;
                len += 1;
                continue;
            }
            let rounded_up = if low && !high {
                false
            } else if high && !low {
                true
            } else {
                // Both candidates round-trip: take the nearer one
                // (remainder vs half a digit unit; halfway rounds up).
                let mut twice = r;
                twice.mul_small(2);
                twice.cmp(&s) != std::cmp::Ordering::Less
            };
            digits[len] = b'0' + d + u8::from(rounded_up);
            len += 1;
            // Rounding 9 up would need a carry into earlier digits; it
            // cannot happen: if d == 9 the emitted window sits at the
            // top of the decade, and the scaling invariant keeps v+
            // under the next power of ten, so `high` selects d+1 only
            // for d <= 8.
            debug_assert!(digits[len - 1] <= b'9', "digit carry");
            return (len, k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgf_schema::Value;
    use proptest::proptest;

    fn s(f: impl FnOnce(&mut Vec<u8>)) -> String {
        let mut out = Vec::new();
        f(&mut out);
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn u64_matches_std_on_boundaries() {
        for v in [
            0u64,
            1,
            9,
            10,
            99,
            100,
            101,
            999,
            1000,
            12_345,
            99_999,
            100_000,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            assert_eq!(s(|o| write_u64(o, v)), format!("{v}"));
        }
    }

    #[test]
    fn i64_matches_std_on_boundaries() {
        for v in [
            0i64,
            1,
            -1,
            42,
            -42,
            1_000_000,
            -1_000_000,
            i64::MAX,
            i64::MIN,
        ] {
            assert_eq!(s(|o| write_i64(o, v)), format!("{v}"));
        }
    }

    #[test]
    fn padded_matches_std() {
        for (v, w) in [(0u64, 2), (5, 2), (5, 1), (123, 2), (123, 6), (0, 0)] {
            assert_eq!(s(|o| write_u64_padded(o, v, w)), format!("{v:0w$}"));
        }
    }

    #[test]
    fn decimal_matches_value_display() {
        for (unscaled, scale) in [
            (12345i64, 2u8),
            (-12345, 2),
            (5, 2),
            (500, 0),
            (0, 4),
            (-1, 6),
            (i64::MAX, 4),
            (i64::MIN, 4),
            (i64::MIN, 0),
            (99, 2),
            (-99, 2),
            (100, 2),
        ] {
            let v = Value::Decimal { unscaled, scale };
            assert_eq!(s(|o| write_decimal(o, unscaled, scale)), format!("{v}"));
        }
    }

    #[test]
    fn date_matches_value_display_incl_extreme_years() {
        for days in [
            0i32,
            1,
            -1,
            365,
            -365,
            16_238,
            i32::MAX,
            i32::MIN,
            -719_468, // 0000-03-01
            -719_529, // 1-BCE territory: negative year rendering
        ] {
            let v = Value::Date(Date(days));
            assert_eq!(
                s(|o| write_date(o, Date(days))),
                format!("{v}"),
                "days {days}"
            );
        }
    }

    #[test]
    fn timestamp_matches_value_display() {
        for t in [
            0i64,
            1,
            -1,
            86_400 + 3_723,
            -86_400,
            1_700_000_000,
            -62_167_219_200, // year 0
            i64::from(i32::MAX) * 86_400 + 86_399,
            i64::from(i32::MIN) * 86_400,
        ] {
            let v = Value::Timestamp(t);
            assert_eq!(s(|o| write_timestamp(o, t)), format!("{v}"), "t {t}");
        }
    }

    #[test]
    fn f64_shortest_matches_std_on_special_and_boundary_values() {
        for v in [
            0.0,
            -0.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            1.0,
            -1.0,
            3.0,
            3.25,
            2.5,
            0.1,
            0.2,
            0.3,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            -f64::MAX,
            5e-324,                  // smallest subnormal
            2.2e-308,                // near the subnormal boundary
            9_007_199_254_740_992.0, // 2^53
            9_007_199_254_740_994.0, // 2^53 + 2
            1e15,
            1e16,
            1e22,
            1e-22,
            123_456.789_012_345,
            0.000_123_456,
            1e300,
            1e-300,
            std::f64::consts::PI,
            std::f64::consts::E,
        ] {
            assert_eq!(s(|o| write_f64_shortest(o, v)), format!("{v}"), "v = {v:e}");
        }
    }

    #[test]
    fn f64_display_matches_value_display() {
        for v in [
            3.0,
            3.25,
            -0.0,
            0.0,
            -2.0,
            1e14,
            -1e14,
            1e15,
            1e16,
            0.5,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            1.0 / 3.0,
            -123.75,
        ] {
            let val = Value::Double(v);
            assert_eq!(
                s(|o| write_f64_display(o, v)),
                format!("{val}"),
                "v = {v:e}"
            );
        }
    }

    #[test]
    fn f64_shortest_matches_std_across_exponent_sweep() {
        // One value per binary exponent, plus neighbors: exercises the
        // dragon fallback's scaling estimate over the whole range.
        for exp in -1074i32..=1023 {
            let v = f64::from_bits(((exp + 1074).max(1) as u64) << 52 | 0x000F_F0F0_1234_5678);
            if !v.is_finite() || v == 0.0 {
                continue;
            }
            assert_eq!(s(|o| write_f64_shortest(o, v)), format!("{v}"), "v = {v:e}");
        }
    }

    #[test]
    fn value_writer_matches_display_for_every_variant() {
        let values = [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Long(-7),
            Value::Double(2.5),
            Value::Decimal {
                unscaled: -12345,
                scale: 2,
            },
            Value::Date(Date(16_238)),
            Value::Timestamp(86_400 + 3_723),
            Value::text("héllo → world"),
        ];
        for v in &values {
            assert_eq!(s(|o| write_value(o, v)), format!("{v}"), "{v:?}");
        }
    }

    proptest! {
        #[test]
        fn prop_u64_matches_std(v in proptest::any::<u64>()) {
            proptest::prop_assert_eq!(s(|o| write_u64(o, v)), format!("{v}"));
        }

        #[test]
        fn prop_i64_matches_std(v in proptest::any::<i64>()) {
            proptest::prop_assert_eq!(s(|o| write_i64(o, v)), format!("{v}"));
        }

        #[test]
        fn prop_decimal_matches_value_display(
            unscaled in proptest::any::<i64>(),
            scale in 0u8..18,
        ) {
            let v = Value::Decimal { unscaled, scale };
            proptest::prop_assert_eq!(
                s(|o| write_decimal(o, unscaled, scale)),
                format!("{v}")
            );
        }

        #[test]
        fn prop_date_matches_value_display(days in proptest::any::<i32>()) {
            let v = Value::Date(Date(days));
            proptest::prop_assert_eq!(s(|o| write_date(o, Date(days))), format!("{v}"));
        }

        #[test]
        fn prop_timestamp_matches_value_display(
            days in -5_000_000i64..5_000_000,
            secs in 0i64..86_400,
        ) {
            let t = days * 86_400 + secs;
            let v = Value::Timestamp(t);
            proptest::prop_assert_eq!(s(|o| write_timestamp(o, t)), format!("{v}"));
        }

        #[test]
        fn prop_f64_uniform_matches_std(x in -1.0e6f64..1.0e6) {
            proptest::prop_assert_eq!(s(|o| write_f64_shortest(o, x)), format!("{x}"));
            let val = Value::Double(x);
            proptest::prop_assert_eq!(s(|o| write_f64_display(o, x)), format!("{val}"));
        }

        #[test]
        fn prop_f64_rounded_matches_std(x in -1.0e5f64..1.0e5, p in 0u32..6) {
            // The shape Double generators with `decimals` produce.
            let pow = 10f64.powi(p as i32);
            let x = (x * pow).round() / pow;
            proptest::prop_assert_eq!(s(|o| write_f64_shortest(o, x)), format!("{x}"));
        }

        #[test]
        fn prop_f64_bit_pattern_matches_std(bits in proptest::any::<u64>()) {
            // Any bit pattern: NaNs, infinities, subnormals, the lot.
            let x = f64::from_bits(bits);
            proptest::prop_assert_eq!(s(|o| write_f64_shortest(o, x)), format!("{x}"));
            let val = Value::Double(x);
            proptest::prop_assert_eq!(s(|o| write_f64_display(o, x)), format!("{val}"));
        }
    }

    /// Exhaustive sweep over many random bit patterns — slower than the
    /// proptest cases, still well under a second in release.
    #[test]
    fn f64_bit_pattern_sweep_matches_std() {
        let mut state = 0x243F_6A88_85A3_08D3u64;
        for _ in 0..20_000 {
            // SplitMix64 stream of arbitrary bit patterns.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            let v = f64::from_bits(z ^ (z >> 31));
            assert_eq!(
                s(|o| write_f64_shortest(o, v)),
                format!("{v}"),
                "bits {:#018x}",
                v.to_bits()
            );
        }
    }
}
