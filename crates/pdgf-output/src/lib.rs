//! The PDGF output system.
//!
//! "Whenever a work package is generated, it is sent to the output system,
//! where it can be formatted and sorted." (Section 2.) This crate holds
//! the pieces of that sentence:
//!
//! * [`formatter`] — converting typed [`Value`](pdgf_schema::Value) rows
//!   into bytes, once per emitted cell (*lazy formatting*): CSV, JSON,
//!   XML, and SQL `INSERT` formats, matching the paper's "PDGF can write
//!   data in various formats (e.g., CSV, JSON, XML, and SQL)";
//! * [`fmtfast`] — the byte-oriented numeric/date/float kernels the
//!   formatters are built on, each byte-identical to the `std::fmt`
//!   rendering it replaces;
//! * [`sink`] — byte destinations: files, memory, and the byte-counting
//!   null sink used by the paper's CPU-bound experiments ("generated data
//!   was written to /dev/null to ensure the throughput was not I/O
//!   bound");
//! * [`reorder`] — the sequence buffer that turns out-of-order work
//!   package completions into sorted single-file output ("PDGF writes
//!   sorted output into a single file");
//! * [`pool`] — package-buffer recycling between the output stage and
//!   the workers, which removes per-package allocation from the steady
//!   state;
//! * [`factory`] — [`SinkFactory`]: how a run obtains one sink per
//!   table, with ready-made directory/null/memory factories and a
//!   blanket impl for plain closures.
//!
//! # The byte API
//!
//! [`Formatter`] renders into `&mut Vec<u8>`, not `&mut String`. Rows are
//! bytes the moment they are formatted; sinks consume `&[u8]` unchanged.
//! Formatter implementations must uphold two invariants:
//!
//! 1. **UTF-8 output** — every formatter emits valid UTF-8 (all built-in
//!    formats do; escaping operates on `char` boundaries).
//! 2. **No row-path allocation** — `row` may only append to `out`;
//!    scratch strings are forbidden. The built-in formatters render every
//!    [`Value`](pdgf_schema::Value) variant directly into the buffer via
//!    [`fmtfast`].
//!
//! # Determinism contract
//!
//! Output bytes are a pure function of `(schema, seed, format)`: for any
//! worker count and package size, the concatenated package buffers are
//! byte-identical to a single-threaded render. The scheduler's
//! byte-identity tests enforce this for every built-in format, and the
//! [`fmtfast`] round-trip tests pin each kernel to the exact `std::fmt`
//! bytes it replaces, so the contract survives kernel changes.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rust_2018_idioms)]

pub mod factory;
pub mod fmtfast;
pub mod formatter;
pub mod pool;
pub mod reorder;
pub mod sink;
mod sync;

pub use factory::{DirSinkFactory, MemorySinkFactory, NullSinkFactory, SinkFactory};
pub use formatter::{
    CsvFormatter, Formatter, JsonFormatter, SqlFormatter, TableMeta, XmlFormatter,
};
pub use pool::BufferPool;
pub use reorder::ReorderBuffer;
pub use sink::{FileSink, MemorySink, NullSink, PartitionedDirSink, Sink, StreamSink};
