//! The PDGF output system.
//!
//! "Whenever a work package is generated, it is sent to the output system,
//! where it can be formatted and sorted." (Section 2.) This crate holds
//! the three pieces of that sentence:
//!
//! * [`formatter`] — converting typed [`Value`](pdgf_schema::Value) rows
//!   into bytes, once per emitted cell (*lazy formatting*): CSV, JSON,
//!   XML, and SQL `INSERT` formats, matching the paper's "PDGF can write
//!   data in various formats (e.g., CSV, JSON, XML, and SQL)";
//! * [`sink`] — byte destinations: files, memory, and the byte-counting
//!   null sink used by the paper's CPU-bound experiments ("generated data
//!   was written to /dev/null to ensure the throughput was not I/O
//!   bound");
//! * [`reorder`] — the sequence buffer that turns out-of-order work
//!   package completions into sorted single-file output ("PDGF writes
//!   sorted output into a single file").

#![deny(missing_docs)]

pub mod formatter;
pub mod reorder;
pub mod sink;

pub use formatter::{
    CsvFormatter, Formatter, JsonFormatter, SqlFormatter, TableMeta, XmlFormatter,
};
pub use reorder::ReorderBuffer;
pub use sink::{FileSink, MemorySink, NullSink, PartitionedDirSink, Sink};
