//! Synchronization facade for loom model checking.
//!
//! Concurrency-bearing types in this crate import their primitives from
//! here instead of `std::sync` directly. A normal build re-exports the
//! std types unchanged (zero cost); building with `RUSTFLAGS="--cfg
//! loom"` swaps in `loom`'s instrumented equivalents so the
//! `tests/loom.rs` models can explore thread interleavings. Both expose
//! std's poison-aware `lock()` signature, so call sites are identical
//! under either cfg.

#[cfg(loom)]
pub(crate) use loom::sync::Mutex;

#[cfg(not(loom))]
pub(crate) use std::sync::Mutex;
