//! Package-buffer recycling.
//!
//! The parallel scheduler formats each work package into a `Vec<u8>` and
//! ships it to the output stage. Without recycling, every package pays
//! one large allocation (and its eventual free) plus the growth doublings
//! to reach steady-state package size. The [`BufferPool`] closes the
//! loop: the output stage returns written buffers to the pool and workers
//! take them back out, so after warm-up every package reuses a buffer
//! that is already at full capacity — the formatting hot path performs no
//! heap allocation at all.

use crate::sync::Mutex;
use std::sync::{MutexGuard, PoisonError};

/// A bounded stack of recycled byte buffers, shared across threads.
///
/// `take` pops a cleared buffer (or creates an empty one when the pool
/// has been drained); `put` clears and returns a buffer, dropping it
/// instead if the pool is already full, so a burst of in-flight packages
/// cannot pin memory forever.
#[derive(Debug)]
pub struct BufferPool {
    bufs: Mutex<Vec<Vec<u8>>>,
    max: usize,
}

impl BufferPool {
    /// Pool retaining at most `max` idle buffers.
    pub fn new(max: usize) -> Self {
        Self {
            bufs: Mutex::new(Vec::with_capacity(max)),
            max,
        }
    }

    /// A poisoned pool lock is harmless — the protected state is a stack
    /// of empty buffers, which is valid after any panic — so recover the
    /// guard instead of propagating the poison.
    fn bufs(&self) -> MutexGuard<'_, Vec<Vec<u8>>> {
        self.bufs.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Pop a cleared buffer, or a fresh empty one if none is idle.
    pub fn take(&self) -> Vec<u8> {
        self.bufs().pop().unwrap_or_default()
    }

    /// [`take`](Self::take) with at least `capacity` bytes reserved.
    ///
    /// Used with a statically proven package-size bound, this moves the
    /// buffer's growth doublings from the first formatted rows to a
    /// single up-front reservation; recycled buffers that already reached
    /// the bound reserve nothing.
    pub fn take_with_capacity(&self, capacity: usize) -> Vec<u8> {
        let mut buf = self.take();
        if buf.capacity() < capacity {
            buf.reserve(capacity - buf.capacity());
        }
        buf
    }

    /// Clear `buf` (keeping its capacity) and park it for reuse; drops it
    /// when `max` buffers are already idle.
    pub fn put(&self, mut buf: Vec<u8>) {
        buf.clear();
        let mut bufs = self.bufs();
        if bufs.len() < self.max {
            bufs.push(buf);
        }
    }

    /// Number of idle buffers currently parked.
    pub fn idle(&self) -> usize {
        self.bufs().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_from_empty_pool_allocates_fresh() {
        let pool = BufferPool::new(2);
        assert_eq!(pool.idle(), 0);
        let buf = pool.take();
        assert!(buf.is_empty());
    }

    #[test]
    fn put_then_take_recycles_capacity() {
        let pool = BufferPool::new(2);
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(b"payload");
        pool.put(buf);
        assert_eq!(pool.idle(), 1);
        let reused = pool.take();
        assert!(reused.is_empty(), "returned buffers are cleared");
        assert!(reused.capacity() >= 4096, "capacity is retained");
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn take_with_capacity_reserves_up_front() {
        let pool = BufferPool::new(2);
        let buf = pool.take_with_capacity(4096);
        assert!(buf.is_empty());
        assert!(buf.capacity() >= 4096);
        // A recycled buffer already at capacity is returned as-is.
        pool.put(buf);
        let reused = pool.take_with_capacity(1024);
        assert!(reused.capacity() >= 4096, "capacity is retained");
    }

    #[test]
    fn pool_is_bounded() {
        let pool = BufferPool::new(2);
        for _ in 0..5 {
            pool.put(Vec::with_capacity(16));
        }
        assert_eq!(pool.idle(), 2, "excess buffers are dropped");
    }

    #[test]
    fn poisoned_pool_recovers_and_stays_bounded() {
        // A worker dying mid-guard poisons the registry mutex; the
        // recovery helper must keep serving the surviving workers —
        // recycling, clearing, and the idle bound all intact.
        let pool = BufferPool::new(2);
        pool.put(Vec::with_capacity(512));
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                let _guard = pool.bufs();
                panic!("worker dies holding the pool lock");
            });
            assert!(handle.join().is_err(), "the panic must reach join");
        });
        assert!(pool.bufs.lock().is_err(), "the lock really was poisoned");
        let buf = pool.take();
        assert!(buf.is_empty(), "recycled buffer still arrives cleared");
        assert!(
            buf.capacity() >= 512,
            "pre-panic buffer survived the poison"
        );
        for _ in 0..5 {
            pool.put(Vec::with_capacity(16));
        }
        assert_eq!(pool.idle(), 2, "idle bound honest after recovery");
    }

    #[test]
    fn pool_is_shareable_across_threads() {
        let pool = std::sync::Arc::new(BufferPool::new(8));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = pool.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        let mut b = pool.take();
                        b.extend_from_slice(b"x");
                        pool.put(b);
                    }
                });
            }
        });
        assert!(pool.idle() <= 8);
    }
}
