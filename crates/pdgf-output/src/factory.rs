//! Sink factories: how a run obtains one [`Sink`] per table.
//!
//! A project run creates its sinks up front — tables generate
//! concurrently, so the driver asks a factory for every table's sink
//! before any package runs. [`SinkFactory`] names that contract as a
//! trait instead of the bare `FnMut(&str) -> io::Result<Box<dyn Sink>>`
//! closure parameter earlier revisions passed around: closures still work
//! through a blanket impl, and the common destinations ship as ready-made
//! factories ([`DirSinkFactory`], [`NullSinkFactory`],
//! [`MemorySinkFactory`]) so callers stop hand-rolling the closure dance.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::sink::{FileSink, MemorySink, NullSink, Sink};

/// Produces the sink a table's output stream writes to.
///
/// Implemented by anything callable as `FnMut(&str) -> io::Result<Box<dyn
/// Sink>>` (blanket impl), so existing closure call sites keep working:
///
/// ```
/// use pdgf_output::{NullSink, Sink, SinkFactory};
/// let mut factory = |_table: &str| -> std::io::Result<Box<dyn Sink>> {
///     Ok(Box::new(NullSink::new()))
/// };
/// let sink = factory.make_sink("lineitem").unwrap();
/// assert_eq!(sink.bytes_written(), 0);
/// ```
pub trait SinkFactory {
    /// Create the sink for `table`. Called once per table, before
    /// generation starts.
    fn make_sink(&mut self, table: &str) -> io::Result<Box<dyn Sink>>;
}

impl<F> SinkFactory for F
where
    F: FnMut(&str) -> io::Result<Box<dyn Sink>>,
{
    fn make_sink(&mut self, table: &str) -> io::Result<Box<dyn Sink>> {
        self(table)
    }
}

/// One file per table in a directory: `<dir>/<table>.<extension>`.
#[derive(Debug, Clone)]
pub struct DirSinkFactory {
    dir: PathBuf,
    extension: String,
}

impl DirSinkFactory {
    /// Factory writing `<table>.<extension>` files into `dir` (created if
    /// missing at first sink creation).
    pub fn new(dir: impl Into<PathBuf>, extension: impl Into<String>) -> Self {
        Self {
            dir: dir.into(),
            extension: extension.into(),
        }
    }

    /// The path this factory gives `table`'s sink.
    pub fn path_for(&self, table: &str) -> PathBuf {
        self.dir.join(format!("{table}.{}", self.extension))
    }

    /// Target directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl SinkFactory for DirSinkFactory {
    fn make_sink(&mut self, table: &str) -> io::Result<Box<dyn Sink>> {
        std::fs::create_dir_all(&self.dir)?;
        Ok(Box::new(FileSink::create(self.path_for(table))?))
    }
}

/// A byte-counting [`NullSink`] per table — the CPU-bound benchmarking
/// configuration ("generated data was written to /dev/null").
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSinkFactory;

impl SinkFactory for NullSinkFactory {
    fn make_sink(&mut self, _table: &str) -> io::Result<Box<dyn Sink>> {
        Ok(Box::new(NullSink::new()))
    }
}

/// Captures every table's bytes in memory, keyed by table name — the
/// test/inspection configuration.
///
/// Clones share storage; call [`outputs`](Self::outputs) (or
/// [`output`](Self::output)) after the run's sinks have been
/// [`finish`](Sink::finish)ed.
#[derive(Debug, Clone, Default)]
pub struct MemorySinkFactory {
    // BTreeMap keeps table iteration deterministic (the determinism
    // audit bans randomized-order maps crate-wide).
    outputs: Arc<Mutex<BTreeMap<String, Vec<u8>>>>,
}

impl MemorySinkFactory {
    /// New factory with empty shared storage.
    pub fn new() -> Self {
        Self::default()
    }

    fn store(&self) -> MutexGuard<'_, BTreeMap<String, Vec<u8>>> {
        // Captured bytes survive a panicking peer unchanged; recover.
        self.outputs.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// All captured outputs, keyed by table, in name order.
    pub fn outputs(&self) -> Vec<(String, Vec<u8>)> {
        self.store()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// One table's captured bytes, if finished.
    pub fn output(&self, table: &str) -> Option<Vec<u8>> {
        self.store().get(table).cloned()
    }
}

/// Sink that moves its bytes into the factory's shared map on finish.
struct CapturingMemorySink {
    table: String,
    inner: MemorySink,
    dest: Arc<Mutex<BTreeMap<String, Vec<u8>>>>,
}

impl Sink for CapturingMemorySink {
    fn write_chunk(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.inner.write_chunk(bytes)
    }

    fn finish(&mut self) -> io::Result<u64> {
        let n = self.inner.finish()?;
        let bytes = std::mem::take(&mut self.inner).into_inner();
        self.dest
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(self.table.clone(), bytes);
        Ok(n)
    }

    fn bytes_written(&self) -> u64 {
        self.inner.bytes_written()
    }
}

impl SinkFactory for MemorySinkFactory {
    fn make_sink(&mut self, table: &str) -> io::Result<Box<dyn Sink>> {
        Ok(Box::new(CapturingMemorySink {
            table: table.to_string(),
            inner: MemorySink::new(),
            dest: Arc::clone(&self.outputs),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_are_factories() {
        let mut seen = Vec::new();
        let mut factory = |table: &str| -> io::Result<Box<dyn Sink>> {
            seen.push(table.to_string());
            Ok(Box::new(NullSink::new()))
        };
        factory.make_sink("a").unwrap();
        factory.make_sink("b").unwrap();
        assert_eq!(seen, vec!["a", "b"]);
    }

    #[test]
    fn null_factory_counts_bytes() {
        let mut f = NullSinkFactory;
        let mut sink = f.make_sink("t").unwrap();
        sink.write_chunk(b"hello").unwrap();
        assert_eq!(sink.finish().unwrap(), 5);
    }

    #[test]
    fn memory_factory_captures_per_table_bytes_on_finish() {
        let factory = MemorySinkFactory::new();
        let mut handle = factory.clone();
        let mut a = handle.make_sink("a").unwrap();
        let mut b = handle.make_sink("b").unwrap();
        a.write_chunk(b"aaa").unwrap();
        b.write_chunk(b"bb").unwrap();
        assert!(factory.output("a").is_none(), "not captured until finish");
        a.finish().unwrap();
        b.finish().unwrap();
        assert_eq!(factory.output("a").as_deref(), Some(&b"aaa"[..]));
        let all = factory.outputs();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, "a", "name order");
        assert_eq!(all[1].1, b"bb");
    }

    #[test]
    fn dir_factory_writes_table_files() {
        let dir = std::env::temp_dir().join(format!("pdgf-factory-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut f = DirSinkFactory::new(&dir, "csv");
        assert_eq!(f.path_for("t"), dir.join("t.csv"));
        assert_eq!(f.dir(), dir.as_path());
        {
            let mut sink = f.make_sink("t").unwrap();
            sink.write_chunk(b"1,2\n").unwrap();
            sink.finish().unwrap();
        }
        assert_eq!(std::fs::read(dir.join("t.csv")).unwrap(), b"1,2\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
