//! Byte sinks.
//!
//! The output stage hands each completed (and reordered) work package's
//! bytes to a [`Sink`]. Sinks are sequential by construction — the
//! reorder buffer serializes packages — so implementations need no
//! internal locking.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// A destination for formatted output bytes.
pub trait Sink: Send {
    /// Write one chunk.
    fn write_chunk(&mut self, bytes: &[u8]) -> io::Result<()>;

    /// Flush and finalize. Returns the number of bytes written in total.
    fn finish(&mut self) -> io::Result<u64>;

    /// Bytes written so far.
    fn bytes_written(&self) -> u64;
}

/// Discards bytes but counts them — the `/dev/null` of the paper's
/// CPU-bound throughput experiments.
#[derive(Debug, Default)]
pub struct NullSink {
    bytes: u64,
}

impl NullSink {
    /// New counting null sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Sink for NullSink {
    #[inline]
    fn write_chunk(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.bytes += bytes.len() as u64;
        Ok(())
    }

    fn finish(&mut self) -> io::Result<u64> {
        Ok(self.bytes)
    }

    fn bytes_written(&self) -> u64 {
        self.bytes
    }
}

/// Buffered file sink.
pub struct FileSink {
    writer: BufWriter<File>,
    bytes: u64,
}

impl FileSink {
    /// Create (truncate) `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self {
            writer: BufWriter::with_capacity(1 << 20, File::create(path)?),
            bytes: 0,
        })
    }
}

impl Sink for FileSink {
    #[inline]
    fn write_chunk(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.writer.write_all(bytes)?;
        self.bytes += bytes.len() as u64;
        Ok(())
    }

    fn finish(&mut self) -> io::Result<u64> {
        self.writer.flush()?;
        Ok(self.bytes)
    }

    fn bytes_written(&self) -> u64 {
        self.bytes
    }
}

/// Collects output in memory; used by tests, the preview feature, and the
/// database bulk-load path.
#[derive(Debug, Default)]
pub struct MemorySink {
    data: Vec<u8>,
}

impl MemorySink {
    /// New empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The collected bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// The collected bytes as UTF-8 (output formats are all UTF-8).
    pub fn as_str(&self) -> &str {
        // audit:allow(unwrap) test-facing accessor; every built-in formatter
        // emits valid UTF-8 by the crate's byte-API contract
        std::str::from_utf8(&self.data).expect("formatters emit UTF-8")
    }

    /// Consume the sink, returning its buffer.
    pub fn into_inner(self) -> Vec<u8> {
        self.data
    }
}

impl Sink for MemorySink {
    #[inline]
    fn write_chunk(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.data.extend_from_slice(bytes);
        Ok(())
    }

    fn finish(&mut self) -> io::Result<u64> {
        Ok(self.data.len() as u64)
    }

    fn bytes_written(&self) -> u64 {
        self.data.len() as u64
    }
}

/// HDFS-style partitioned directory sink: output rolls into numbered
/// part files (`part-00000`, `part-00001`, …) once a part exceeds the
/// configured size — the layout "modern big data storage systems" expect
/// (the paper lists HDFS among PDGF's targets). Chunks are never split
/// across parts, so each part holds whole rows/packages.
pub struct PartitionedDirSink {
    dir: std::path::PathBuf,
    part_bytes: u64,
    current: Option<BufWriter<File>>,
    current_bytes: u64,
    parts: u32,
    total: u64,
}

impl PartitionedDirSink {
    /// Create a sink writing parts of roughly `part_bytes` into `dir`
    /// (created if missing).
    pub fn create(dir: impl AsRef<Path>, part_bytes: u64) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            part_bytes: part_bytes.max(1),
            current: None,
            current_bytes: 0,
            parts: 0,
            total: 0,
        })
    }

    /// Number of part files written so far.
    pub fn part_count(&self) -> u32 {
        self.parts
    }

    fn roll(&mut self) -> io::Result<&mut BufWriter<File>> {
        if self.current.is_none() || self.current_bytes >= self.part_bytes {
            if let Some(mut old) = self.current.take() {
                old.flush()?;
            }
            let path = self.dir.join(format!("part-{:05}", self.parts));
            self.current = Some(BufWriter::new(File::create(path)?));
            self.parts += 1;
            self.current_bytes = 0;
        }
        match &mut self.current {
            Some(w) => Ok(w),
            None => Err(io::Error::other("part file vanished after roll")),
        }
    }
}

impl Sink for PartitionedDirSink {
    fn write_chunk(&mut self, bytes: &[u8]) -> io::Result<()> {
        let writer = self.roll()?;
        writer.write_all(bytes)?;
        self.current_bytes += bytes.len() as u64;
        self.total += bytes.len() as u64;
        Ok(())
    }

    fn finish(&mut self) -> io::Result<u64> {
        if let Some(mut w) = self.current.take() {
            w.flush()?;
        }
        Ok(self.total)
    }

    fn bytes_written(&self) -> u64 {
        self.total
    }
}

/// Streams chunks to any [`Write`]r — a TCP socket, stdout, a pipe —
/// counting bytes as it goes. This is the serving path's sink-to-socket
/// adapter: `pdgf serve` wraps a connection's writer in a `StreamSink`
/// so formatted packages flow straight to the client without touching
/// disk. `finish` flushes; the writer itself stays owned by the sink
/// (use [`into_inner`](Self::into_inner) to get it back).
pub struct StreamSink<W: Write + Send> {
    writer: W,
    bytes: u64,
}

impl<W: Write + Send> StreamSink<W> {
    /// Wrap `writer`.
    pub fn new(writer: W) -> Self {
        Self { writer, bytes: 0 }
    }

    /// Flush and return the underlying writer.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.writer.flush()?;
        Ok(self.writer)
    }

    /// The wrapped writer (e.g. to shut down a socket on error).
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.writer
    }
}

impl<W: Write + Send> Sink for StreamSink<W> {
    #[inline]
    fn write_chunk(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.writer.write_all(bytes)?;
        self.bytes += bytes.len() as u64;
        Ok(())
    }

    fn finish(&mut self) -> io::Result<u64> {
        self.writer.flush()?;
        Ok(self.bytes)
    }

    fn bytes_written(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_counts_bytes() {
        let mut s = NullSink::new();
        s.write_chunk(b"hello").unwrap();
        s.write_chunk(b" world").unwrap();
        assert_eq!(s.bytes_written(), 11);
        assert_eq!(s.finish().unwrap(), 11);
    }

    #[test]
    fn memory_sink_collects() {
        let mut s = MemorySink::new();
        s.write_chunk(b"ab").unwrap();
        s.write_chunk(b"cd").unwrap();
        assert_eq!(s.as_str(), "abcd");
        assert_eq!(s.finish().unwrap(), 4);
        assert_eq!(s.into_inner(), b"abcd");
    }

    #[test]
    fn partitioned_sink_rolls_parts() {
        let dir = std::env::temp_dir().join(format!("pdgf-parts-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        {
            let mut s = PartitionedDirSink::create(&dir, 10).unwrap();
            for i in 0..6 {
                s.write_chunk(format!("chunk{i}\n").as_bytes()).unwrap();
            }
            assert_eq!(s.finish().unwrap(), 42);
            // 7 bytes per chunk, 10-byte parts: rolls after every 2nd chunk.
            assert_eq!(s.part_count(), 3);
            assert_eq!(s.bytes_written(), 42);
        }
        // Concatenating parts in order reconstructs the stream.
        let mut all = String::new();
        for i in 0..3 {
            all.push_str(&std::fs::read_to_string(dir.join(format!("part-{i:05}"))).unwrap());
        }
        assert_eq!(all, "chunk0\nchunk1\nchunk2\nchunk3\nchunk4\nchunk5\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partitioned_sink_never_splits_a_chunk() {
        let dir = std::env::temp_dir().join(format!("pdgf-parts2-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut s = PartitionedDirSink::create(&dir, 4).unwrap();
        s.write_chunk(b"0123456789").unwrap(); // bigger than a part
        s.write_chunk(b"ab").unwrap();
        s.finish().unwrap();
        assert_eq!(s.part_count(), 2);
        assert_eq!(
            std::fs::read_to_string(dir.join("part-00000")).unwrap(),
            "0123456789"
        );
        assert_eq!(
            std::fs::read_to_string(dir.join("part-00001")).unwrap(),
            "ab"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stream_sink_writes_through_and_counts() {
        let mut s = StreamSink::new(Vec::<u8>::new());
        s.write_chunk(b"alpha,").unwrap();
        s.write_chunk(b"beta").unwrap();
        assert_eq!(s.bytes_written(), 10);
        assert_eq!(s.finish().unwrap(), 10);
        assert_eq!(s.into_inner().unwrap(), b"alpha,beta");
    }

    #[test]
    fn file_sink_writes_to_disk() {
        let path = std::env::temp_dir().join(format!("pdgf-sink-{}.txt", std::process::id()));
        {
            let mut s = FileSink::create(&path).unwrap();
            s.write_chunk(b"line1\n").unwrap();
            s.write_chunk(b"line2\n").unwrap();
            assert_eq!(s.finish().unwrap(), 12);
            assert_eq!(s.bytes_written(), 12);
        }
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "line1\nline2\n");
        std::fs::remove_file(&path).ok();
    }
}
