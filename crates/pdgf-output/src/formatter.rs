//! Row formatters: typed values to bytes, exactly once per cell.
//!
//! Generators hand the output system *typed* [`Value`]s; the paper calls
//! the resulting strategy lazy formatting — "even very complex values will
//! only be formatted once", and formatting cost (the dominant cost in
//! Figure 9) is paid only for cells that are actually emitted.
//!
//! Formatters append straight to a `Vec<u8>` package buffer through the
//! [`fmtfast`](crate::fmtfast) kernels. No formatter allocates on the row
//! path: numeric, date, and timestamp values are rendered digit-by-digit
//! into the output buffer, and text values are copied (and escaped)
//! directly from their backing storage.

use crate::fmtfast;
use pdgf_schema::absint::{KindSet, StaticProfile};
use pdgf_schema::{ColumnBatch, Value, ValueRef};

/// Static description of the table being formatted.
#[derive(Debug, Clone)]
pub struct TableMeta {
    /// Table name (used by XML/SQL formats).
    pub name: String,
    /// Column names in emission order.
    pub columns: Vec<String>,
}

impl TableMeta {
    /// Convenience constructor.
    pub fn new(name: &str, columns: &[&str]) -> Self {
        Self {
            // audit:allow(std-fmt) schema-time construction, once per table;
            // the per-row hot path below never allocates through std fmt
            name: name.to_string(),
            // audit:allow(std-fmt) schema-time construction, once per table
            columns: columns.iter().map(|c| c.to_string()).collect(),
        }
    }
}

/// Converts rows of values into output bytes.
///
/// Formatters are stateless and shared across worker threads; all output
/// goes through the caller-provided byte buffer so the steady-state hot
/// path performs no allocation at all (buffer growth amortizes to zero
/// once package buffers recycle through the
/// [`BufferPool`](crate::BufferPool)).
pub trait Formatter: Send + Sync {
    /// Emit anything that precedes the first row (headers, openers).
    fn begin(&self, out: &mut Vec<u8>, meta: &TableMeta) {
        let _ = (out, meta);
    }

    /// Emit one row.
    fn row(&self, out: &mut Vec<u8>, meta: &TableMeta, values: &[Value]);

    /// Emit every row of a columnar batch, transposing columns to rows.
    ///
    /// Must produce exactly the bytes of calling [`row`](Self::row) once
    /// per batch row. The default materializes each row into a reused
    /// `Vec<Value>` and delegates — correct for any formatter; the
    /// shipped formatters override it to read borrowed [`ValueRef`]s
    /// straight out of the column storage instead.
    fn rows_columnar(&self, out: &mut Vec<u8>, meta: &TableMeta, batch: &ColumnBatch) {
        let mut row = Vec::with_capacity(batch.columns().len());
        for i in 0..batch.rows() {
            row.clear();
            row.extend(batch.columns().iter().map(|c| c.value(i)));
            self.row(out, meta, &row);
        }
    }

    /// Emit anything that follows the last row (closers).
    fn end(&self, out: &mut Vec<u8>, meta: &TableMeta) {
        let _ = (out, meta);
    }

    /// A proven upper bound on the bytes one [`row`](Self::row) call can
    /// append, given each column's abstract-interpretation profile.
    ///
    /// `None` when no finite bound is known (a column width is unbounded,
    /// or the profiles don't match the column list). The default claims
    /// nothing, which is always sound.
    fn max_row_bytes(&self, meta: &TableMeta, profiles: &[StaticProfile]) -> Option<u64> {
        let _ = (meta, profiles);
        None
    }

    /// Format name for diagnostics.
    fn name(&self) -> &'static str;
}

/// Append one `char` as UTF-8.
#[inline]
fn push_char(out: &mut Vec<u8>, c: char) {
    let mut buf = [0u8; 4];
    out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
}

/// Every byte a non-text [`Value`] rendering can contain: digits, sign,
/// point, time separators, and the letters of `true`/`false`/`NaN`/`inf`.
/// Used to decide whether typed CSV fields can ever need quoting.
const TYPED_VALUE_CHARS: &str = "0123456789-.: truefalsNni";

/// Delimiter-separated values. Fields containing the delimiter, quotes,
/// or newlines are quoted with `"` and embedded quotes doubled (RFC 4180).
pub struct CsvFormatter {
    delimiter: char,
    header: bool,
    /// Whether a typed (non-text) rendering could contain the delimiter.
    /// False for every sane delimiter (`,`, `|`, tab, `;`), letting typed
    /// fields skip the quoting scan entirely.
    scan_typed: bool,
}

impl CsvFormatter {
    /// Standard comma-separated output without a header row (DBGen-style).
    pub fn new() -> Self {
        Self {
            delimiter: ',',
            header: false,
            scan_typed: false,
        }
    }

    /// Customize the delimiter (e.g. `'|'` for TPC-H tbl files).
    pub fn with_delimiter(mut self, delimiter: char) -> Self {
        self.delimiter = delimiter;
        self.scan_typed = TYPED_VALUE_CHARS.contains(delimiter);
        self
    }

    /// Emit a header row with column names.
    pub fn with_header(mut self) -> Self {
        self.header = true;
        self
    }

    /// The delimiter as a single byte, when it is ASCII (the overwhelming
    /// common case). ASCII bytes never occur inside a multi-byte UTF-8
    /// sequence, so quoting scans can run over raw bytes instead of
    /// decoding chars.
    #[inline]
    fn ascii_delimiter(&self) -> Option<u8> {
        self.delimiter.is_ascii().then_some(self.delimiter as u8)
    }

    fn push_field(&self, out: &mut Vec<u8>, text: &str) {
        let needs_quoting = match self.ascii_delimiter() {
            Some(d) => text
                .bytes()
                .any(|b| b == d || b == b'"' || b == b'\n' || b == b'\r'),
            None => text
                .chars()
                .any(|c| c == self.delimiter || c == '"' || c == '\n' || c == '\r'),
        };
        if needs_quoting {
            out.push(b'"');
            for c in text.chars() {
                if c == '"' {
                    out.push(b'"');
                }
                push_char(out, c);
            }
            out.push(b'"');
        } else {
            out.extend_from_slice(text.as_bytes());
        }
    }

    /// Render a typed (non-text) value. Typed renderings can never contain
    /// `"`, `\n`, or `\r`, so quoting is only needed when the delimiter
    /// itself appears — and that in turn is only possible when the
    /// delimiter is drawn from [`TYPED_VALUE_CHARS`].
    fn push_typed(&self, out: &mut Vec<u8>, v: ValueRef<'_>) {
        let start = out.len();
        fmtfast::write_value_ref(out, v);
        if self.scan_typed {
            let mut delim = [0u8; 4];
            let delim = self.delimiter.encode_utf8(&mut delim).as_bytes();
            let written = &out[start..];
            let hit = written.windows(delim.len()).any(|w| w == delim);
            if hit {
                // Wrap in quotes in place; typed renderings contain no
                // embedded quotes, so no doubling is needed.
                out.insert(start, b'"');
                out.push(b'"');
            }
        }
    }

    /// One CSV cell, shared by the row and columnar paths.
    #[inline]
    fn cell(&self, out: &mut Vec<u8>, v: ValueRef<'_>) {
        match v {
            ValueRef::Null => {}
            ValueRef::Long(x) => fmtfast::write_i64(out, x),
            ValueRef::Text(s) => self.push_field(out, s),
            other => self.push_typed(out, other),
        }
    }
}

impl Default for CsvFormatter {
    fn default() -> Self {
        Self::new()
    }
}

impl Formatter for CsvFormatter {
    fn begin(&self, out: &mut Vec<u8>, meta: &TableMeta) {
        if self.header {
            for (i, c) in meta.columns.iter().enumerate() {
                if i > 0 {
                    push_char(out, self.delimiter);
                }
                self.push_field(out, c);
            }
            out.push(b'\n');
        }
    }

    fn row(&self, out: &mut Vec<u8>, _meta: &TableMeta, values: &[Value]) {
        let delim = self.ascii_delimiter();
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                match delim {
                    Some(d) => out.push(d),
                    None => push_char(out, self.delimiter),
                }
            }
            self.cell(out, ValueRef::from(v));
        }
        out.push(b'\n');
    }

    fn rows_columnar(&self, out: &mut Vec<u8>, _meta: &TableMeta, batch: &ColumnBatch) {
        let delim = self.ascii_delimiter();
        // Columnar text lives in one contiguous arena per column, so the
        // quoting decision can be hoisted: one vectorizable scan over the
        // arena. A column whose arena contains no delimiter, quote, or
        // newline bytes takes `push_field`'s unquoted branch for every
        // cell — splice those cells with a plain memcpy.
        let clean: Vec<bool> = match delim {
            Some(d) => batch
                .columns()
                .iter()
                .map(|c| {
                    c.as_text().is_some_and(|t| {
                        // Four memchr passes (slice::contains specializes
                        // to SIMD for u8) beat one scalar multi-needle scan.
                        let b = t.arena().as_bytes();
                        !(b.contains(&d)
                            || b.contains(&b'"')
                            || b.contains(&b'\n')
                            || b.contains(&b'\r'))
                    })
                })
                .collect(),
            None => vec![false; batch.columns().len()],
        };
        for r in 0..batch.rows() {
            for (i, col) in batch.columns().iter().enumerate() {
                if i > 0 {
                    match delim {
                        Some(d) => out.push(d),
                        None => push_char(out, self.delimiter),
                    }
                }
                match col.value_ref(r) {
                    ValueRef::Text(s) if clean[i] => out.extend_from_slice(s.as_bytes()),
                    v => self.cell(out, v),
                }
            }
            out.push(b'\n');
        }
    }

    fn max_row_bytes(&self, meta: &TableMeta, profiles: &[StaticProfile]) -> Option<u64> {
        if meta.columns.len() != profiles.len() {
            return None;
        }
        let delim = self.delimiter.len_utf8() as u64;
        let mut total = 1; // trailing newline
        for (i, p) in profiles.iter().enumerate() {
            if i > 0 {
                total += delim;
            }
            let w = u64::from(p.width.bound()?);
            total += if p.kinds.contains(KindSet::TEXT) {
                // Quoted worst case: every byte doubled, plus the quotes.
                2 * w + 2
            } else if self.scan_typed && !p.kinds.without_null().is_subset(KindSet::LONG) {
                // Typed renderings may collide with the delimiter and get
                // wrapped in quotes; bare longs and NULLs never do.
                w + 2
            } else {
                w
            };
        }
        Some(total)
    }

    fn name(&self) -> &'static str {
        "CSV"
    }
}

/// Newline-delimited JSON: one object per row.
pub struct JsonFormatter;

fn json_escape_into(out: &mut Vec<u8>, s: &str) {
    out.push(b'"');
    for c in s.chars() {
        match c {
            '"' => out.extend_from_slice(b"\\\""),
            '\\' => out.extend_from_slice(b"\\\\"),
            '\n' => out.extend_from_slice(b"\\n"),
            '\r' => out.extend_from_slice(b"\\r"),
            '\t' => out.extend_from_slice(b"\\t"),
            c if (c as u32) < 0x20 => {
                // `\u00XX` — control characters only, so two hex digits.
                const HEX: &[u8; 16] = b"0123456789abcdef";
                let n = c as usize;
                out.extend_from_slice(b"\\u00");
                out.push(HEX[(n >> 4) & 0xF]);
                out.push(HEX[n & 0xF]);
            }
            c => push_char(out, c),
        }
    }
    out.push(b'"');
}

/// One JSON cell value, shared by the row and columnar paths.
#[inline]
fn json_cell(out: &mut Vec<u8>, v: ValueRef<'_>) {
    match v {
        ValueRef::Null => out.extend_from_slice(b"null"),
        ValueRef::Bool(b) => fmtfast::write_bool(out, b),
        ValueRef::Long(x) => fmtfast::write_i64(out, x),
        ValueRef::Double(x) => {
            if x.is_finite() {
                // Raw f64 rendering: no forced trailing `.0`.
                fmtfast::write_f64_shortest(out, x);
            } else {
                out.extend_from_slice(b"null");
            }
        }
        ValueRef::Decimal { unscaled, scale } => {
            fmtfast::write_decimal(out, unscaled, scale);
        }
        // Date/timestamp renderings contain no JSON-escapable
        // characters; quote them directly.
        ValueRef::Date(d) => {
            out.push(b'"');
            fmtfast::write_date(out, d);
            out.push(b'"');
        }
        ValueRef::Timestamp(t) => {
            out.push(b'"');
            fmtfast::write_timestamp(out, t);
            out.push(b'"');
        }
        ValueRef::Text(s) => json_escape_into(out, s),
    }
}

impl Formatter for JsonFormatter {
    fn row(&self, out: &mut Vec<u8>, meta: &TableMeta, values: &[Value]) {
        out.push(b'{');
        for (i, (col, v)) in meta.columns.iter().zip(values).enumerate() {
            if i > 0 {
                out.push(b',');
            }
            json_escape_into(out, col);
            out.push(b':');
            json_cell(out, ValueRef::from(v));
        }
        out.extend_from_slice(b"}\n");
    }

    fn rows_columnar(&self, out: &mut Vec<u8>, meta: &TableMeta, batch: &ColumnBatch) {
        for r in 0..batch.rows() {
            out.push(b'{');
            for (i, (col, c)) in meta.columns.iter().zip(batch.columns()).enumerate() {
                if i > 0 {
                    out.push(b',');
                }
                json_escape_into(out, col);
                out.push(b':');
                json_cell(out, c.value_ref(r));
            }
            out.extend_from_slice(b"}\n");
        }
    }

    fn max_row_bytes(&self, meta: &TableMeta, profiles: &[StaticProfile]) -> Option<u64> {
        if meta.columns.len() != profiles.len() {
            return None;
        }
        let mut total = 3; // '{' plus "}\n"
        for (i, (col, p)) in meta.columns.iter().zip(profiles).enumerate() {
            if i > 0 {
                total += 1; // comma
            }
            let mut key = Vec::new();
            json_escape_into(&mut key, col);
            total += key.len() as u64 + 1; // escaped key plus colon
            let w = u64::from(p.width.bound()?);
            let k = p.kinds;
            let mut b = 0u64;
            if k.contains(KindSet::NULL) {
                b = b.max(4); // "null"
            }
            if k.contains(KindSet::BOOL) {
                b = b.max(5); // "false"
            }
            if k.contains(KindSet::LONG) || k.contains(KindSet::DECIMAL) {
                b = b.max(w);
            }
            if k.contains(KindSet::DOUBLE) {
                // Shortest round-trip rendering never exceeds the display
                // rendering; non-finite doubles become "null".
                b = b.max(w.max(4));
            }
            if k.contains(KindSet::DATE) || k.contains(KindSet::TIMESTAMP) {
                b = b.max(w + 2); // quoted
            }
            if k.contains(KindSet::TEXT) {
                // Worst case: every byte a control character (`\u00XX`).
                b = b.max(6 * w + 2);
            }
            total += b;
        }
        Some(total)
    }

    fn name(&self) -> &'static str {
        "JSON"
    }
}

/// XML rows: `<table><row><col>value</col>…</row>…</table>`.
pub struct XmlFormatter;

fn xml_escape_into(out: &mut Vec<u8>, s: &str) {
    for c in s.chars() {
        match c {
            '&' => out.extend_from_slice(b"&amp;"),
            '<' => out.extend_from_slice(b"&lt;"),
            '>' => out.extend_from_slice(b"&gt;"),
            c => push_char(out, c),
        }
    }
}

/// One XML `<col>…</col>` element, shared by the row and columnar paths.
#[inline]
fn xml_cell(out: &mut Vec<u8>, col: &str, v: ValueRef<'_>) {
    out.push(b'<');
    out.extend_from_slice(col.as_bytes());
    if v.is_null() {
        out.extend_from_slice(b" null=\"true\"/>");
        return;
    }
    out.push(b'>');
    match v {
        // Text can contain markup characters; typed renderings
        // never do, so they skip the escaping walk.
        ValueRef::Text(s) => xml_escape_into(out, s),
        other => fmtfast::write_value_ref(out, other),
    }
    out.extend_from_slice(b"</");
    out.extend_from_slice(col.as_bytes());
    out.push(b'>');
}

impl Formatter for XmlFormatter {
    fn begin(&self, out: &mut Vec<u8>, meta: &TableMeta) {
        out.push(b'<');
        out.extend_from_slice(meta.name.as_bytes());
        out.extend_from_slice(b">\n");
    }

    fn row(&self, out: &mut Vec<u8>, meta: &TableMeta, values: &[Value]) {
        out.extend_from_slice(b"  <row>");
        for (col, v) in meta.columns.iter().zip(values) {
            xml_cell(out, col, ValueRef::from(v));
        }
        out.extend_from_slice(b"</row>\n");
    }

    fn rows_columnar(&self, out: &mut Vec<u8>, meta: &TableMeta, batch: &ColumnBatch) {
        for r in 0..batch.rows() {
            out.extend_from_slice(b"  <row>");
            for (col, c) in meta.columns.iter().zip(batch.columns()) {
                xml_cell(out, col, c.value_ref(r));
            }
            out.extend_from_slice(b"</row>\n");
        }
    }

    fn end(&self, out: &mut Vec<u8>, meta: &TableMeta) {
        out.extend_from_slice(b"</");
        out.extend_from_slice(meta.name.as_bytes());
        out.extend_from_slice(b">\n");
    }

    fn max_row_bytes(&self, meta: &TableMeta, profiles: &[StaticProfile]) -> Option<u64> {
        if meta.columns.len() != profiles.len() {
            return None;
        }
        let mut total = 14; // "  <row>" plus "</row>\n"
        for (col, p) in meta.columns.iter().zip(profiles) {
            let name = col.len() as u64;
            let w = u64::from(p.width.bound()?);
            let content = if p.kinds.contains(KindSet::TEXT) {
                5 * w // worst case: every byte expands to "&amp;"
            } else {
                w
            };
            let open_close = 2 * name + 5 + content; // <c>…</c>
            let null_case = if p.kinds.contains(KindSet::NULL) {
                name + 15 // <c null="true"/>
            } else {
                0
            };
            total += open_close.max(null_case);
        }
        Some(total)
    }

    fn name(&self) -> &'static str {
        "XML"
    }
}

/// SQL `INSERT` statements, loadable through any SQL interface (the
/// paper: "data can be loaded into the target database either using SQL
/// statements generated by PDGF or a bulk load option").
pub struct SqlFormatter {
    /// Rows per multi-row `INSERT` statement.
    batch: usize,
}

impl SqlFormatter {
    /// One `INSERT` per row.
    pub fn new() -> Self {
        Self { batch: 1 }
    }

    /// Multi-row inserts (`INSERT ... VALUES (...), (...), ...`) are not
    /// batched across `row` calls; `batch` is kept for API completeness.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }
}

impl Default for SqlFormatter {
    fn default() -> Self {
        Self::new()
    }
}

/// Append `s` single-quoted with embedded `'` doubled. Safe on raw bytes:
/// `'` is ASCII and UTF-8 continuation bytes can never alias it.
fn sql_quote_into(out: &mut Vec<u8>, s: &str) {
    out.push(b'\'');
    for &b in s.as_bytes() {
        if b == b'\'' {
            out.push(b'\'');
        }
        out.push(b);
    }
    out.push(b'\'');
}

/// One SQL literal, shared by the row and columnar paths.
#[inline]
fn sql_cell(out: &mut Vec<u8>, v: ValueRef<'_>) {
    match v {
        ValueRef::Null => out.extend_from_slice(b"NULL"),
        ValueRef::Bool(b) => out.extend_from_slice(if b {
            b"TRUE".as_ref()
        } else {
            b"FALSE".as_ref()
        }),
        ValueRef::Long(x) => fmtfast::write_i64(out, x),
        ValueRef::Double(x) => fmtfast::write_f64_display(out, x),
        ValueRef::Decimal { unscaled, scale } => {
            fmtfast::write_decimal(out, unscaled, scale);
        }
        ValueRef::Text(s) => sql_quote_into(out, s),
        // Dates and timestamps contain no quotes to double.
        ValueRef::Date(d) => {
            out.push(b'\'');
            fmtfast::write_date(out, d);
            out.push(b'\'');
        }
        ValueRef::Timestamp(t) => {
            out.push(b'\'');
            fmtfast::write_timestamp(out, t);
            out.push(b'\'');
        }
    }
}

impl SqlFormatter {
    /// The exact `INSERT INTO name (cols, …) VALUES (` prefix.
    fn insert_prefix(&self, out: &mut Vec<u8>, meta: &TableMeta) {
        out.extend_from_slice(b"INSERT INTO ");
        out.extend_from_slice(meta.name.as_bytes());
        out.extend_from_slice(b" (");
        for (i, c) in meta.columns.iter().enumerate() {
            if i > 0 {
                out.extend_from_slice(b", ");
            }
            out.extend_from_slice(c.as_bytes());
        }
        out.extend_from_slice(b") VALUES (");
    }
}

impl Formatter for SqlFormatter {
    fn row(&self, out: &mut Vec<u8>, meta: &TableMeta, values: &[Value]) {
        self.insert_prefix(out, meta);
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                out.extend_from_slice(b", ");
            }
            sql_cell(out, ValueRef::from(v));
        }
        out.extend_from_slice(b");\n");
    }

    fn rows_columnar(&self, out: &mut Vec<u8>, meta: &TableMeta, batch: &ColumnBatch) {
        for r in 0..batch.rows() {
            self.insert_prefix(out, meta);
            for (i, c) in batch.columns().iter().enumerate() {
                if i > 0 {
                    out.extend_from_slice(b", ");
                }
                sql_cell(out, c.value_ref(r));
            }
            out.extend_from_slice(b");\n");
        }
    }

    fn max_row_bytes(&self, meta: &TableMeta, profiles: &[StaticProfile]) -> Option<u64> {
        if meta.columns.len() != profiles.len() {
            return None;
        }
        let n = meta.columns.len() as u64;
        let names: u64 = meta.columns.iter().map(|c| c.len() as u64).sum();
        // "INSERT INTO t (a, b) VALUES (" … ");\n" — everything around the
        // values is exact.
        let mut total = 12
            + meta.name.len() as u64
            + 2
            + names
            + 2 * n.saturating_sub(1)
            + 10
            + 2 * n.saturating_sub(1)
            + 3;
        for p in profiles {
            let w = u64::from(p.width.bound()?);
            let k = p.kinds;
            let mut b = 0u64;
            if k.contains(KindSet::NULL) {
                b = b.max(4); // "NULL"
            }
            if k.contains(KindSet::BOOL) {
                b = b.max(5); // "FALSE"
            }
            if k.contains(KindSet::LONG)
                || k.contains(KindSet::DOUBLE)
                || k.contains(KindSet::DECIMAL)
            {
                b = b.max(w);
            }
            if k.contains(KindSet::DATE) || k.contains(KindSet::TIMESTAMP) {
                b = b.max(w + 2); // quoted
            }
            if k.contains(KindSet::TEXT) {
                b = b.max(2 * w + 2); // every quote doubled, plus quotes
            }
            total += b;
        }
        Some(total)
    }

    fn name(&self) -> &'static str {
        "SQL"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgf_schema::value::Date;

    fn meta() -> TableMeta {
        TableMeta::new("t", &["a", "b", "c"])
    }

    fn run(f: &dyn Formatter, rows: &[Vec<Value>]) -> String {
        let m = meta();
        let mut out = Vec::new();
        f.begin(&mut out, &m);
        for r in rows {
            f.row(&mut out, &m, r);
        }
        f.end(&mut out, &m);
        String::from_utf8(out).expect("formatter output is UTF-8")
    }

    fn sample_row() -> Vec<Value> {
        vec![Value::Long(7), Value::text("hi"), Value::Null]
    }

    #[test]
    fn csv_basic_row() {
        let out = run(&CsvFormatter::new(), &[sample_row()]);
        assert_eq!(out, "7,hi,\n");
    }

    #[test]
    fn csv_header_and_pipe_delimiter() {
        let out = run(
            &CsvFormatter::new().with_delimiter('|').with_header(),
            &[sample_row()],
        );
        assert_eq!(out, "a|b|c\n7|hi|\n");
    }

    #[test]
    fn csv_quotes_special_fields() {
        let row = vec![
            Value::text("has,comma"),
            Value::text("has\"quote"),
            Value::text("has\nnewline"),
        ];
        let out = run(&CsvFormatter::new(), &[row]);
        assert_eq!(out, "\"has,comma\",\"has\"\"quote\",\"has\nnewline\"\n");
    }

    #[test]
    fn csv_formats_typed_values() {
        let row = vec![
            Value::decimal(12345, 2),
            Value::Date(Date::from_ymd(1995, 6, 17)),
            Value::Double(2.5),
        ];
        let out = run(&CsvFormatter::new(), &[row]);
        assert_eq!(out, "123.45,1995-06-17,2.5\n");
    }

    #[test]
    fn csv_quotes_typed_values_containing_the_delimiter() {
        // A '-' delimiter collides with date and sign renderings; the
        // affected typed fields must be quoted like any other field.
        // (Longs are emitted bare by contract, like Null — only fields
        // that historically went through the quoting scan still do.)
        let row = vec![
            Value::Date(Date::from_ymd(1995, 6, 17)),
            Value::decimal(-425, 1),
            Value::Long(7),
        ];
        let out = run(&CsvFormatter::new().with_delimiter('-'), &[row]);
        assert_eq!(out, "\"1995-06-17\"-\"-42.5\"-7\n");
    }

    #[test]
    fn json_rows_are_parseable_objects() {
        let out = run(&JsonFormatter, &[sample_row()]);
        assert_eq!(out, "{\"a\":7,\"b\":\"hi\",\"c\":null}\n");
    }

    #[test]
    fn json_escapes_strings() {
        let row = vec![
            Value::text("say \"hi\"\n"),
            Value::text("tab\there"),
            Value::Bool(true),
        ];
        let out = run(&JsonFormatter, &[row]);
        assert_eq!(
            out,
            "{\"a\":\"say \\\"hi\\\"\\n\",\"b\":\"tab\\there\",\"c\":true}\n"
        );
    }

    #[test]
    fn json_escapes_control_characters() {
        let row = vec![
            Value::text("a\u{1}b\u{1f}c"),
            Value::Long(1),
            Value::Long(2),
        ];
        let out = run(&JsonFormatter, &[row]);
        assert!(out.contains("a\\u0001b\\u001fc"), "{out}");
    }

    #[test]
    fn json_nonfinite_doubles_become_null() {
        let row = vec![
            Value::Double(f64::NAN),
            Value::Double(f64::INFINITY),
            Value::Double(1.5),
        ];
        let out = run(&JsonFormatter, &[row]);
        assert_eq!(out, "{\"a\":null,\"b\":null,\"c\":1.5}\n");
    }

    #[test]
    fn json_quotes_dates_and_timestamps() {
        let row = vec![
            Value::Date(Date::from_ymd(1995, 6, 17)),
            Value::Timestamp(86_400 + 3_723),
            Value::Null,
        ];
        let out = run(&JsonFormatter, &[row]);
        assert_eq!(
            out,
            "{\"a\":\"1995-06-17\",\"b\":\"1970-01-02 01:02:03\",\"c\":null}\n"
        );
    }

    #[test]
    fn xml_wraps_table_and_rows() {
        let out = run(&XmlFormatter, &[sample_row()]);
        assert_eq!(
            out,
            "<t>\n  <row><a>7</a><b>hi</b><c null=\"true\"/></row>\n</t>\n"
        );
    }

    #[test]
    fn xml_escapes_content() {
        let row = vec![Value::text("a<b&c"), Value::Long(1), Value::Long(2)];
        let out = run(&XmlFormatter, &[row]);
        assert!(out.contains("<a>a&lt;b&amp;c</a>"), "{out}");
    }

    #[test]
    fn sql_insert_statements() {
        let out = run(&SqlFormatter::new(), &[sample_row()]);
        assert_eq!(out, "INSERT INTO t (a, b, c) VALUES (7, 'hi', NULL);\n");
    }

    #[test]
    fn sql_escapes_quotes_and_types() {
        let row = vec![
            Value::text("O'Brien"),
            Value::Date(Date::from_ymd(2014, 11, 30)),
            Value::decimal(-50, 2),
        ];
        let out = run(&SqlFormatter::new(), &[row]);
        assert_eq!(
            out,
            "INSERT INTO t (a, b, c) VALUES ('O''Brien', '2014-11-30', -0.50);\n"
        );
    }

    fn formatters() -> Vec<Box<dyn Formatter>> {
        vec![
            Box::new(CsvFormatter::new()),
            Box::new(CsvFormatter::new().with_delimiter('-')),
            Box::new(JsonFormatter),
            Box::new(XmlFormatter),
            Box::new(SqlFormatter::new()),
        ]
    }

    fn adversarial_rows() -> Vec<Vec<Value>> {
        vec![
            sample_row(),
            vec![
                Value::decimal(-50, 2),
                Value::text("O'Brien \"x\"<&>\nnew"),
                Value::Bool(true),
            ],
            vec![
                Value::Double(2.5),
                Value::Date(Date::from_ymd(1995, 6, 17)),
                Value::Timestamp(86_400 + 3_723),
            ],
        ]
    }

    #[test]
    fn columnar_transpose_matches_row_path_on_cells_batches() {
        let m = meta();
        let rows = adversarial_rows();
        let mut batch = pdgf_schema::ColumnBatch::new();
        batch.begin(3, rows.len());
        for (c, col) in batch.columns_mut().iter_mut().enumerate() {
            let cells = col.cells_mut();
            for r in &rows {
                cells.push(r[c].clone());
            }
        }
        for f in formatters() {
            let mut by_row = Vec::new();
            for r in &rows {
                f.row(&mut by_row, &m, r);
            }
            let mut by_col = Vec::new();
            f.rows_columnar(&mut by_col, &m, &batch);
            assert_eq!(
                String::from_utf8_lossy(&by_row),
                String::from_utf8_lossy(&by_col),
                "{} columnar transpose diverged",
                f.name()
            );
        }
    }

    #[test]
    fn columnar_transpose_matches_row_path_on_typed_batches() {
        let m = meta();
        let mut batch = pdgf_schema::ColumnBatch::new();
        batch.begin(3, 3);
        batch.columns_mut()[0].longs_mut().extend([1, -2, 3]);
        {
            let t = batch.columns_mut()[1].text_mut();
            for s in ["plain", "with,comma 'q' \"d\"", "<markup&>"] {
                t.push_str(s);
            }
        }
        batch.columns_mut()[2]
            .decimals_mut(2)
            .extend([0, -12345, 99]);
        let rows: Vec<Vec<Value>> = (0..3)
            .map(|i| batch.columns().iter().map(|c| c.value(i)).collect())
            .collect();
        for f in formatters() {
            let mut by_row = Vec::new();
            for r in &rows {
                f.row(&mut by_row, &m, r);
            }
            let mut by_col = Vec::new();
            f.rows_columnar(&mut by_col, &m, &batch);
            assert_eq!(
                String::from_utf8_lossy(&by_row),
                String::from_utf8_lossy(&by_col),
                "{} typed transpose diverged",
                f.name()
            );
        }
    }

    #[test]
    fn default_rows_columnar_materializes_rows() {
        // A formatter that only implements `row` gets a correct (if
        // allocating) columnar path from the trait default.
        struct Plain;
        impl Formatter for Plain {
            fn row(&self, out: &mut Vec<u8>, _meta: &TableMeta, values: &[Value]) {
                for v in values {
                    fmtfast::write_value(out, v);
                    out.push(b';');
                }
                out.push(b'\n');
            }
            fn name(&self) -> &'static str {
                "Plain"
            }
        }
        let m = meta();
        let mut batch = pdgf_schema::ColumnBatch::new();
        batch.begin(3, 2);
        batch.columns_mut()[0].longs_mut().extend([7, 8]);
        {
            let t = batch.columns_mut()[1].text_mut();
            t.push_str("a");
            t.push_str("b");
        }
        batch.columns_mut()[2]
            .cells_mut()
            .extend([Value::Null, Value::Bool(true)]);
        let mut out = Vec::new();
        Plain.rows_columnar(&mut out, &m, &batch);
        assert_eq!(String::from_utf8_lossy(&out), "7;a;;\n8;b;true;\n");
    }

    #[test]
    fn formatters_report_names() {
        assert_eq!(CsvFormatter::new().name(), "CSV");
        assert_eq!(JsonFormatter.name(), "JSON");
        assert_eq!(XmlFormatter.name(), "XML");
        assert_eq!(SqlFormatter::new().name(), "SQL");
    }

    mod row_bounds {
        use super::*;
        use pdgf_schema::absint::{
            self, null_wrap, Cardinality, Draws, KindSet, StaticProfile, Width,
        };

        /// Profiles and matching adversarial sample rows: every value stays
        /// within its column's profile, chosen to stress the escaping worst
        /// cases (quotes, control characters, markup, the delimiter).
        fn columns() -> (TableMeta, Vec<StaticProfile>, Vec<Vec<Value>>) {
            let meta = TableMeta::new("bounds", &["k", "txt", "price", "d", "flag", "opt"]);
            let text_profile = StaticProfile {
                kinds: KindSet::TEXT,
                interval: None,
                width: Width::AtMost(8),
                ascii: true,
                null_prob: 0.0,
                cardinality: Cardinality::Unbounded,
                draws: Draws::exact(1),
            };
            let profiles = vec![
                absint::long_profile(-9999, 9999),
                text_profile,
                absint::decimal_profile(-99999, 99999, 2),
                absint::date_profile(8000, 11000, pdgf_schema::model::DateFormat::Iso),
                absint::random_bool_profile(0.5),
                null_wrap(0.5, absint::long_profile(0, 500), 100),
            ];
            let rows = vec![
                vec![
                    Value::Long(-9999),
                    Value::text("\"\"\"\"\"\"\"\""), // 8 quotes: CSV doubles all
                    Value::decimal(-99999, 2),
                    Value::Date(pdgf_schema::value::Date(11000)),
                    Value::Bool(false),
                    Value::Null,
                ],
                vec![
                    Value::Long(0),
                    Value::text("\u{1}\u{2}\u{3}\u{1f}\u{1}\u{2}\u{3}\u{1f}"), // JSON \u00XX
                    Value::decimal(0, 2),
                    Value::Date(pdgf_schema::value::Date(8000)),
                    Value::Bool(true),
                    Value::Long(500),
                ],
                vec![
                    Value::Long(42),
                    Value::text("&&&&&&&&"), // XML &amp; expansion
                    Value::decimal(12345, 2),
                    Value::Date(pdgf_schema::value::Date(9500)),
                    Value::Bool(true),
                    Value::Long(7),
                ],
                vec![
                    Value::Long(7),
                    Value::text("''''''''"), // SQL quote doubling
                    Value::decimal(-1, 2),
                    Value::Date(pdgf_schema::value::Date(10000)),
                    Value::Bool(false),
                    Value::Null,
                ],
            ];
            (meta, profiles, rows)
        }

        fn assert_bound_holds(f: &dyn Formatter) {
            let (meta, profiles, rows) = columns();
            let bound = f
                .max_row_bytes(&meta, &profiles)
                .expect("all widths bounded");
            for row in &rows {
                let mut out = Vec::new();
                f.row(&mut out, &meta, row);
                assert!(
                    out.len() as u64 <= bound,
                    "{}: row rendered {} bytes, bound {bound}: {:?}",
                    f.name(),
                    out.len(),
                    String::from_utf8_lossy(&out)
                );
            }
        }

        #[test]
        fn csv_bound_holds() {
            assert_bound_holds(&CsvFormatter::new());
            assert_bound_holds(&CsvFormatter::new().with_delimiter('|'));
            // '-' appears in typed renderings, forcing the quoting scan.
            assert_bound_holds(&CsvFormatter::new().with_delimiter('-'));
        }

        #[test]
        fn json_bound_holds() {
            assert_bound_holds(&JsonFormatter);
        }

        #[test]
        fn xml_bound_holds() {
            assert_bound_holds(&XmlFormatter);
        }

        #[test]
        fn sql_bound_holds() {
            assert_bound_holds(&SqlFormatter::new());
        }

        #[test]
        fn unbounded_width_yields_no_bound() {
            let meta = TableMeta::new("t", &["a"]);
            let p = StaticProfile::unknown();
            let p = std::slice::from_ref(&p);
            assert_eq!(CsvFormatter::new().max_row_bytes(&meta, p), None);
            assert_eq!(JsonFormatter.max_row_bytes(&meta, p), None);
            assert_eq!(XmlFormatter.max_row_bytes(&meta, p), None);
            assert_eq!(SqlFormatter::new().max_row_bytes(&meta, p), None);
        }

        #[test]
        fn mismatched_profile_count_yields_no_bound() {
            let meta = TableMeta::new("t", &["a", "b"]);
            let p = absint::long_profile(0, 9);
            assert_eq!(CsvFormatter::new().max_row_bytes(&meta, &[p]), None);
        }

        #[test]
        fn bounds_are_reasonably_tight_for_plain_numbers() {
            // A single bounded long: "9999\n" is 5 bytes; the CSV bound
            // must not balloon past the worst rendering.
            let meta = TableMeta::new("t", &["a"]);
            let p = absint::long_profile(0, 9999);
            let bound = CsvFormatter::new().max_row_bytes(&meta, &[p]).unwrap();
            assert_eq!(bound, 5);
        }
    }
}
