//! Row formatters: typed values to bytes, exactly once per cell.
//!
//! Generators hand the output system *typed* [`Value`]s; the paper calls
//! the resulting strategy lazy formatting — "even very complex values will
//! only be formatted once", and formatting cost (the dominant cost in
//! Figure 9) is paid only for cells that are actually emitted.

use pdgf_schema::Value;
use std::fmt::Write as _;

/// Static description of the table being formatted.
#[derive(Debug, Clone)]
pub struct TableMeta {
    /// Table name (used by XML/SQL formats).
    pub name: String,
    /// Column names in emission order.
    pub columns: Vec<String>,
}

impl TableMeta {
    /// Convenience constructor.
    pub fn new(name: &str, columns: &[&str]) -> Self {
        Self {
            name: name.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
        }
    }
}

/// Converts rows of values into output bytes.
///
/// Formatters are stateless and shared across worker threads; all output
/// goes through the caller-provided buffer so the hot path performs no
/// allocation beyond buffer growth.
pub trait Formatter: Send + Sync {
    /// Emit anything that precedes the first row (headers, openers).
    fn begin(&self, out: &mut String, meta: &TableMeta) {
        let _ = (out, meta);
    }

    /// Emit one row.
    fn row(&self, out: &mut String, meta: &TableMeta, values: &[Value]);

    /// Emit anything that follows the last row (closers).
    fn end(&self, out: &mut String, meta: &TableMeta) {
        let _ = (out, meta);
    }

    /// Format name for diagnostics.
    fn name(&self) -> &'static str;
}

/// Delimiter-separated values. Fields containing the delimiter, quotes,
/// or newlines are quoted with `"` and embedded quotes doubled (RFC 4180).
pub struct CsvFormatter {
    delimiter: char,
    header: bool,
}

impl CsvFormatter {
    /// Standard comma-separated output without a header row (DBGen-style).
    pub fn new() -> Self {
        Self { delimiter: ',', header: false }
    }

    /// Customize the delimiter (e.g. `'|'` for TPC-H tbl files).
    pub fn with_delimiter(mut self, delimiter: char) -> Self {
        self.delimiter = delimiter;
        self
    }

    /// Emit a header row with column names.
    pub fn with_header(mut self) -> Self {
        self.header = true;
        self
    }

    fn push_field(&self, out: &mut String, text: &str) {
        let needs_quoting = text
            .chars()
            .any(|c| c == self.delimiter || c == '"' || c == '\n' || c == '\r');
        if needs_quoting {
            out.push('"');
            for c in text.chars() {
                if c == '"' {
                    out.push('"');
                }
                out.push(c);
            }
            out.push('"');
        } else {
            out.push_str(text);
        }
    }
}

impl Default for CsvFormatter {
    fn default() -> Self {
        Self::new()
    }
}

impl Formatter for CsvFormatter {
    fn begin(&self, out: &mut String, meta: &TableMeta) {
        if self.header {
            for (i, c) in meta.columns.iter().enumerate() {
                if i > 0 {
                    out.push(self.delimiter);
                }
                self.push_field(out, c);
            }
            out.push('\n');
        }
    }

    fn row(&self, out: &mut String, _meta: &TableMeta, values: &[Value]) {
        let mut scratch = String::new();
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                out.push(self.delimiter);
            }
            match v {
                // Fast paths that cannot need quoting.
                Value::Null => {}
                Value::Long(x) => {
                    let _ = write!(out, "{x}");
                }
                Value::Text(s) => self.push_field(out, s),
                other => {
                    scratch.clear();
                    let _ = write!(scratch, "{other}");
                    self.push_field(out, &scratch);
                }
            }
        }
        out.push('\n');
    }

    fn name(&self) -> &'static str {
        "CSV"
    }
}

/// Newline-delimited JSON: one object per row.
pub struct JsonFormatter;

fn json_escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Formatter for JsonFormatter {
    fn row(&self, out: &mut String, meta: &TableMeta, values: &[Value]) {
        out.push('{');
        for (i, (col, v)) in meta.columns.iter().zip(values).enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_escape_into(out, col);
            out.push(':');
            match v {
                Value::Null => out.push_str("null"),
                Value::Bool(b) => {
                    let _ = write!(out, "{b}");
                }
                Value::Long(x) => {
                    let _ = write!(out, "{x}");
                }
                Value::Double(x) => {
                    if x.is_finite() {
                        let _ = write!(out, "{x}");
                    } else {
                        out.push_str("null");
                    }
                }
                Value::Decimal { .. } => {
                    let _ = write!(out, "{v}");
                }
                other => {
                    let mut scratch = String::new();
                    let _ = write!(scratch, "{other}");
                    json_escape_into(out, &scratch);
                }
            }
        }
        out.push_str("}\n");
    }

    fn name(&self) -> &'static str {
        "JSON"
    }
}

/// XML rows: `<table><row><col>value</col>…</row>…</table>`.
pub struct XmlFormatter;

fn xml_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            c => out.push(c),
        }
    }
}

impl Formatter for XmlFormatter {
    fn begin(&self, out: &mut String, meta: &TableMeta) {
        let _ = writeln!(out, "<{}>", meta.name);
    }

    fn row(&self, out: &mut String, meta: &TableMeta, values: &[Value]) {
        out.push_str("  <row>");
        let mut scratch = String::new();
        for (col, v) in meta.columns.iter().zip(values) {
            if v.is_null() {
                let _ = write!(out, "<{col} null=\"true\"/>");
                continue;
            }
            let _ = write!(out, "<{col}>");
            scratch.clear();
            let _ = write!(scratch, "{v}");
            xml_escape_into(out, &scratch);
            let _ = write!(out, "</{col}>");
        }
        out.push_str("</row>\n");
    }

    fn end(&self, out: &mut String, meta: &TableMeta) {
        let _ = writeln!(out, "</{}>", meta.name);
    }

    fn name(&self) -> &'static str {
        "XML"
    }
}

/// SQL `INSERT` statements, loadable through any SQL interface (the
/// paper: "data can be loaded into the target database either using SQL
/// statements generated by PDGF or a bulk load option").
pub struct SqlFormatter {
    /// Rows per multi-row `INSERT` statement.
    batch: usize,
}

impl SqlFormatter {
    /// One `INSERT` per row.
    pub fn new() -> Self {
        Self { batch: 1 }
    }

    /// Multi-row inserts (`INSERT ... VALUES (...), (...), ...`) are not
    /// batched across `row` calls; `batch` is kept for API completeness.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }
}

impl Default for SqlFormatter {
    fn default() -> Self {
        Self::new()
    }
}

impl Formatter for SqlFormatter {
    fn row(&self, out: &mut String, meta: &TableMeta, values: &[Value]) {
        let _ = write!(out, "INSERT INTO {} (", meta.name);
        for (i, c) in meta.columns.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(c);
        }
        out.push_str(") VALUES (");
        let mut scratch = String::new();
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            match v {
                Value::Null => out.push_str("NULL"),
                Value::Bool(b) => {
                    let _ = write!(out, "{}", if *b { "TRUE" } else { "FALSE" });
                }
                Value::Long(x) => {
                    let _ = write!(out, "{x}");
                }
                Value::Double(_) | Value::Decimal { .. } => {
                    let _ = write!(out, "{v}");
                }
                other => {
                    // Text, dates, timestamps as quoted literals with
                    // doubled single quotes.
                    scratch.clear();
                    let _ = write!(scratch, "{other}");
                    out.push('\'');
                    for c in scratch.chars() {
                        if c == '\'' {
                            out.push('\'');
                        }
                        out.push(c);
                    }
                    out.push('\'');
                }
            }
        }
        out.push_str(");\n");
    }

    fn name(&self) -> &'static str {
        "SQL"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgf_schema::value::Date;

    fn meta() -> TableMeta {
        TableMeta::new("t", &["a", "b", "c"])
    }

    fn run(f: &dyn Formatter, rows: &[Vec<Value>]) -> String {
        let m = meta();
        let mut out = String::new();
        f.begin(&mut out, &m);
        for r in rows {
            f.row(&mut out, &m, r);
        }
        f.end(&mut out, &m);
        out
    }

    fn sample_row() -> Vec<Value> {
        vec![Value::Long(7), Value::text("hi"), Value::Null]
    }

    #[test]
    fn csv_basic_row() {
        let out = run(&CsvFormatter::new(), &[sample_row()]);
        assert_eq!(out, "7,hi,\n");
    }

    #[test]
    fn csv_header_and_pipe_delimiter() {
        let out = run(
            &CsvFormatter::new().with_delimiter('|').with_header(),
            &[sample_row()],
        );
        assert_eq!(out, "a|b|c\n7|hi|\n");
    }

    #[test]
    fn csv_quotes_special_fields() {
        let row = vec![
            Value::text("has,comma"),
            Value::text("has\"quote"),
            Value::text("has\nnewline"),
        ];
        let out = run(&CsvFormatter::new(), &[row]);
        assert_eq!(out, "\"has,comma\",\"has\"\"quote\",\"has\nnewline\"\n");
    }

    #[test]
    fn csv_formats_typed_values() {
        let row = vec![
            Value::decimal(12345, 2),
            Value::Date(Date::from_ymd(1995, 6, 17)),
            Value::Double(2.5),
        ];
        let out = run(&CsvFormatter::new(), &[row]);
        assert_eq!(out, "123.45,1995-06-17,2.5\n");
    }

    #[test]
    fn json_rows_are_parseable_objects() {
        let out = run(&JsonFormatter, &[sample_row()]);
        assert_eq!(out, "{\"a\":7,\"b\":\"hi\",\"c\":null}\n");
    }

    #[test]
    fn json_escapes_strings() {
        let row = vec![
            Value::text("say \"hi\"\n"),
            Value::text("tab\there"),
            Value::Bool(true),
        ];
        let out = run(&JsonFormatter, &[row]);
        assert_eq!(
            out,
            "{\"a\":\"say \\\"hi\\\"\\n\",\"b\":\"tab\\there\",\"c\":true}\n"
        );
    }

    #[test]
    fn json_nonfinite_doubles_become_null() {
        let row = vec![
            Value::Double(f64::NAN),
            Value::Double(f64::INFINITY),
            Value::Double(1.5),
        ];
        let out = run(&JsonFormatter, &[row]);
        assert_eq!(out, "{\"a\":null,\"b\":null,\"c\":1.5}\n");
    }

    #[test]
    fn xml_wraps_table_and_rows() {
        let out = run(&XmlFormatter, &[sample_row()]);
        assert_eq!(
            out,
            "<t>\n  <row><a>7</a><b>hi</b><c null=\"true\"/></row>\n</t>\n"
        );
    }

    #[test]
    fn xml_escapes_content() {
        let row = vec![Value::text("a<b&c"), Value::Long(1), Value::Long(2)];
        let out = run(&XmlFormatter, &[row]);
        assert!(out.contains("<a>a&lt;b&amp;c</a>"), "{out}");
    }

    #[test]
    fn sql_insert_statements() {
        let out = run(&SqlFormatter::new(), &[sample_row()]);
        assert_eq!(out, "INSERT INTO t (a, b, c) VALUES (7, 'hi', NULL);\n");
    }

    #[test]
    fn sql_escapes_quotes_and_types() {
        let row = vec![
            Value::text("O'Brien"),
            Value::Date(Date::from_ymd(2014, 11, 30)),
            Value::decimal(-50, 2),
        ];
        let out = run(&SqlFormatter::new(), &[row]);
        assert_eq!(
            out,
            "INSERT INTO t (a, b, c) VALUES ('O''Brien', '2014-11-30', -0.50);\n"
        );
    }

    #[test]
    fn formatters_report_names() {
        assert_eq!(CsvFormatter::new().name(), "CSV");
        assert_eq!(JsonFormatter.name(), "JSON");
        assert_eq!(XmlFormatter.name(), "XML");
        assert_eq!(SqlFormatter::new().name(), "SQL");
    }
}
