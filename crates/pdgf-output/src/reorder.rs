//! Sequence reordering for sorted parallel output.
//!
//! Work packages complete out of order under parallel generation, but
//! "PDGF writes sorted output into a single file" (Section 4's DBGen
//! comparison). The [`ReorderBuffer`] holds early arrivals and releases
//! them in sequence, so the downstream sink sees packages in order
//! regardless of worker scheduling.
//!
//! The buffer is a ring of `Option<T>` slots indexed relative to the next
//! expected sequence number. Compared to the previous `BTreeMap`-backed
//! version this allocates nothing per push (no tree nodes, no returned
//! `Vec`): the in-order fast path hands the payload straight back, and
//! out-of-order arrivals land in a slot of a `VecDeque` whose capacity
//! stabilizes at the worker channel depth after warm-up.

use std::collections::VecDeque;

/// Reorders out-of-order `(sequence, payload)` arrivals into sequence
/// order. Sequences start at 0 and must be dense and unique.
#[derive(Debug)]
pub struct ReorderBuffer<T> {
    next: u64,
    /// `ring[i]` holds the payload for sequence `next + i`, if arrived.
    ring: VecDeque<Option<T>>,
    parked: usize,
}

impl<T> Default for ReorderBuffer<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ReorderBuffer<T> {
    /// Empty buffer expecting sequence 0 first.
    pub fn new() -> Self {
        Self {
            next: 0,
            ring: VecDeque::new(),
            parked: 0,
        }
    }

    /// Offer a completed package. If `seq` is the next expected sequence
    /// the payload comes straight back (the allocation-free fast path);
    /// otherwise it is parked. After a `Some` return, drain any newly
    /// unblocked successors with [`pop_ready`](Self::pop_ready).
    ///
    /// # Panics
    /// Panics on duplicate or stale sequence numbers.
    pub fn push(&mut self, seq: u64, payload: T) -> Option<T> {
        assert!(
            seq >= self.next,
            "duplicate or stale sequence {seq} (next expected {})",
            self.next
        );
        let idx = (seq - self.next) as usize;
        if idx == 0 && self.ring.is_empty() {
            self.next += 1;
            return Some(payload);
        }
        if idx >= self.ring.len() {
            // Grow to cover the new high-water slot; bounded in practice
            // by the worker channel capacity.
            self.ring.resize_with(idx + 1, || None);
        }
        assert!(
            self.ring[idx].is_none(),
            "duplicate or stale sequence {seq} (next expected {})",
            self.next
        );
        if idx == 0 {
            self.next += 1;
            self.ring.pop_front();
            return Some(payload);
        }
        self.ring[idx] = Some(payload);
        self.parked += 1;
        None
    }

    /// Release the next in-sequence payload, if it has arrived.
    pub fn pop_ready(&mut self) -> Option<T> {
        match self.ring.front_mut() {
            Some(slot @ Some(_)) => {
                let payload = slot.take();
                self.ring.pop_front();
                self.next += 1;
                self.parked -= 1;
                payload
            }
            _ => None,
        }
    }

    /// Number of packages parked waiting for their predecessors.
    pub fn pending(&self) -> usize {
        self.parked
    }

    /// The sequence number the buffer is waiting for.
    pub fn next_expected(&self) -> u64 {
        self.next
    }

    /// True when nothing is parked.
    pub fn is_drained(&self) -> bool {
        self.parked == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Push and collect everything releasable, old-API style.
    fn push_all<T>(b: &mut ReorderBuffer<T>, seq: u64, payload: T) -> Vec<T> {
        let mut out = Vec::new();
        if let Some(p) = b.push(seq, payload) {
            out.push(p);
            while let Some(p) = b.pop_ready() {
                out.push(p);
            }
        }
        out
    }

    #[test]
    fn in_order_passthrough() {
        let mut b = ReorderBuffer::new();
        assert_eq!(b.push(0, "a"), Some("a"));
        assert_eq!(b.push(1, "b"), Some("b"));
        assert!(b.is_drained());
        assert_eq!(b.next_expected(), 2);
        assert!(b.pop_ready().is_none());
    }

    #[test]
    fn out_of_order_is_held_and_released_in_runs() {
        let mut b = ReorderBuffer::new();
        assert!(b.push(2, "c").is_none());
        assert!(b.push(1, "b").is_none());
        assert_eq!(b.pending(), 2);
        assert!(b.pop_ready().is_none(), "nothing ready before seq 0");
        assert_eq!(push_all(&mut b, 0, "a"), vec!["a", "b", "c"]);
        assert!(b.is_drained());
        assert_eq!(b.next_expected(), 3);
    }

    #[test]
    fn random_permutation_drains_in_order() {
        // Deterministic scramble of 0..100.
        let mut order: Vec<u64> = (0..100).collect();
        for i in 0..order.len() {
            let j = (i * 37 + 11) % order.len();
            order.swap(i, j);
        }
        let mut b = ReorderBuffer::new();
        let mut released = Vec::new();
        for seq in order {
            released.extend(push_all(&mut b, seq, seq));
        }
        assert_eq!(released, (0..100).collect::<Vec<u64>>());
        assert!(b.is_drained());
    }

    #[test]
    fn gap_then_fill_releases_through_the_ring() {
        let mut b = ReorderBuffer::new();
        assert_eq!(b.push(0, 0), Some(0));
        assert!(b.push(3, 3).is_none());
        assert!(b.push(2, 2).is_none());
        // Seq 1 arrives with parked successors: delivered via the ring.
        assert_eq!(push_all(&mut b, 1, 1), vec![1, 2, 3]);
        assert_eq!(b.next_expected(), 4);
        assert!(b.is_drained());
    }

    #[test]
    #[should_panic(expected = "duplicate or stale")]
    fn duplicate_sequences_panic() {
        let mut b = ReorderBuffer::new();
        b.push(0, ());
        b.push(0, ());
    }

    #[test]
    #[should_panic(expected = "duplicate or stale")]
    fn pending_duplicate_panics() {
        let mut b = ReorderBuffer::new();
        b.push(5, ());
        b.push(5, ());
    }
}
