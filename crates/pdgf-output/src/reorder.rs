//! Sequence reordering for sorted parallel output.
//!
//! Work packages complete out of order under parallel generation, but
//! "PDGF writes sorted output into a single file" (Section 4's DBGen
//! comparison). The [`ReorderBuffer`] holds early arrivals and releases a
//! maximal in-order run on every push, so the downstream sink sees
//! packages in sequence regardless of worker scheduling.

use std::collections::BTreeMap;

/// Reorders out-of-order `(sequence, payload)` arrivals into sequence
/// order. Sequences start at 0 and must be dense and unique.
#[derive(Debug)]
pub struct ReorderBuffer<T> {
    next: u64,
    pending: BTreeMap<u64, T>,
}

impl<T> Default for ReorderBuffer<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ReorderBuffer<T> {
    /// Empty buffer expecting sequence 0 first.
    pub fn new() -> Self {
        Self { next: 0, pending: BTreeMap::new() }
    }

    /// Offer a completed package; returns every payload that is now
    /// releasable in order (possibly empty, possibly several).
    pub fn push(&mut self, seq: u64, payload: T) -> Vec<T> {
        assert!(
            seq >= self.next && !self.pending.contains_key(&seq),
            "duplicate or stale sequence {seq} (next expected {})",
            self.next
        );
        self.pending.insert(seq, payload);
        let mut ready = Vec::new();
        while let Some(payload) = self.pending.remove(&self.next) {
            ready.push(payload);
            self.next += 1;
        }
        ready
    }

    /// Number of packages parked waiting for their predecessors.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// The sequence number the buffer is waiting for.
    pub fn next_expected(&self) -> u64 {
        self.next
    }

    /// True when nothing is parked.
    pub fn is_drained(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_passthrough() {
        let mut b = ReorderBuffer::new();
        assert_eq!(b.push(0, "a"), vec!["a"]);
        assert_eq!(b.push(1, "b"), vec!["b"]);
        assert!(b.is_drained());
        assert_eq!(b.next_expected(), 2);
    }

    #[test]
    fn out_of_order_is_held_and_released_in_runs() {
        let mut b = ReorderBuffer::new();
        assert!(b.push(2, "c").is_empty());
        assert!(b.push(1, "b").is_empty());
        assert_eq!(b.pending(), 2);
        assert_eq!(b.push(0, "a"), vec!["a", "b", "c"]);
        assert!(b.is_drained());
    }

    #[test]
    fn random_permutation_drains_in_order() {
        // Deterministic scramble of 0..100.
        let mut order: Vec<u64> = (0..100).collect();
        for i in 0..order.len() {
            let j = (i * 37 + 11) % order.len();
            order.swap(i, j);
        }
        let mut b = ReorderBuffer::new();
        let mut released = Vec::new();
        for seq in order {
            released.extend(b.push(seq, seq));
        }
        assert_eq!(released, (0..100).collect::<Vec<u64>>());
        assert!(b.is_drained());
    }

    #[test]
    #[should_panic(expected = "duplicate or stale")]
    fn duplicate_sequences_panic() {
        let mut b = ReorderBuffer::new();
        b.push(0, ());
        b.push(0, ());
    }

    #[test]
    #[should_panic(expected = "duplicate or stale")]
    fn pending_duplicate_panics() {
        let mut b = ReorderBuffer::new();
        b.push(5, ());
        b.push(5, ());
    }
}
