//! Loom models of the output-side concurrency pieces: `BufferPool`
//! buffer exclusivity and `ReorderBuffer` ordering under concurrent
//! producers. Build with `RUSTFLAGS="--cfg loom" cargo test -p
//! pdgf-output --test loom` (see `scripts/concurrency.sh`).
#![cfg(loom)]

use loom::sync::{Arc, Mutex};
use pdgf_output::{BufferPool, ReorderBuffer};

/// Two threads cycling buffers through one pool must never observe
/// another thread's bytes: a taken buffer is exclusively owned (no
/// double-take of the same buffer), and `put` hands back cleared storage.
#[test]
fn buffer_pool_hands_out_exclusive_cleared_buffers() {
    loom::model(|| {
        let pool = Arc::new(BufferPool::new(2));
        let handles: Vec<_> = (0..2u8)
            .map(|tag| {
                let pool = pool.clone();
                loom::thread::spawn(move || {
                    for round in 0..3u8 {
                        let mut buf = pool.take();
                        assert!(buf.is_empty(), "pool returned a dirty buffer");
                        buf.extend_from_slice(&[tag, round, tag, round]);
                        loom::thread::yield_now();
                        assert_eq!(
                            &buf[..],
                            &[tag, round, tag, round],
                            "another thread wrote into an owned buffer"
                        );
                        pool.put(buf);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(pool.idle() <= 2, "pool exceeded its bound");
    });
}

/// Two producers complete a job's packages out of order; the reorder
/// buffer (under a mutex, as in the scheduler's output stage) must
/// release every package exactly once, in sequence order.
#[test]
fn reorder_buffer_releases_in_order_under_concurrent_producers() {
    const PACKAGES: u64 = 6;
    loom::model(|| {
        let state = Arc::new(Mutex::new((ReorderBuffer::<u64>::new(), Vec::<u64>::new())));
        let handles: Vec<_> = (0..2u64)
            .map(|parity| {
                let state = state.clone();
                loom::thread::spawn(move || {
                    // Thread 0 pushes even seqs, thread 1 odd seqs.
                    for seq in (parity..PACKAGES).step_by(2) {
                        let mut guard = state.lock().unwrap();
                        let (reorder, written) = &mut *guard;
                        let mut ready = reorder.push(seq, seq);
                        while let Some(v) = ready {
                            written.push(v);
                            ready = reorder.pop_ready();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let guard = state.lock().unwrap();
        let (reorder, written) = &*guard;
        assert_eq!(
            written,
            &(0..PACKAGES).collect::<Vec<_>>(),
            "packages written out of order or more than once"
        );
        assert!(reorder.is_drained(), "packages lost inside the buffer");
    });
}
