//! Schema catalog: the metadata DBSynth's basic extraction reads.

use pdgf_schema::SqlType;

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// SQL type.
    pub sql_type: SqlType,
    /// May the column hold NULL?
    pub nullable: bool,
    /// Part of the primary key?
    pub primary: bool,
}

impl ColumnDef {
    /// Nullable, non-key column.
    pub fn new(name: &str, sql_type: SqlType) -> Self {
        Self {
            name: name.to_string(),
            sql_type,
            nullable: true,
            primary: false,
        }
    }

    /// Mark NOT NULL.
    pub fn not_null(mut self) -> Self {
        self.nullable = false;
        self
    }

    /// Mark PRIMARY KEY (implies NOT NULL).
    pub fn primary_key(mut self) -> Self {
        self.primary = true;
        self.nullable = false;
        self
    }
}

/// A foreign-key constraint: `column` references `ref_table.ref_column`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing column in this table.
    pub column: String,
    /// Referenced table.
    pub ref_table: String,
    /// Referenced column.
    pub ref_column: String,
}

/// A table definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDef {
    /// Table name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<ColumnDef>,
    /// Foreign-key constraints.
    pub foreign_keys: Vec<ForeignKey>,
}

impl TableDef {
    /// Table with no columns yet (builder style).
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            columns: Vec::new(),
            foreign_keys: Vec::new(),
        }
    }

    /// Append a column.
    pub fn column(mut self, col: ColumnDef) -> Self {
        self.columns.push(col);
        self
    }

    /// Append a foreign key.
    pub fn foreign_key(mut self, column: &str, ref_table: &str, ref_column: &str) -> Self {
        self.foreign_keys.push(ForeignKey {
            column: column.to_string(),
            ref_table: ref_table.to_string(),
            ref_column: ref_column.to_string(),
        });
        self
    }

    /// Index of a column by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// The foreign key departing from `column`, if any.
    pub fn foreign_key_for(&self, column: &str) -> Option<&ForeignKey> {
        self.foreign_keys
            .iter()
            .find(|fk| fk.column.eq_ignore_ascii_case(column))
    }

    /// Render as a `CREATE TABLE` statement (the schema translator path).
    pub fn to_ddl(&self) -> String {
        let mut out = format!("CREATE TABLE {} (\n", self.name);
        let pk: Vec<&str> = self
            .columns
            .iter()
            .filter(|c| c.primary)
            .map(|c| c.name.as_str())
            .collect();
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!("  {} {}", c.name, c.sql_type));
            if !c.nullable {
                out.push_str(" NOT NULL");
            }
            if i + 1 < self.columns.len() || !pk.is_empty() || !self.foreign_keys.is_empty() {
                out.push(',');
            }
            out.push('\n');
        }
        if !pk.is_empty() {
            out.push_str(&format!("  PRIMARY KEY ({})", pk.join(", ")));
            if !self.foreign_keys.is_empty() {
                out.push(',');
            }
            out.push('\n');
        }
        for (i, fk) in self.foreign_keys.iter().enumerate() {
            out.push_str(&format!(
                "  FOREIGN KEY ({}) REFERENCES {} ({})",
                fk.column, fk.ref_table, fk.ref_column
            ));
            if i + 1 < self.foreign_keys.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str(");\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn orders() -> TableDef {
        TableDef::new("orders")
            .column(ColumnDef::new("o_id", SqlType::BigInt).primary_key())
            .column(ColumnDef::new("o_cust", SqlType::BigInt).not_null())
            .column(ColumnDef::new("o_comment", SqlType::Varchar(79)))
            .foreign_key("o_cust", "customer", "c_id")
    }

    #[test]
    fn column_lookup_is_case_insensitive() {
        let t = orders();
        assert_eq!(t.column_index("O_ID"), Some(0));
        assert_eq!(t.column_index("o_comment"), Some(2));
        assert_eq!(t.column_index("nope"), None);
    }

    #[test]
    fn primary_key_implies_not_null() {
        let t = orders();
        assert!(t.columns[0].primary);
        assert!(!t.columns[0].nullable);
        assert!(t.columns[2].nullable);
    }

    #[test]
    fn foreign_keys_resolve_per_column() {
        let t = orders();
        let fk = t.foreign_key_for("o_cust").unwrap();
        assert_eq!(fk.ref_table, "customer");
        assert_eq!(fk.ref_column, "c_id");
        assert!(t.foreign_key_for("o_id").is_none());
    }

    #[test]
    fn ddl_contains_all_constraints() {
        let ddl = orders().to_ddl();
        assert!(ddl.contains("CREATE TABLE orders"));
        assert!(ddl.contains("o_id BIGINT NOT NULL"));
        assert!(ddl.contains("o_comment VARCHAR(79)"));
        assert!(ddl.contains("PRIMARY KEY (o_id)"));
        assert!(ddl.contains("FOREIGN KEY (o_cust) REFERENCES customer (c_id)"));
    }
}
