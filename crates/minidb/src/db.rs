//! The database object: catalog + storage + CSV exchange.

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::Path;

use pdgf_schema::value::Date;
use pdgf_schema::{SqlType, Value};

use crate::catalog::TableDef;
use crate::table::TableData;

/// Database-level error.
#[derive(Debug)]
pub enum DbError {
    /// Table name not found.
    NoSuchTable(String),
    /// Table already exists.
    DuplicateTable(String),
    /// Constraint violation on insert/load.
    Constraint(String),
    /// SQL parse/execution failure.
    Sql(String),
    /// I/O failure (CSV exchange).
    Io(io::Error),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            DbError::DuplicateTable(t) => write!(f, "table exists: {t}"),
            DbError::Constraint(m) => write!(f, "{m}"),
            DbError::Sql(m) => write!(f, "sql error: {m}"),
            DbError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<io::Error> for DbError {
    fn from(e: io::Error) -> Self {
        DbError::Io(e)
    }
}

/// An in-memory relational database.
#[derive(Debug, Default, Clone)]
pub struct Database {
    tables: BTreeMap<String, TableData>,
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a table from its definition.
    pub fn create_table(&mut self, def: TableDef) -> Result<(), DbError> {
        let key = def.name.to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            return Err(DbError::DuplicateTable(def.name));
        }
        self.tables.insert(key, TableData::new(def));
        Ok(())
    }

    /// Drop a table.
    pub fn drop_table(&mut self, name: &str) -> Result<(), DbError> {
        self.tables
            .remove(&name.to_ascii_lowercase())
            .map(|_| ())
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    /// Table names in sorted order.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables
            .values()
            .map(|t| t.def().name.as_str())
            .collect()
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Result<&TableData, DbError> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    /// Look up a table mutably.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut TableData, DbError> {
        self.tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    /// Insert one row.
    pub fn insert(&mut self, table: &str, row: Vec<Value>) -> Result<(), DbError> {
        self.table_mut(table)?
            .insert(row)
            .map_err(|e| DbError::Constraint(e.to_string()))
    }

    /// Bulk load rows (the paper's "bulk load option, if featured by the
    /// target database").
    pub fn bulk_load(&mut self, table: &str, rows: Vec<Vec<Value>>) -> Result<usize, DbError> {
        self.table_mut(table)?
            .bulk_load(rows)
            .map_err(|e| DbError::Constraint(e.to_string()))
    }

    /// Parse a CSV cell into the column's type. Empty text means NULL.
    pub fn parse_cell(text: &str, ty: SqlType) -> Result<Value, DbError> {
        if text.is_empty() {
            return Ok(Value::Null);
        }
        let bad = |t: &str| DbError::Constraint(format!("cannot parse {t:?} as {ty}"));
        Ok(match ty {
            SqlType::Boolean => Value::Bool(match text {
                "true" | "TRUE" | "t" | "1" => true,
                "false" | "FALSE" | "f" | "0" => false,
                _ => return Err(bad(text)),
            }),
            SqlType::SmallInt | SqlType::Integer | SqlType::BigInt => {
                Value::Long(text.parse().map_err(|_| bad(text))?)
            }
            SqlType::Real | SqlType::Double => Value::Double(text.parse().map_err(|_| bad(text))?),
            SqlType::Decimal(_, s) => {
                let (int_part, frac_part) = match text.split_once('.') {
                    Some((i, f)) => (i, f),
                    None => (text, ""),
                };
                let negative = int_part.starts_with('-');
                let int: i64 = int_part.parse().map_err(|_| bad(text))?;
                let mut frac_digits = frac_part.to_string();
                while frac_digits.len() < usize::from(s) {
                    frac_digits.push('0');
                }
                if frac_digits.len() > usize::from(s) {
                    return Err(bad(text));
                }
                let frac: i64 = if frac_digits.is_empty() {
                    0
                } else {
                    frac_digits.parse().map_err(|_| bad(text))?
                };
                let pow = 10i64.pow(u32::from(s));
                let unscaled = if negative {
                    int * pow - frac
                } else {
                    int * pow + frac
                };
                Value::Decimal { unscaled, scale: s }
            }
            SqlType::Char(_) | SqlType::Varchar(_) => Value::text(text),
            SqlType::Date => Value::Date(Date::parse_iso(text).ok_or_else(|| bad(text))?),
            SqlType::Time | SqlType::Timestamp => {
                // `YYYY-MM-DD HH:MM:SS` or epoch seconds.
                if let Ok(secs) = text.parse::<i64>() {
                    Value::Timestamp(secs)
                } else {
                    let (d, t) = text.split_once(' ').ok_or_else(|| bad(text))?;
                    let date = Date::parse_iso(d).ok_or_else(|| bad(text))?;
                    let mut hms = t.splitn(3, ':');
                    let h: i64 = hms
                        .next()
                        .and_then(|x| x.parse().ok())
                        .ok_or_else(|| bad(text))?;
                    let m: i64 = hms
                        .next()
                        .and_then(|x| x.parse().ok())
                        .ok_or_else(|| bad(text))?;
                    let s2: i64 = hms.next().and_then(|x| x.parse().ok()).unwrap_or(0);
                    Value::Timestamp(i64::from(date.0) * 86_400 + h * 3600 + m * 60 + s2)
                }
            }
        })
    }

    /// Load `table` from CSV text (no header, RFC-4180 quoting).
    pub fn load_csv_str(&mut self, table: &str, csv: &str) -> Result<usize, DbError> {
        let types: Vec<SqlType> = self
            .table(table)?
            .def()
            .columns
            .iter()
            .map(|c| c.sql_type)
            .collect();
        let mut rows = Vec::new();
        for (lineno, record) in parse_csv(csv).into_iter().enumerate() {
            if record.len() != types.len() {
                return Err(DbError::Constraint(format!(
                    "line {}: expected {} fields, got {}",
                    lineno + 1,
                    types.len(),
                    record.len()
                )));
            }
            let row = record
                .iter()
                .zip(&types)
                .map(|(cell, ty)| Self::parse_cell(cell, *ty))
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| DbError::Constraint(format!("line {}: {e}", lineno + 1)))?;
            rows.push(row);
        }
        self.bulk_load(table, rows)
    }

    /// Load `table` from a CSV file.
    pub fn load_csv_file(&mut self, table: &str, path: impl AsRef<Path>) -> Result<usize, DbError> {
        let csv = std::fs::read_to_string(path)?;
        self.load_csv_str(table, &csv)
    }

    /// Export `table` to CSV text.
    pub fn export_csv(&self, table: &str) -> Result<String, DbError> {
        let t = self.table(table)?;
        let mut out = String::new();
        for row in t.rows() {
            for (i, v) in row.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let text = v.to_string();
                if text.contains(',')
                    || text.contains('"')
                    || text.contains('\n')
                    || text.contains('\r')
                {
                    out.push('"');
                    for c in text.chars() {
                        if c == '"' {
                            out.push('"');
                        }
                        out.push(c);
                    }
                    out.push('"');
                } else {
                    out.push_str(&text);
                }
            }
            out.push('\n');
        }
        Ok(out)
    }
}

/// Minimal RFC-4180 CSV record parser (quoted fields, doubled quotes).
pub fn parse_csv(input: &str) -> Vec<Vec<String>> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
            continue;
        }
        match c {
            '"' => {
                in_quotes = true;
                any = true;
            }
            ',' => {
                record.push(std::mem::take(&mut field));
                any = true;
            }
            '\r' => {}
            '\n' => {
                record.push(std::mem::take(&mut field));
                records.push(std::mem::take(&mut record));
                any = false;
            }
            other => {
                field.push(other);
                any = true;
            }
        }
    }
    if any || !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ColumnDef;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableDef::new("people")
                .column(ColumnDef::new("id", SqlType::BigInt).primary_key())
                .column(ColumnDef::new("name", SqlType::Varchar(20)))
                .column(ColumnDef::new("score", SqlType::Decimal(8, 2)))
                .column(ColumnDef::new("born", SqlType::Date)),
        )
        .unwrap();
        db
    }

    #[test]
    fn create_and_drop() {
        let mut d = db();
        assert_eq!(d.table_names(), vec!["people"]);
        assert!(matches!(
            d.create_table(TableDef::new("PEOPLE")),
            Err(DbError::DuplicateTable(_))
        ));
        d.drop_table("People").unwrap();
        assert!(d.table("people").is_err());
        assert!(d.drop_table("people").is_err());
    }

    #[test]
    fn csv_roundtrip() {
        let mut d = db();
        let csv = "1,Ann,12.50,1990-01-02\n2,\"B,ob\",3.00,1985-12-31\n3,,,\n";
        assert_eq!(d.load_csv_str("people", csv).unwrap(), 3);
        let t = d.table("people").unwrap();
        assert_eq!(t.rows()[1][1], Value::text("B,ob"));
        assert_eq!(t.rows()[0][2], Value::decimal(1250, 2));
        assert_eq!(t.rows()[2][1], Value::Null);
        let out = d.export_csv("people").unwrap();
        let mut d2 = db();
        d2.load_csv_str("people", &out).unwrap();
        assert_eq!(d2.table("people").unwrap().rows(), t.rows());
    }

    #[test]
    fn csv_errors_carry_line_numbers() {
        let mut d = db();
        let err = d.load_csv_str("people", "1,Ann,12.50\n").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
        let err2 = d
            .load_csv_str("people", "1,Ann,12.50,1990-01-02\nx,B,1.00,1990-01-01\n")
            .unwrap_err();
        assert!(err2.to_string().contains("line 2"), "{err2}");
    }

    #[test]
    fn parse_cell_covers_types() {
        use Database as D;
        assert_eq!(D::parse_cell("", SqlType::BigInt).unwrap(), Value::Null);
        assert_eq!(
            D::parse_cell("42", SqlType::BigInt).unwrap(),
            Value::Long(42)
        );
        assert_eq!(
            D::parse_cell("-1.50", SqlType::Decimal(8, 2)).unwrap(),
            Value::decimal(-150, 2)
        );
        assert_eq!(
            D::parse_cell("7", SqlType::Decimal(8, 2)).unwrap(),
            Value::decimal(700, 2)
        );
        assert_eq!(
            D::parse_cell("true", SqlType::Boolean).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            D::parse_cell("1970-01-02 00:00:01", SqlType::Timestamp).unwrap(),
            Value::Timestamp(86_401)
        );
        assert!(D::parse_cell("1.234", SqlType::Decimal(8, 2)).is_err());
        assert!(D::parse_cell("abc", SqlType::BigInt).is_err());
    }

    #[test]
    fn csv_parser_handles_quotes_and_crlf() {
        let rows = parse_csv("a,\"b\"\"x\",c\r\n1,2,3");
        assert_eq!(
            rows,
            vec![
                vec!["a".to_string(), "b\"x".to_string(), "c".to_string()],
                vec!["1".to_string(), "2".to_string(), "3".to_string()],
            ]
        );
        assert!(parse_csv("").is_empty());
        assert_eq!(parse_csv("x"), vec![vec!["x".to_string()]]);
        // Trailing newline does not add an empty record.
        assert_eq!(parse_csv("x\n").len(), 1);
    }

    #[test]
    fn bulk_load_via_db() {
        let mut d = db();
        let n = d
            .bulk_load(
                "people",
                vec![
                    vec![Value::Long(1), Value::text("A"), Value::Null, Value::Null],
                    vec![Value::Long(2), Value::text("B"), Value::Null, Value::Null],
                ],
            )
            .unwrap();
        assert_eq!(n, 2);
        assert!(d.bulk_load("ghost", vec![]).is_err());
    }
}
