//! Row storage with constraint-checked inserts.

use pdgf_schema::{SqlType, Value};

use crate::catalog::TableDef;

/// Insert/constraint violation.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintError(pub String);

impl std::fmt::Display for ConstraintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "constraint violation: {}", self.0)
    }
}

impl std::error::Error for ConstraintError {}

/// A table's rows plus its definition.
#[derive(Debug, Clone)]
pub struct TableData {
    def: TableDef,
    rows: Vec<Vec<Value>>,
}

/// Is `value` storable in a column of type `ty`?
pub fn value_fits(value: &Value, ty: SqlType) -> bool {
    match value {
        Value::Null => true, // nullability checked separately
        Value::Bool(_) => matches!(ty, SqlType::Boolean),
        Value::Long(v) => match ty {
            SqlType::SmallInt => i16::try_from(*v).is_ok(),
            SqlType::Integer => i32::try_from(*v).is_ok(),
            SqlType::BigInt => true,
            SqlType::Decimal(..) | SqlType::Real | SqlType::Double => true,
            _ => false,
        },
        Value::Double(_) => matches!(ty, SqlType::Real | SqlType::Double),
        Value::Decimal { .. } => {
            matches!(ty, SqlType::Decimal(..) | SqlType::Real | SqlType::Double)
        }
        Value::Date(_) => matches!(ty, SqlType::Date),
        Value::Timestamp(_) => matches!(ty, SqlType::Timestamp | SqlType::Time),
        Value::Text(s) => match ty {
            SqlType::Char(n) | SqlType::Varchar(n) => s.chars().count() <= n as usize,
            _ => false,
        },
    }
}

/// Coerce `value` toward the column type where SQL would (numeric literals
/// into DECIMAL/REAL columns). Returns the value unchanged when no
/// coercion applies; type errors surface later in [`value_fits`].
pub fn coerce_value(value: Value, ty: SqlType) -> Value {
    match (&value, ty) {
        (Value::Long(v), SqlType::Decimal(_, s)) => match v.checked_mul(10i64.pow(u32::from(s))) {
            Some(unscaled) => Value::Decimal { unscaled, scale: s },
            None => value,
        },
        (Value::Double(v), SqlType::Decimal(_, s)) => {
            let scaled = v * 10f64.powi(i32::from(s));
            if scaled.is_finite() && scaled.abs() < 9e18 {
                Value::Decimal {
                    unscaled: scaled.round() as i64,
                    scale: s,
                }
            } else {
                value
            }
        }
        (Value::Decimal { unscaled, scale }, SqlType::Decimal(_, s)) if *scale != s => {
            if s > *scale {
                match unscaled.checked_mul(10i64.pow(u32::from(s - *scale))) {
                    Some(u) => Value::Decimal {
                        unscaled: u,
                        scale: s,
                    },
                    None => value,
                }
            } else {
                Value::Decimal {
                    unscaled: unscaled / 10i64.pow(u32::from(*scale - s)),
                    scale: s,
                }
            }
        }
        (Value::Long(v), SqlType::Real | SqlType::Double) => Value::Double(*v as f64),
        _ => value,
    }
}

impl TableData {
    /// Empty table with the given definition.
    pub fn new(def: TableDef) -> Self {
        Self {
            def,
            rows: Vec::new(),
        }
    }

    fn coerce_row(&self, row: Vec<Value>) -> Vec<Value> {
        if row.len() != self.def.columns.len() {
            return row; // arity error reported by check_row
        }
        row.into_iter()
            .zip(&self.def.columns)
            .map(|(v, c)| coerce_value(v, c.sql_type))
            .collect()
    }

    /// The table definition.
    pub fn def(&self) -> &TableDef {
        &self.def
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// All rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Column values by index (iterator over one column).
    pub fn column(&self, index: usize) -> impl Iterator<Item = &Value> {
        self.rows.iter().map(move |r| &r[index])
    }

    /// Validate a row against arity, types, and nullability.
    pub fn check_row(&self, row: &[Value]) -> Result<(), ConstraintError> {
        if row.len() != self.def.columns.len() {
            return Err(ConstraintError(format!(
                "{}: expected {} values, got {}",
                self.def.name,
                self.def.columns.len(),
                row.len()
            )));
        }
        for (value, col) in row.iter().zip(&self.def.columns) {
            if value.is_null() {
                if !col.nullable {
                    return Err(ConstraintError(format!(
                        "{}.{}: NULL in NOT NULL column",
                        self.def.name, col.name
                    )));
                }
                continue;
            }
            if !value_fits(value, col.sql_type) {
                return Err(ConstraintError(format!(
                    "{}.{}: {value} does not fit {}",
                    self.def.name, col.name, col.sql_type
                )));
            }
        }
        Ok(())
    }

    /// Insert one row, coercing numeric literals to the column types and
    /// validating constraints.
    pub fn insert(&mut self, row: Vec<Value>) -> Result<(), ConstraintError> {
        let row = self.coerce_row(row);
        self.check_row(&row)?;
        self.rows.push(row);
        Ok(())
    }

    /// Insert many rows; stops at the first violation, reporting its
    /// position.
    pub fn bulk_load(&mut self, rows: Vec<Vec<Value>>) -> Result<usize, ConstraintError> {
        self.rows.reserve(rows.len());
        for (i, row) in rows.into_iter().enumerate() {
            let row = self.coerce_row(row);
            self.check_row(&row)
                .map_err(|e| ConstraintError(format!("row {i}: {e}")))?;
            self.rows.push(row);
        }
        Ok(self.rows.len())
    }

    /// Delete all rows (TRUNCATE).
    pub fn truncate(&mut self) {
        self.rows.clear();
    }

    /// Keep only rows whose flag in `keep` is true (`keep.len()` must
    /// equal the row count). Used by SQL DELETE.
    pub fn retain_rows(&mut self, keep: &[bool]) {
        assert_eq!(keep.len(), self.rows.len(), "flag vector length mismatch");
        let mut i = 0;
        self.rows.retain(|_| {
            let k = keep[i];
            i += 1;
            k
        });
    }

    /// Assign `columns` (index, new value) on every row whose flag in
    /// `matches` is true, validating types/nullability first. Returns the
    /// number of rows modified. Used by SQL UPDATE.
    pub fn update_rows(
        &mut self,
        matches: &[bool],
        columns: &[(usize, Value)],
    ) -> Result<usize, ConstraintError> {
        assert_eq!(
            matches.len(),
            self.rows.len(),
            "flag vector length mismatch"
        );
        // Validate assignments once against the column definitions.
        for (idx, value) in columns {
            let col = self
                .def
                .columns
                .get(*idx)
                .ok_or_else(|| ConstraintError(format!("column index {idx} out of range")))?;
            if value.is_null() {
                if !col.nullable {
                    return Err(ConstraintError(format!(
                        "{}.{}: NULL in NOT NULL column",
                        self.def.name, col.name
                    )));
                }
            } else {
                let coerced = coerce_value(value.clone(), col.sql_type);
                if !value_fits(&coerced, col.sql_type) {
                    return Err(ConstraintError(format!(
                        "{}.{}: {value} does not fit {}",
                        self.def.name, col.name, col.sql_type
                    )));
                }
            }
        }
        let mut modified = 0;
        for (row, hit) in self.rows.iter_mut().zip(matches) {
            if !hit {
                continue;
            }
            for (idx, value) in columns {
                let ty = self.def.columns[*idx].sql_type;
                row[*idx] = coerce_value(value.clone(), ty);
            }
            modified += 1;
        }
        Ok(modified)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ColumnDef;
    use pdgf_schema::value::Date;

    fn table() -> TableData {
        TableData::new(
            TableDef::new("t")
                .column(ColumnDef::new("id", SqlType::BigInt).primary_key())
                .column(ColumnDef::new("name", SqlType::Varchar(5)))
                .column(ColumnDef::new("score", SqlType::Decimal(6, 2)))
                .column(ColumnDef::new("born", SqlType::Date)),
        )
    }

    fn ok_row() -> Vec<Value> {
        vec![
            Value::Long(1),
            Value::text("abc"),
            Value::decimal(12_345, 2),
            Value::Date(Date::from_ymd(1990, 5, 1)),
        ]
    }

    #[test]
    fn valid_rows_are_stored() {
        let mut t = table();
        t.insert(ok_row()).unwrap();
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.rows()[0][1], Value::text("abc"));
        assert_eq!(t.column(0).next(), Some(&Value::Long(1)));
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut t = table();
        assert!(t.insert(vec![Value::Long(1)]).is_err());
    }

    #[test]
    fn null_in_not_null_column_is_rejected() {
        let mut t = table();
        let mut row = ok_row();
        row[0] = Value::Null;
        assert!(t.insert(row).is_err());
        let mut row2 = ok_row();
        row2[1] = Value::Null; // nullable column
        t.insert(row2).unwrap();
    }

    #[test]
    fn type_mismatches_are_rejected() {
        let mut t = table();
        let mut row = ok_row();
        row[0] = Value::text("not a number");
        assert!(t.insert(row).is_err());
        let mut row2 = ok_row();
        row2[3] = Value::Long(5);
        assert!(t.insert(row2).is_err());
    }

    #[test]
    fn varchar_length_is_enforced() {
        let mut t = table();
        let mut row = ok_row();
        row[1] = Value::text("toolong");
        assert!(t.insert(row).is_err());
    }

    #[test]
    fn integer_width_is_enforced() {
        assert!(value_fits(&Value::Long(40_000), SqlType::Integer));
        assert!(!value_fits(&Value::Long(40_000), SqlType::SmallInt));
        assert!(!value_fits(
            &Value::Long(i64::from(i32::MAX) + 1),
            SqlType::Integer
        ));
        assert!(value_fits(&Value::Long(i64::MAX), SqlType::BigInt));
    }

    #[test]
    fn bulk_load_reports_failing_row() {
        let mut t = table();
        let mut bad = ok_row();
        bad[0] = Value::Null;
        let err = t.bulk_load(vec![ok_row(), bad, ok_row()]).unwrap_err();
        assert!(err.0.contains("row 1"), "{err}");
        // Successful prefix is kept (bulk load is not atomic, like COPY).
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    fn truncate_empties() {
        let mut t = table();
        t.insert(ok_row()).unwrap();
        t.truncate();
        assert_eq!(t.row_count(), 0);
    }
}
