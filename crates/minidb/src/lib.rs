//! minidb — an embedded relational database substrate.
//!
//! The paper's DBSynth "connects to a source database via JDBC" to read
//! schema metadata, statistics, and samples, and loads generated data
//! into a target database. This reproduction has no JDBC or PostgreSQL,
//! so minidb stands in for both ends: a small but real relational engine
//! exposing exactly the surfaces DBSynth exercises —
//!
//! * a **catalog** with SQL-92 column types, nullability, primary keys,
//!   and foreign-key constraints ([`catalog`]),
//! * **row storage** with constraint-checked inserts and scans
//!   ([`table`], [`db`]),
//! * **statistics** like a production system's `ANALYZE`: row counts,
//!   min/max, NULL fractions, distinct counts, equi-width histograms
//!   ([`stats`]),
//! * **sampling scans** with pluggable strategies ([`sample`]),
//! * a **SQL subset** (CREATE TABLE / INSERT / SELECT with WHERE, joins,
//!   GROUP BY, aggregates, ORDER BY, LIMIT) so original and synthetic
//!   databases can be compared by query, as the paper's demo does
//!   ([`sql`]),
//! * **CSV import/export and bulk load** for the generation target path
//!   ([`db`]).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rust_2018_idioms)]

pub mod catalog;
pub mod db;
pub mod sample;
pub mod sql;
pub mod stats;
pub mod table;

pub use catalog::{ColumnDef, ForeignKey, TableDef};
pub use db::{Database, DbError};
pub use sample::SampleStrategy;
pub use stats::{ColumnStats, Histogram, TableStats};
pub use table::TableData;
