//! SQL execution.

use std::cmp::Ordering;
use std::collections::HashMap;

use pdgf_schema::Value;

use crate::db::{Database, DbError};

use super::ast::{AggFunc, BinOp, ColRef, Expr, OrderKey, SelectItem, SelectStmt, Stmt};

/// The result of executing a statement.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column names (empty for DDL/DML).
    pub columns: Vec<String>,
    /// Result rows (empty for DDL/DML).
    pub rows: Vec<Vec<Value>>,
    /// Rows affected by DML.
    pub affected: usize,
}

impl QueryResult {
    fn ddl() -> Self {
        Self {
            columns: Vec::new(),
            rows: Vec::new(),
            affected: 0,
        }
    }

    /// Single scalar convenience accessor (first row, first column).
    pub fn scalar(&self) -> Option<&Value> {
        self.rows.first().and_then(|r| r.first())
    }

    /// Render as aligned text for demos and debugging.
    pub fn to_table_string(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!("{c:<width$}  ", width = widths[i]));
        }
        out.push('\n');
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!("{cell:<width$}  ", width = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

/// Statement executor bound to a mutable database.
pub struct SqlEngine<'db> {
    db: &'db mut Database,
}

impl<'db> SqlEngine<'db> {
    /// Engine over `db`.
    pub fn new(db: &'db mut Database) -> Self {
        Self { db }
    }

    /// Execute any statement.
    pub fn execute(&mut self, stmt: Stmt) -> Result<QueryResult, DbError> {
        match stmt {
            Stmt::Select(s) => run_select(self.db, &s),
            Stmt::CreateTable(def) => {
                self.db.create_table(def)?;
                Ok(QueryResult::ddl())
            }
            Stmt::Insert { table, rows } => {
                let n = rows.len();
                self.db.bulk_load(&table, rows)?;
                Ok(QueryResult {
                    affected: n,
                    ..QueryResult::ddl()
                })
            }
            Stmt::Drop(name) => {
                self.db.drop_table(&name)?;
                Ok(QueryResult::ddl())
            }
            Stmt::Delete { table, predicate } => {
                let affected = run_delete(self.db, &table, predicate.as_ref())?;
                Ok(QueryResult {
                    affected,
                    ..QueryResult::ddl()
                })
            }
            Stmt::Update {
                table,
                assignments,
                predicate,
            } => {
                let affected = run_update(self.db, &table, &assignments, predicate.as_ref())?;
                Ok(QueryResult {
                    affected,
                    ..QueryResult::ddl()
                })
            }
        }
    }
}

/// Execute a DELETE, returning the number of removed rows.
fn run_delete(db: &mut Database, table: &str, predicate: Option<&Expr>) -> Result<usize, DbError> {
    let scope = {
        let t = db.table(table)?;
        Scope {
            names: t
                .def()
                .columns
                .iter()
                .map(|c| (t.def().name.clone(), c.name.clone()))
                .collect(),
        }
    };
    // Evaluate the predicate against a snapshot, then retain survivors.
    let keep: Vec<bool> = {
        let t = db.table(table)?;
        t.rows()
            .iter()
            .map(|row| match predicate {
                Some(p) => eval(p, &scope, row).map(|v| !truthy(&v)),
                None => Ok(false),
            })
            .collect::<Result<_, _>>()?
    };
    let t = db.table_mut(table)?;
    let before = t.row_count();
    t.retain_rows(&keep);
    Ok(before - t.row_count())
}

/// Execute an UPDATE, returning the number of modified rows.
fn run_update(
    db: &mut Database,
    table: &str,
    assignments: &[(String, Value)],
    predicate: Option<&Expr>,
) -> Result<usize, DbError> {
    let (scope, columns) = {
        let t = db.table(table)?;
        let scope = Scope {
            names: t
                .def()
                .columns
                .iter()
                .map(|c| (t.def().name.clone(), c.name.clone()))
                .collect(),
        };
        let columns = assignments
            .iter()
            .map(|(name, value)| {
                let idx = t
                    .def()
                    .column_index(name)
                    .ok_or_else(|| DbError::Sql(format!("unknown column {name:?}")))?;
                Ok((idx, value.clone()))
            })
            .collect::<Result<Vec<_>, DbError>>()?;
        (scope, columns)
    };
    let matches: Vec<bool> = {
        let t = db.table(table)?;
        t.rows()
            .iter()
            .map(|row| match predicate {
                Some(p) => eval(p, &scope, row).map(|v| truthy(&v)),
                None => Ok(true),
            })
            .collect::<Result<_, _>>()?
    };
    db.table_mut(table)?
        .update_rows(&matches, &columns)
        .map_err(|e| DbError::Constraint(e.to_string()))
}

/// Column binding for the FROM/JOIN row: `(table_name, column_name)` per
/// position.
struct Scope {
    names: Vec<(String, String)>,
}

impl Scope {
    fn resolve(&self, col: &ColRef) -> Result<usize, DbError> {
        let matches: Vec<usize> = self
            .names
            .iter()
            .enumerate()
            .filter(|(_, (t, c))| {
                c.eq_ignore_ascii_case(&col.column)
                    && col.table.as_ref().is_none_or(|q| t.eq_ignore_ascii_case(q))
            })
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            0 => Err(DbError::Sql(format!("unknown column {:?}", col.column))),
            1 => Ok(matches[0]),
            _ => Err(DbError::Sql(format!("ambiguous column {:?}", col.column))),
        }
    }
}

/// Run a SELECT against `db`.
pub fn run_select(db: &Database, stmt: &SelectStmt) -> Result<QueryResult, DbError> {
    // FROM and JOINs → scope + working rows.
    let base = db.table(&stmt.from)?;
    let mut scope = Scope {
        names: base
            .def()
            .columns
            .iter()
            .map(|c| (base.def().name.clone(), c.name.clone()))
            .collect(),
    };
    let mut rows: Vec<Vec<Value>> = base.rows().to_vec();

    for join in &stmt.joins {
        let right_table = db.table(&join.table)?;
        // Resolve the join keys: one side must refer to the new table.
        let right_scope_names: Vec<(String, String)> = right_table
            .def()
            .columns
            .iter()
            .map(|c| (right_table.def().name.clone(), c.name.clone()))
            .collect();
        let right_scope = Scope {
            names: right_scope_names.clone(),
        };
        let (left_key, right_key) =
            match (scope.resolve(&join.left), right_scope.resolve(&join.right)) {
                (Ok(l), Ok(r)) => (l, r),
                _ => {
                    // Keys may be written in either order.
                    let l = scope.resolve(&join.right)?;
                    let r = right_scope.resolve(&join.left)?;
                    (l, r)
                }
            };
        // Hash join: build on the (usually smaller) right side.
        let mut index: HashMap<String, Vec<&Vec<Value>>> = HashMap::new();
        for r in right_table.rows() {
            if !r[right_key].is_null() {
                index.entry(r[right_key].to_string()).or_default().push(r);
            }
        }
        let mut joined = Vec::new();
        for left_row in &rows {
            let key = &left_row[left_key];
            if key.is_null() {
                continue;
            }
            if let Some(matches) = index.get(&key.to_string()) {
                for m in matches {
                    let mut combined = left_row.clone();
                    combined.extend_from_slice(m);
                    joined.push(combined);
                }
            }
        }
        rows = joined;
        scope.names.extend(right_scope_names);
    }

    // WHERE.
    if let Some(pred) = &stmt.where_ {
        let mut kept = Vec::new();
        for row in rows {
            if truthy(&eval(pred, &scope, &row)?) {
                kept.push(row);
            }
        }
        rows = kept;
    }

    // Expand SELECT * into column expressions.
    let mut items: Vec<(Expr, String)> = Vec::new();
    for item in &stmt.items {
        match item {
            SelectItem::Star => {
                for (i, (_, c)) in scope.names.iter().enumerate() {
                    items.push((
                        Expr::Col(ColRef {
                            table: Some(scope.names[i].0.clone()),
                            column: c.clone(),
                        }),
                        c.clone(),
                    ));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| display_name(expr));
                items.push((expr.clone(), name));
            }
        }
    }

    let has_agg = items.iter().any(|(e, _)| e.has_aggregate());

    // ORDER BY may name columns that are not projected (standard SQL for
    // non-aggregate queries): append them as hidden sort keys, dropped
    // after sorting.
    let visible = items.len();
    if !has_agg && stmt.group_by.is_empty() {
        for (key, _) in &stmt.order_by {
            if let OrderKey::Name(name) = key {
                let known = items.iter().any(|(_, n)| n.eq_ignore_ascii_case(name))
                    || items.iter().any(|(_, n)| {
                        name.rsplit('.')
                            .next()
                            .is_some_and(|bare| n.eq_ignore_ascii_case(bare))
                    });
                if !known {
                    let (table, column) = match name.split_once('.') {
                        Some((t, c)) => (Some(t.to_string()), c.to_string()),
                        None => (None, name.clone()),
                    };
                    let col = ColRef { table, column };
                    if scope.resolve(&col).is_ok() {
                        items.push((Expr::Col(col), name.clone()));
                    }
                }
            }
        }
    }

    let mut output: Vec<Vec<Value>> = if has_agg || !stmt.group_by.is_empty() {
        aggregate(&items, &stmt.group_by, &scope, &rows)?
    } else {
        rows.iter()
            .map(|row| {
                items
                    .iter()
                    .map(|(e, _)| eval(e, &scope, row))
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<Vec<_>, _>>()?
    };

    // DISTINCT: stable dedup on the full output row.
    if stmt.distinct {
        let mut seen = std::collections::HashSet::new();
        output.retain(|row| {
            let key = row
                .iter()
                .map(|v| format!("{}:{v}", if v.is_null() { "n" } else { "v" }))
                .collect::<Vec<_>>()
                .join("\u{1}");
            seen.insert(key)
        });
    }

    // ORDER BY.
    if !stmt.order_by.is_empty() {
        let columns: Vec<String> = items.iter().map(|(_, n)| n.clone()).collect();
        let mut keys = Vec::new();
        for (key, desc) in &stmt.order_by {
            let idx = match key {
                OrderKey::Ordinal(n) => {
                    if *n == 0 || *n > columns.len() {
                        return Err(DbError::Sql(format!("ORDER BY ordinal {n} out of range")));
                    }
                    n - 1
                }
                OrderKey::Name(name) => columns
                    .iter()
                    .position(|c| c.eq_ignore_ascii_case(name))
                    .or_else(|| {
                        // Fall back to the bare column name of qualified refs.
                        columns.iter().position(|c| {
                            name.rsplit('.')
                                .next()
                                .is_some_and(|bare| c.eq_ignore_ascii_case(bare))
                        })
                    })
                    .ok_or_else(|| DbError::Sql(format!("unknown ORDER BY key {name:?}")))?,
            };
            keys.push((idx, *desc));
        }
        output.sort_by(|a, b| {
            for (idx, desc) in &keys {
                let ord = a[*idx].sql_cmp(&b[*idx]);
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
    }

    if let Some(limit) = stmt.limit {
        output.truncate(limit);
    }

    // Drop hidden sort keys.
    if items.len() > visible {
        for row in &mut output {
            row.truncate(visible);
        }
        items.truncate(visible);
    }

    Ok(QueryResult {
        columns: items.into_iter().map(|(_, n)| n).collect(),
        rows: output,
        affected: 0,
    })
}

fn display_name(expr: &Expr) -> String {
    match expr {
        Expr::Col(c) => c.column.clone(),
        Expr::Agg(f, arg) => {
            let fname = match f {
                AggFunc::Count => "count",
                AggFunc::Sum => "sum",
                AggFunc::Avg => "avg",
                AggFunc::Min => "min",
                AggFunc::Max => "max",
            };
            match arg {
                None => format!("{fname}(*)"),
                Some(a) => format!("{fname}({})", display_name(a)),
            }
        }
        _ => "?column?".to_string(),
    }
}

fn truthy(v: &Value) -> bool {
    matches!(v, Value::Bool(true))
}

fn eval(expr: &Expr, scope: &Scope, row: &[Value]) -> Result<Value, DbError> {
    Ok(match expr {
        Expr::Lit(v) => v.clone(),
        Expr::Col(c) => row[scope.resolve(c)?].clone(),
        Expr::Neg(e) => match eval(e, scope, row)? {
            Value::Null => Value::Null,
            Value::Long(v) => Value::Long(-v),
            Value::Double(v) => Value::Double(-v),
            Value::Decimal { unscaled, scale } => Value::Decimal {
                unscaled: -unscaled,
                scale,
            },
            other => return Err(DbError::Sql(format!("cannot negate {other}"))),
        },
        Expr::Not(e) => match eval(e, scope, row)? {
            Value::Bool(b) => Value::Bool(!b),
            Value::Null => Value::Bool(false),
            other => return Err(DbError::Sql(format!("NOT of non-boolean {other}"))),
        },
        Expr::IsNull { expr, negated } => {
            let isnull = eval(expr, scope, row)?.is_null();
            Value::Bool(isnull != *negated)
        }
        Expr::Like { expr, pattern } => match eval(expr, scope, row)? {
            Value::Null => Value::Bool(false),
            v => {
                let text = v.to_string();
                Value::Bool(like_match(pattern, &text))
            }
        },
        Expr::Agg(..) => return Err(DbError::Sql("aggregate outside aggregation context".into())),
        Expr::Bin(op, a, b) => {
            let (x, y) = (eval(a, scope, row)?, eval(b, scope, row)?);
            match op {
                BinOp::And => Value::Bool(truthy(&x) && truthy(&y)),
                BinOp::Or => Value::Bool(truthy(&x) || truthy(&y)),
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    if x.is_null() || y.is_null() {
                        return Ok(Value::Bool(false));
                    }
                    let (x, y) = coerce_comparison(x, y);
                    let ord = x.sql_cmp(&y);
                    Value::Bool(match op {
                        BinOp::Eq => ord == Ordering::Equal,
                        BinOp::Ne => ord != Ordering::Equal,
                        BinOp::Lt => ord == Ordering::Less,
                        BinOp::Le => ord != Ordering::Greater,
                        BinOp::Gt => ord == Ordering::Greater,
                        BinOp::Ge => ord != Ordering::Less,
                        _ => unreachable!(),
                    })
                }
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                    if x.is_null() || y.is_null() {
                        return Ok(Value::Null);
                    }
                    arith(*op, &x, &y)?
                }
            }
        }
    })
}

/// SQL literal coercion for comparisons: a text literal compared against
/// a DATE column is parsed as a date (`o_orderdate >= '1995-01-01'`).
fn coerce_comparison(x: Value, y: Value) -> (Value, Value) {
    use pdgf_schema::value::Date;
    match (&x, &y) {
        (Value::Date(_), Value::Text(t)) => {
            if let Some(d) = Date::parse_iso(t) {
                return (x, Value::Date(d));
            }
        }
        (Value::Text(t), Value::Date(_)) => {
            if let Some(d) = Date::parse_iso(t) {
                return (Value::Date(d), y);
            }
        }
        _ => {}
    }
    (x, y)
}

fn arith(op: BinOp, x: &Value, y: &Value) -> Result<Value, DbError> {
    // Integer arithmetic stays integral except division.
    if let (Some(a), Some(b), BinOp::Add | BinOp::Sub | BinOp::Mul) = (x.as_i64(), y.as_i64(), op) {
        return Ok(Value::Long(match op {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            _ => unreachable!(),
        }));
    }
    let (a, b) = match (x.as_f64(), y.as_f64()) {
        (Some(a), Some(b)) => (a, b),
        _ => return Err(DbError::Sql(format!("non-numeric arithmetic: {x} and {y}"))),
    };
    Ok(match op {
        BinOp::Add => Value::Double(a + b),
        BinOp::Sub => Value::Double(a - b),
        BinOp::Mul => Value::Double(a * b),
        BinOp::Div => {
            if b == 0.0 {
                return Err(DbError::Sql("division by zero".into()));
            }
            Value::Double(a / b)
        }
        _ => unreachable!(),
    })
}

/// SQL LIKE with `%` (any run) and `_` (any char), case-sensitive.
pub fn like_match(pattern: &str, text: &str) -> bool {
    fn rec(p: &[char], t: &[char]) -> bool {
        match p.split_first() {
            None => t.is_empty(),
            Some(('%', rest)) => (0..=t.len()).any(|skip| rec(rest, &t[skip..])),
            Some(('_', rest)) => !t.is_empty() && rec(rest, &t[1..]),
            Some((c, rest)) => t.first() == Some(c) && rec(rest, &t[1..]),
        }
    }
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    rec(&p, &t)
}

struct AggState {
    count: u64,
    sum: f64,
    min: Option<Value>,
    max: Option<Value>,
}

impl AggState {
    fn new() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: None,
            max: None,
        }
    }

    fn accumulate(&mut self, v: &Value) {
        if v.is_null() {
            return;
        }
        self.count += 1;
        if let Some(x) = v.as_f64() {
            self.sum += x;
        }
        match &self.min {
            Some(m) if v.sql_cmp(m).is_ge() => {}
            _ => self.min = Some(v.clone()),
        }
        match &self.max {
            Some(m) if v.sql_cmp(m).is_le() => {}
            _ => self.max = Some(v.clone()),
        }
    }
}

/// Grouped / global aggregation.
fn aggregate(
    items: &[(Expr, String)],
    group_by: &[ColRef],
    scope: &Scope,
    rows: &[Vec<Value>],
) -> Result<Vec<Vec<Value>>, DbError> {
    let key_indices: Vec<usize> = group_by
        .iter()
        .map(|c| scope.resolve(c))
        .collect::<Result<_, _>>()?;

    // Group rows (single global group when no GROUP BY).
    let mut groups: Vec<(Vec<Value>, Vec<&Vec<Value>>)> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    for row in rows {
        let key_values: Vec<Value> = key_indices.iter().map(|&i| row[i].clone()).collect();
        let key_str = key_values
            .iter()
            .map(|v| format!("{}:{v}", if v.is_null() { "n" } else { "v" }))
            .collect::<Vec<_>>()
            .join("\u{1}");
        let slot = *index.entry(key_str).or_insert_with(|| {
            groups.push((key_values.clone(), Vec::new()));
            groups.len() - 1
        });
        groups[slot].1.push(row);
    }
    if groups.is_empty() && key_indices.is_empty() {
        groups.push((Vec::new(), Vec::new()));
    }

    let mut out = Vec::with_capacity(groups.len());
    for (_, members) in &groups {
        let row_out = items
            .iter()
            .map(|(expr, _)| eval_agg(expr, scope, members))
            .collect::<Result<Vec<_>, _>>()?;
        out.push(row_out);
    }
    Ok(out)
}

/// Evaluate an expression in aggregation context: aggregates fold the
/// group's rows, non-aggregate subexpressions use the first row (valid
/// for grouping keys, which are constant within a group).
fn eval_agg(expr: &Expr, scope: &Scope, rows: &[&Vec<Value>]) -> Result<Value, DbError> {
    match expr {
        Expr::Agg(func, arg) => {
            if *func == AggFunc::Count && arg.is_none() {
                return Ok(Value::Long(rows.len() as i64));
            }
            let mut state = AggState::new();
            for row in rows {
                let v = match arg {
                    Some(a) => eval(a, scope, row)?,
                    None => Value::Long(1),
                };
                state.accumulate(&v);
            }
            Ok(match func {
                AggFunc::Count => Value::Long(state.count as i64),
                AggFunc::Sum => {
                    if state.count == 0 {
                        Value::Null
                    } else {
                        Value::Double(state.sum)
                    }
                }
                AggFunc::Avg => {
                    if state.count == 0 {
                        Value::Null
                    } else {
                        Value::Double(state.sum / state.count as f64)
                    }
                }
                AggFunc::Min => state.min.unwrap_or(Value::Null),
                AggFunc::Max => state.max.unwrap_or(Value::Null),
            })
        }
        Expr::Bin(op, a, b) => {
            let ea = eval_agg(a, scope, rows)?;
            let eb = eval_agg(b, scope, rows)?;
            // Re-evaluate through the scalar path with literals.
            eval(
                &Expr::Bin(*op, Box::new(Expr::Lit(ea)), Box::new(Expr::Lit(eb))),
                scope,
                &[],
            )
        }
        Expr::Neg(e) => {
            let v = eval_agg(e, scope, rows)?;
            eval(&Expr::Neg(Box::new(Expr::Lit(v))), scope, &[])
        }
        other => match rows.first() {
            Some(row) => eval(other, scope, row),
            None => Ok(Value::Null),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::super::{execute, query};
    use super::*;

    fn sample_db() -> Database {
        let mut db = Database::new();
        execute(
            &mut db,
            "CREATE TABLE customer (c_id BIGINT PRIMARY KEY, c_name VARCHAR(20), \
             c_nation VARCHAR(10))",
        )
        .unwrap();
        execute(
            &mut db,
            "CREATE TABLE orders (o_id BIGINT PRIMARY KEY, o_cust BIGINT NOT NULL, \
             o_total DECIMAL(10,2), o_comment VARCHAR(40))",
        )
        .unwrap();
        execute(
            &mut db,
            "INSERT INTO customer VALUES \
             (1, 'Ann', 'DE'), (2, 'Bob', 'US'), (3, 'Cat', 'DE')",
        )
        .unwrap();
        execute(
            &mut db,
            "INSERT INTO orders VALUES \
             (10, 1, 100.00, 'quick deposits'), \
             (11, 1, 50.50, 'final request'), \
             (12, 2, 75.25, NULL), \
             (13, 3, 20.00, 'quick foxes')",
        )
        .unwrap();
        db
    }

    #[test]
    fn select_star_and_where() {
        let db = sample_db();
        let r = query(&db, "SELECT * FROM customer WHERE c_nation = 'DE'").unwrap();
        assert_eq!(r.columns, vec!["c_id", "c_name", "c_nation"]);
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn arithmetic_and_projection() {
        let db = sample_db();
        let r = query(
            &db,
            "SELECT o_id, o_total * 2 AS dbl FROM orders WHERE o_id = 11",
        )
        .unwrap();
        assert_eq!(r.columns[1], "dbl");
        assert_eq!(r.rows[0][1], Value::Double(101.0));
    }

    #[test]
    fn global_aggregates() {
        let db = sample_db();
        let r = query(
            &db,
            "SELECT COUNT(*), COUNT(o_comment), SUM(o_total), AVG(o_total), \
             MIN(o_total), MAX(o_total) FROM orders",
        )
        .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::Long(4));
        assert_eq!(r.rows[0][1], Value::Long(3), "COUNT skips NULLs");
        assert_eq!(r.rows[0][2], Value::Double(245.75));
        assert_eq!(r.rows[0][3], Value::Double(61.4375));
        assert_eq!(r.rows[0][4], Value::decimal(2000, 2));
        assert_eq!(r.rows[0][5], Value::decimal(10_000, 2));
    }

    #[test]
    fn group_by_with_order_and_limit() {
        let db = sample_db();
        let r = query(
            &db,
            "SELECT o_cust, COUNT(*) AS n, SUM(o_total) AS total FROM orders \
             GROUP BY o_cust ORDER BY total DESC LIMIT 2",
        )
        .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], Value::Long(1));
        assert_eq!(r.rows[0][1], Value::Long(2));
        assert_eq!(r.rows[0][2], Value::Double(150.5));
        assert_eq!(r.rows[1][0], Value::Long(2));
    }

    #[test]
    fn join_two_tables() {
        let db = sample_db();
        let r = query(
            &db,
            "SELECT c_name, COUNT(*) AS orders_n FROM customer \
             JOIN orders ON customer.c_id = orders.o_cust \
             GROUP BY c_name ORDER BY c_name",
        )
        .unwrap();
        assert_eq!(
            r.rows,
            vec![
                vec![Value::text("Ann"), Value::Long(2)],
                vec![Value::text("Bob"), Value::Long(1)],
                vec![Value::text("Cat"), Value::Long(1)],
            ]
        );
    }

    #[test]
    fn like_and_null_predicates() {
        let db = sample_db();
        let r = query(&db, "SELECT o_id FROM orders WHERE o_comment LIKE 'quick%'").unwrap();
        assert_eq!(r.rows.len(), 2);
        let r = query(&db, "SELECT o_id FROM orders WHERE o_comment IS NULL").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Long(12)]]);
        let r = query(
            &db,
            "SELECT COUNT(*) FROM orders WHERE o_comment IS NOT NULL AND o_total > 30",
        )
        .unwrap();
        assert_eq!(r.rows[0][0], Value::Long(2));
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("%", ""));
        assert!(like_match("a%", "abc"));
        assert!(!like_match("a%", "xbc"));
        assert!(like_match("%c", "abc"));
        assert!(like_match("a_c", "abc"));
        assert!(!like_match("a_c", "abxc"));
        assert!(like_match("%b%", "abc"));
        assert!(like_match("abc", "abc"));
        assert!(!like_match("", "x"));
    }

    #[test]
    fn order_by_ordinal_and_desc() {
        let db = sample_db();
        let r = query(&db, "SELECT o_id, o_total FROM orders ORDER BY 2 DESC").unwrap();
        assert_eq!(r.rows[0][0], Value::Long(10));
        let r = query(&db, "SELECT o_id FROM orders ORDER BY o_id DESC LIMIT 1").unwrap();
        assert_eq!(r.rows[0][0], Value::Long(13));
    }

    #[test]
    fn ddl_and_dml_through_engine() {
        let mut db = Database::new();
        execute(&mut db, "CREATE TABLE t (a INTEGER)").unwrap();
        let r = execute(&mut db, "INSERT INTO t VALUES (1), (2)").unwrap();
        assert_eq!(r.affected, 2);
        execute(&mut db, "DROP TABLE t").unwrap();
        assert!(execute(&mut db, "DROP TABLE t").is_err());
    }

    #[test]
    fn error_paths() {
        let db = sample_db();
        assert!(query(&db, "SELECT nocol FROM orders").is_err());
        assert!(query(&db, "SELECT * FROM ghost").is_err());
        assert!(query(&db, "SELECT o_total / 0 FROM orders").is_err());
        assert!(query(&db, "SELECT o_id FROM orders ORDER BY 9").is_err());
        assert!(query(&db, "SELECT o_id FROM orders ORDER BY nope").is_err());
        let mut db2 = sample_db();
        assert!(execute(&mut db2, "INSERT INTO orders VALUES (1)").is_err());
    }

    #[test]
    fn empty_table_aggregates() {
        let mut db = Database::new();
        execute(&mut db, "CREATE TABLE e (x INTEGER)").unwrap();
        let r = query(&db, "SELECT COUNT(*), SUM(x), AVG(x), MIN(x) FROM e").unwrap();
        assert_eq!(r.rows[0][0], Value::Long(0));
        assert!(r.rows[0][1].is_null());
        assert!(r.rows[0][2].is_null());
        assert!(r.rows[0][3].is_null());
    }

    #[test]
    fn null_group_keys_form_their_own_group() {
        let db = sample_db();
        let r = query(
            &db,
            "SELECT o_comment, COUNT(*) FROM orders GROUP BY o_comment ORDER BY 2 DESC",
        )
        .unwrap();
        assert_eq!(r.rows.len(), 4);
    }

    #[test]
    fn select_distinct_dedups() {
        let db = sample_db();
        let r = query(
            &db,
            "SELECT DISTINCT c_nation FROM customer ORDER BY c_nation",
        )
        .unwrap();
        assert_eq!(
            r.rows,
            vec![vec![Value::text("DE")], vec![Value::text("US")]]
        );
        // Without DISTINCT there are three rows.
        let all = query(&db, "SELECT c_nation FROM customer").unwrap();
        assert_eq!(all.rows.len(), 3);
    }

    #[test]
    fn delete_with_predicate() {
        let mut db = sample_db();
        let r = execute(&mut db, "DELETE FROM orders WHERE o_total < 60").unwrap();
        assert_eq!(r.affected, 2);
        let left = query(&db, "SELECT COUNT(*) FROM orders").unwrap();
        assert_eq!(left.rows[0][0], Value::Long(2));
        // Unconditional delete empties the table.
        let r = execute(&mut db, "DELETE FROM orders").unwrap();
        assert_eq!(r.affected, 2);
        assert_eq!(
            query(&db, "SELECT COUNT(*) FROM orders").unwrap().rows[0][0],
            Value::Long(0)
        );
    }

    #[test]
    fn update_with_predicate_and_coercion() {
        let mut db = sample_db();
        let r = execute(
            &mut db,
            "UPDATE orders SET o_total = 1.50, o_comment = 'patched' WHERE o_cust = 1",
        )
        .unwrap();
        assert_eq!(r.affected, 2);
        let rows = query(
            &db,
            "SELECT o_total, o_comment FROM orders WHERE o_cust = 1",
        )
        .unwrap();
        for row in &rows.rows {
            assert_eq!(row[0], Value::decimal(150, 2), "literal coerced to DECIMAL");
            assert_eq!(row[1], Value::text("patched"));
        }
        // Constraint violations reject the whole statement.
        assert!(execute(&mut db, "UPDATE orders SET o_cust = NULL").is_err());
        assert!(execute(&mut db, "UPDATE orders SET nosuch = 1").is_err());
    }

    #[test]
    fn result_table_rendering() {
        let db = sample_db();
        let r = query(
            &db,
            "SELECT c_id, c_name FROM customer ORDER BY c_id LIMIT 1",
        )
        .unwrap();
        let text = r.to_table_string();
        assert!(text.contains("c_id"));
        assert!(text.contains("Ann"));
        assert_eq!(r.scalar(), Some(&Value::Long(1)));
    }
}
