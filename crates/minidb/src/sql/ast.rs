//! SQL abstract syntax.

use pdgf_schema::Value;

use crate::catalog::TableDef;

/// A (possibly table-qualified) column reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColRef {
    /// Optional table qualifier.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
    /// Logical AND.
    And,
    /// Logical OR.
    Or,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// COUNT(*) or COUNT(expr).
    Count,
    /// SUM(expr).
    Sum,
    /// AVG(expr).
    Avg,
    /// MIN(expr).
    Min,
    /// MAX(expr).
    Max,
}

/// A scalar or aggregate expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Lit(Value),
    /// Column reference.
    Col(ColRef),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// `expr IS NULL` (`negated` for `IS NOT NULL`).
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr LIKE 'pattern'` with `%` and `_` wildcards.
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// The pattern.
        pattern: String,
    },
    /// Aggregate call; `None` argument means `COUNT(*)`.
    Agg(AggFunc, Option<Box<Expr>>),
}

impl Expr {
    /// Does this expression contain an aggregate call?
    pub fn has_aggregate(&self) -> bool {
        match self {
            Expr::Agg(..) => true,
            Expr::Lit(_) | Expr::Col(_) => false,
            Expr::Bin(_, a, b) => a.has_aggregate() || b.has_aggregate(),
            Expr::Not(e) | Expr::Neg(e) => e.has_aggregate(),
            Expr::IsNull { expr, .. } | Expr::Like { expr, .. } => expr.has_aggregate(),
        }
    }
}

/// One item in the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*` — all columns of the FROM row.
    Star,
    /// An expression with an optional alias.
    Expr {
        /// The expression.
        expr: Expr,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// An `INNER JOIN` clause: `JOIN table ON left = right`.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// Joined table name.
    pub table: String,
    /// Left side of the equality (refers to tables already in scope).
    pub left: ColRef,
    /// Right side of the equality (refers to the joined table).
    pub right: ColRef,
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub enum OrderKey {
    /// 1-based ordinal into the select list.
    Ordinal(usize),
    /// Column or alias name.
    Name(String),
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Drop duplicate output rows (SELECT DISTINCT).
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// FROM table.
    pub from: String,
    /// INNER JOINs in order.
    pub joins: Vec<Join>,
    /// WHERE predicate.
    pub where_: Option<Expr>,
    /// GROUP BY columns.
    pub group_by: Vec<ColRef>,
    /// ORDER BY keys with descending flags.
    pub order_by: Vec<(OrderKey, bool)>,
    /// LIMIT row count.
    pub limit: Option<usize>,
}

/// Any supported statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// SELECT query.
    Select(SelectStmt),
    /// CREATE TABLE.
    CreateTable(TableDef),
    /// INSERT INTO ... VALUES.
    Insert {
        /// Target table.
        table: String,
        /// Literal rows.
        rows: Vec<Vec<Value>>,
    },
    /// DROP TABLE.
    Drop(String),
    /// DELETE FROM ... [WHERE ...].
    Delete {
        /// Target table.
        table: String,
        /// Row filter; `None` deletes everything.
        predicate: Option<Expr>,
    },
    /// UPDATE ... SET col = literal, ... [WHERE ...].
    Update {
        /// Target table.
        table: String,
        /// Column assignments (literal values only).
        assignments: Vec<(String, Value)>,
        /// Row filter; `None` updates everything.
        predicate: Option<Expr>,
    },
}
