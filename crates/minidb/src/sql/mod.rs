//! A SQL-92 subset: enough to create tables, load rows, and run the
//! validation queries the paper's demo performs against original and
//! synthetic data ("verify the quality by running SQL queries on the
//! original data and the generated data and compare the results").
//!
//! Supported statements:
//!
//! ```sql
//! CREATE TABLE t (col TYPE [NOT NULL], ..., PRIMARY KEY (a, b),
//!                 FOREIGN KEY (x) REFERENCES p (y));
//! INSERT INTO t VALUES (...), (...);
//! DROP TABLE t;
//! SELECT [*| expr [AS alias], ...] FROM t [JOIN u ON t.a = u.b]...
//!   [WHERE expr] [GROUP BY cols] [ORDER BY key [DESC], ...] [LIMIT n];
//! ```
//!
//! Expressions: literals, (qualified) column refs, `+ - * /`, comparisons,
//! `AND/OR/NOT`, `IS [NOT] NULL`, `LIKE`, and the aggregates `COUNT(*)`,
//! `COUNT(x)`, `SUM`, `AVG`, `MIN`, `MAX`.
//!
//! Semantics are deliberately simple: comparisons involving NULL are
//! false (no three-valued UNKNOWN), and arithmetic with NULL yields NULL.

pub mod ast;
pub mod exec;
pub mod lex;
pub mod parse;

pub use ast::{Expr, SelectStmt, Stmt};
pub use exec::{QueryResult, SqlEngine};

use crate::db::{Database, DbError};

/// Parse and execute one statement against `db`.
pub fn execute(db: &mut Database, sql: &str) -> Result<QueryResult, DbError> {
    let stmt = parse::parse(sql).map_err(DbError::Sql)?;
    exec::SqlEngine::new(db).execute(stmt)
}

/// Parse and execute a `SELECT`, returning its rows.
pub fn query(db: &Database, sql: &str) -> Result<QueryResult, DbError> {
    let stmt = parse::parse(sql).map_err(DbError::Sql)?;
    match stmt {
        Stmt::Select(select) => exec::run_select(db, &select),
        _ => Err(DbError::Sql("expected a SELECT statement".into())),
    }
}
