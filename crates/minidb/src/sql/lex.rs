//! SQL tokenizer.

use std::fmt;

/// A SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (uppercased keywords are matched by the
    /// parser; the original spelling is preserved).
    Ident(String),
    /// Numeric literal (integer flag preserved).
    Number {
        /// The literal text.
        text: String,
    },
    /// String literal (quotes removed, `''` unescaped).
    Str(String),
    /// Punctuation / operator.
    Sym(&'static str),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Number { text } => write!(f, "{text}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Sym(s) => write!(f, "{s}"),
        }
    }
}

/// Tokenize SQL text. Comments (`-- ...`) are skipped.
pub fn lex(input: &str) -> Result<Vec<Token>, String> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if c == b'-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            out.push(Token::Ident(input[start..i].to_string()));
            continue;
        }
        if c.is_ascii_digit() || (c == b'.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)) {
            let start = i;
            while i < bytes.len()
                && (bytes[i].is_ascii_digit()
                    || bytes[i] == b'.'
                    || bytes[i] == b'e'
                    || bytes[i] == b'E'
                    || ((bytes[i] == b'+' || bytes[i] == b'-')
                        && matches!(bytes[i - 1], b'e' | b'E')))
            {
                i += 1;
            }
            out.push(Token::Number {
                text: input[start..i].to_string(),
            });
            continue;
        }
        if c == b'\'' {
            let mut s = String::new();
            i += 1;
            loop {
                match bytes.get(i) {
                    None => return Err("unterminated string literal".into()),
                    Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                        s.push('\'');
                        i += 2;
                    }
                    Some(b'\'') => {
                        i += 1;
                        break;
                    }
                    Some(_) => {
                        // Advance over one UTF-8 scalar.
                        let ch = input[i..].chars().next().expect("in bounds");
                        s.push(ch);
                        i += ch.len_utf8();
                    }
                }
            }
            out.push(Token::Str(s));
            continue;
        }
        // Multi-char operators first (byte-wise: all operators are ASCII,
        // and slicing the &str here could split a multibyte character).
        let two: &[u8] = &bytes[i..(i + 2).min(bytes.len())];
        let sym: &'static str = match two {
            b"<>" => "<>",
            b"!=" => "<>",
            b"<=" => "<=",
            b">=" => ">=",
            _ => match c {
                b'(' => "(",
                b')' => ")",
                b',' => ",",
                b'.' => ".",
                b'*' => "*",
                b'=' => "=",
                b'<' => "<",
                b'>' => ">",
                b'+' => "+",
                b'-' => "-",
                b'/' => "/",
                b';' => ";",
                b'%' => "%",
                _ => {
                    // Decode the full (possibly multibyte) character for
                    // the error message.
                    let ch = input[i..].chars().next().expect("i is in bounds");
                    return Err(format!("unexpected character {ch:?}"));
                }
            },
        };
        // "!=" normalizes to "<>", so advance by the *matched* width, not
        // the emitted symbol's.
        i += if two == b"!=" { 2 } else { sym.len() };
        out.push(Token::Sym(sym));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_numbers_strings_symbols() {
        let toks = lex("SELECT a, 1.5 FROM t WHERE x = 'it''s'").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("SELECT".into()),
                Token::Ident("a".into()),
                Token::Sym(","),
                Token::Number { text: "1.5".into() },
                Token::Ident("FROM".into()),
                Token::Ident("t".into()),
                Token::Ident("WHERE".into()),
                Token::Ident("x".into()),
                Token::Sym("="),
                Token::Str("it's".into()),
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        let toks = lex("a <> b != c <= d >= e").unwrap();
        let syms: Vec<&Token> = toks.iter().filter(|t| matches!(t, Token::Sym(_))).collect();
        assert_eq!(
            syms,
            vec![
                &Token::Sym("<>"),
                &Token::Sym("<>"),
                &Token::Sym("<="),
                &Token::Sym(">=")
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("SELECT -- the works\n1").unwrap();
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(lex("'oops").is_err());
        assert!(lex("SELECT @").is_err());
    }

    #[test]
    fn scientific_numbers() {
        let toks = lex("1e3 2.5E-2").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Number { text: "1e3".into() },
                Token::Number {
                    text: "2.5E-2".into()
                },
            ]
        );
    }

    #[test]
    fn unicode_in_strings() {
        let toks = lex("'héllo → wörld'").unwrap();
        assert_eq!(toks, vec![Token::Str("héllo → wörld".into())]);
    }
}
