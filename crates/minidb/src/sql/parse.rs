//! Recursive-descent SQL parser.

use pdgf_schema::{SqlType, Value};

use crate::catalog::{ColumnDef, TableDef};

use super::ast::{AggFunc, BinOp, ColRef, Expr, Join, OrderKey, SelectItem, SelectStmt, Stmt};
use super::lex::{lex, Token};

/// Parse one statement (a trailing `;` is allowed).
pub fn parse(sql: &str) -> Result<Stmt, String> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.parse_stmt()?;
    p.eat_sym(";");
    if p.pos != p.tokens.len() {
        return Err(format!("trailing input after statement: {:?}", p.peek()));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Is the next token the given keyword (case-insensitive)?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    /// Consume a keyword if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), String> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(format!("expected {kw}, got {:?}", self.peek()))
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(Token::Sym(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<(), String> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(format!("expected {sym:?}, got {:?}", self.peek()))
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(format!("expected identifier, got {other:?}")),
        }
    }

    fn parse_stmt(&mut self) -> Result<Stmt, String> {
        if self.eat_kw("SELECT") {
            return Ok(Stmt::Select(self.parse_select()?));
        }
        if self.eat_kw("CREATE") {
            self.expect_kw("TABLE")?;
            return self.parse_create();
        }
        if self.eat_kw("INSERT") {
            self.expect_kw("INTO")?;
            return self.parse_insert();
        }
        if self.eat_kw("DROP") {
            self.expect_kw("TABLE")?;
            return Ok(Stmt::Drop(self.expect_ident()?));
        }
        if self.eat_kw("DELETE") {
            self.expect_kw("FROM")?;
            let table = self.expect_ident()?;
            let predicate = if self.eat_kw("WHERE") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            return Ok(Stmt::Delete { table, predicate });
        }
        if self.eat_kw("UPDATE") {
            let table = self.expect_ident()?;
            self.expect_kw("SET")?;
            let mut assignments = Vec::new();
            loop {
                let col = self.expect_ident()?;
                self.expect_sym("=")?;
                assignments.push((col, self.parse_literal()?));
                if !self.eat_sym(",") {
                    break;
                }
            }
            let predicate = if self.eat_kw("WHERE") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            return Ok(Stmt::Update {
                table,
                assignments,
                predicate,
            });
        }
        Err(format!("expected a statement, got {:?}", self.peek()))
    }

    fn parse_create(&mut self) -> Result<Stmt, String> {
        let name = self.expect_ident()?;
        self.expect_sym("(")?;
        let mut def = TableDef::new(&name);
        let mut primaries: Vec<String> = Vec::new();
        loop {
            if self.eat_kw("PRIMARY") {
                self.expect_kw("KEY")?;
                self.expect_sym("(")?;
                loop {
                    primaries.push(self.expect_ident()?);
                    if !self.eat_sym(",") {
                        break;
                    }
                }
                self.expect_sym(")")?;
            } else if self.eat_kw("FOREIGN") {
                self.expect_kw("KEY")?;
                self.expect_sym("(")?;
                let col = self.expect_ident()?;
                self.expect_sym(")")?;
                self.expect_kw("REFERENCES")?;
                let ref_table = self.expect_ident()?;
                self.expect_sym("(")?;
                let ref_col = self.expect_ident()?;
                self.expect_sym(")")?;
                def = def.foreign_key(&col, &ref_table, &ref_col);
            } else {
                let col_name = self.expect_ident()?;
                let ty = self.parse_type()?;
                let mut col = ColumnDef::new(&col_name, ty);
                loop {
                    if self.eat_kw("NOT") {
                        self.expect_kw("NULL")?;
                        col = col.not_null();
                    } else if self.eat_kw("PRIMARY") {
                        self.expect_kw("KEY")?;
                        col = col.primary_key();
                    } else {
                        break;
                    }
                }
                def = def.column(col);
            }
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        for p in primaries {
            match def.column_index(&p) {
                Some(i) => {
                    def.columns[i].primary = true;
                    def.columns[i].nullable = false;
                }
                None => return Err(format!("PRIMARY KEY references unknown column {p:?}")),
            }
        }
        Ok(Stmt::CreateTable(def))
    }

    fn parse_type(&mut self) -> Result<SqlType, String> {
        let mut name = self.expect_ident()?;
        // Two-word type names.
        if name.eq_ignore_ascii_case("DOUBLE") && self.eat_kw("PRECISION") {
            name = "DOUBLE".to_string();
        }
        if self.eat_sym("(") {
            let mut args = String::new();
            loop {
                match self.bump() {
                    Some(Token::Number { text }) => args.push_str(&text),
                    other => return Err(format!("expected number in type, got {other:?}")),
                }
                if self.eat_sym(",") {
                    args.push(',');
                } else {
                    break;
                }
            }
            self.expect_sym(")")?;
            name = format!("{name}({args})");
        }
        SqlType::parse(&name).ok_or_else(|| format!("unknown type {name:?}"))
    }

    fn parse_insert(&mut self) -> Result<Stmt, String> {
        let table = self.expect_ident()?;
        // Optional column list: `INSERT INTO t (a, b, c) VALUES …`. The
        // engine requires full-row inserts, so the list is validated for
        // shape but otherwise informational.
        if self.eat_sym("(") {
            loop {
                self.expect_ident()?;
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
        }
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_sym("(")?;
            let mut row = Vec::new();
            loop {
                row.push(self.parse_literal()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            rows.push(row);
            if !self.eat_sym(",") {
                break;
            }
        }
        Ok(Stmt::Insert { table, rows })
    }

    fn parse_literal(&mut self) -> Result<Value, String> {
        let negative = self.eat_sym("-");
        match self.bump() {
            Some(Token::Number { text }) => parse_number(&text, negative),
            Some(Token::Str(s)) if !negative => Ok(Value::text(s)),
            Some(Token::Ident(s)) if !negative && s.eq_ignore_ascii_case("NULL") => Ok(Value::Null),
            Some(Token::Ident(s)) if !negative && s.eq_ignore_ascii_case("TRUE") => {
                Ok(Value::Bool(true))
            }
            Some(Token::Ident(s)) if !negative && s.eq_ignore_ascii_case("FALSE") => {
                Ok(Value::Bool(false))
            }
            other => Err(format!("expected literal, got {other:?}")),
        }
    }

    fn parse_select(&mut self) -> Result<SelectStmt, String> {
        let distinct = self.eat_kw("DISTINCT");
        let mut items = Vec::new();
        loop {
            if self.eat_sym("*") {
                items.push(SelectItem::Star);
            } else {
                let expr = self.parse_expr()?;
                let alias = if self.eat_kw("AS") {
                    Some(self.expect_ident()?)
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_kw("FROM")?;
        let from = self.expect_ident()?;
        let mut joins = Vec::new();
        while self.eat_kw("JOIN")
            || (self.at_kw("INNER") && {
                self.pos += 1;
                self.expect_kw("JOIN")?;
                true
            })
        {
            let table = self.expect_ident()?;
            self.expect_kw("ON")?;
            let left = self.parse_colref()?;
            self.expect_sym("=")?;
            let right = self.parse_colref()?;
            joins.push(Join { table, left, right });
        }
        let where_ = if self.eat_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.parse_colref()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let key = match self.peek() {
                    Some(Token::Number { text }) => {
                        let n: usize = text.parse().map_err(|_| format!("bad ordinal {text:?}"))?;
                        self.pos += 1;
                        OrderKey::Ordinal(n)
                    }
                    _ => {
                        let c = self.parse_colref()?;
                        OrderKey::Name(match c.table {
                            Some(t) => format!("{t}.{}", c.column),
                            None => c.column,
                        })
                    }
                };
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push((key, desc));
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.bump() {
                Some(Token::Number { text }) => {
                    Some(text.parse().map_err(|_| format!("bad LIMIT {text:?}"))?)
                }
                other => return Err(format!("expected LIMIT count, got {other:?}")),
            }
        } else {
            None
        };
        Ok(SelectStmt {
            distinct,
            items,
            from,
            joins,
            where_,
            group_by,
            order_by,
            limit,
        })
    }

    fn parse_colref(&mut self) -> Result<ColRef, String> {
        let first = self.expect_ident()?;
        if self.eat_sym(".") {
            let column = self.expect_ident()?;
            Ok(ColRef {
                table: Some(first),
                column,
            })
        } else {
            Ok(ColRef {
                table: None,
                column: first,
            })
        }
    }

    // Precedence: OR < AND < NOT < comparison < additive < multiplicative
    // < unary < atom.
    fn parse_expr(&mut self) -> Result<Expr, String> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, String> {
        let mut lhs = self.parse_and()?;
        while self.eat_kw("OR") {
            lhs = Expr::Bin(BinOp::Or, Box::new(lhs), Box::new(self.parse_and()?));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, String> {
        let mut lhs = self.parse_not()?;
        while self.eat_kw("AND") {
            lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(self.parse_not()?));
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> Result<Expr, String> {
        if self.eat_kw("NOT") {
            return Ok(Expr::Not(Box::new(self.parse_not()?)));
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr, String> {
        let lhs = self.parse_additive()?;
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        if self.eat_kw("LIKE") {
            match self.bump() {
                Some(Token::Str(pattern)) => {
                    return Ok(Expr::Like {
                        expr: Box::new(lhs),
                        pattern,
                    })
                }
                other => return Err(format!("expected LIKE pattern, got {other:?}")),
            }
        }
        let op = if self.eat_sym("=") {
            BinOp::Eq
        } else if self.eat_sym("<>") {
            BinOp::Ne
        } else if self.eat_sym("<=") {
            BinOp::Le
        } else if self.eat_sym(">=") {
            BinOp::Ge
        } else if self.eat_sym("<") {
            BinOp::Lt
        } else if self.eat_sym(">") {
            BinOp::Gt
        } else {
            return Ok(lhs);
        };
        Ok(Expr::Bin(
            op,
            Box::new(lhs),
            Box::new(self.parse_additive()?),
        ))
    }

    fn parse_additive(&mut self) -> Result<Expr, String> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            if self.eat_sym("+") {
                lhs = Expr::Bin(
                    BinOp::Add,
                    Box::new(lhs),
                    Box::new(self.parse_multiplicative()?),
                );
            } else if self.eat_sym("-") {
                lhs = Expr::Bin(
                    BinOp::Sub,
                    Box::new(lhs),
                    Box::new(self.parse_multiplicative()?),
                );
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, String> {
        let mut lhs = self.parse_unary()?;
        loop {
            if self.eat_sym("*") {
                lhs = Expr::Bin(BinOp::Mul, Box::new(lhs), Box::new(self.parse_unary()?));
            } else if self.eat_sym("/") {
                lhs = Expr::Bin(BinOp::Div, Box::new(lhs), Box::new(self.parse_unary()?));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, String> {
        if self.eat_sym("-") {
            return Ok(Expr::Neg(Box::new(self.parse_unary()?)));
        }
        self.parse_atom()
    }

    fn parse_atom(&mut self) -> Result<Expr, String> {
        match self.peek().cloned() {
            Some(Token::Sym("(")) => {
                self.pos += 1;
                let e = self.parse_expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Some(Token::Number { text }) => {
                self.pos += 1;
                Ok(Expr::Lit(parse_number(&text, false)?))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Lit(Value::text(s)))
            }
            Some(Token::Ident(word)) => {
                if word.eq_ignore_ascii_case("NULL") {
                    self.pos += 1;
                    return Ok(Expr::Lit(Value::Null));
                }
                if word.eq_ignore_ascii_case("TRUE") {
                    self.pos += 1;
                    return Ok(Expr::Lit(Value::Bool(true)));
                }
                if word.eq_ignore_ascii_case("FALSE") {
                    self.pos += 1;
                    return Ok(Expr::Lit(Value::Bool(false)));
                }
                let agg = match word.to_ascii_uppercase().as_str() {
                    "COUNT" => Some(AggFunc::Count),
                    "SUM" => Some(AggFunc::Sum),
                    "AVG" => Some(AggFunc::Avg),
                    "MIN" => Some(AggFunc::Min),
                    "MAX" => Some(AggFunc::Max),
                    _ => None,
                };
                if let Some(func) = agg {
                    // Only treat as aggregate when followed by '('.
                    if matches!(self.tokens.get(self.pos + 1), Some(Token::Sym("("))) {
                        self.pos += 2;
                        if func == AggFunc::Count && self.eat_sym("*") {
                            self.expect_sym(")")?;
                            return Ok(Expr::Agg(AggFunc::Count, None));
                        }
                        let arg = self.parse_expr()?;
                        self.expect_sym(")")?;
                        return Ok(Expr::Agg(func, Some(Box::new(arg))));
                    }
                }
                Ok(Expr::Col(self.parse_colref()?))
            }
            other => Err(format!("expected expression, got {other:?}")),
        }
    }
}

fn parse_number(text: &str, negative: bool) -> Result<Value, String> {
    if !text.contains('.') && !text.contains('e') && !text.contains('E') {
        let v: i64 = text.parse().map_err(|_| format!("bad number {text:?}"))?;
        Ok(Value::Long(if negative { -v } else { v }))
    } else {
        let v: f64 = text.parse().map_err(|_| format!("bad number {text:?}"))?;
        Ok(Value::Double(if negative { -v } else { v }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_create_table_with_constraints() {
        let stmt = parse(
            "CREATE TABLE orders (o_id BIGINT PRIMARY KEY, o_cust BIGINT NOT NULL, \
             o_comment VARCHAR(79), FOREIGN KEY (o_cust) REFERENCES customer (c_id));",
        )
        .unwrap();
        let Stmt::CreateTable(def) = stmt else {
            panic!()
        };
        assert_eq!(def.name, "orders");
        assert!(def.columns[0].primary);
        assert!(!def.columns[1].nullable);
        assert_eq!(def.columns[2].sql_type, SqlType::Varchar(79));
        assert_eq!(def.foreign_keys.len(), 1);
    }

    #[test]
    fn parses_table_level_primary_key() {
        let stmt = parse("CREATE TABLE t (a INTEGER, b INTEGER, PRIMARY KEY (a, b))").unwrap();
        let Stmt::CreateTable(def) = stmt else {
            panic!()
        };
        assert!(def.columns.iter().all(|c| c.primary && !c.nullable));
        assert!(parse("CREATE TABLE t (a INTEGER, PRIMARY KEY (zz))").is_err());
    }

    #[test]
    fn parses_insert_with_multiple_rows() {
        let stmt = parse("INSERT INTO t VALUES (1, 'a', NULL), (-2, 'b''c', 3.5)").unwrap();
        let Stmt::Insert { table, rows } = stmt else {
            panic!()
        };
        assert_eq!(table, "t");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], Value::Long(1));
        assert_eq!(rows[0][2], Value::Null);
        assert_eq!(rows[1][0], Value::Long(-2));
        assert_eq!(rows[1][1], Value::text("b'c"));
        assert_eq!(rows[1][2], Value::Double(3.5));
    }

    #[test]
    fn parses_full_select() {
        let stmt = parse(
            "SELECT o.o_cust, COUNT(*) AS n, SUM(o.total) FROM orders o_unused \
             WHERE o_cust > 5 AND status = 'OK' GROUP BY o_cust \
             ORDER BY 2 DESC, o_cust LIMIT 10",
        );
        // Our FROM takes a bare table name; aliasing is not supported, so
        // the above should fail cleanly rather than misparse.
        assert!(stmt.is_err());

        let stmt = parse(
            "SELECT o_cust, COUNT(*) AS n FROM orders \
             WHERE total >= 10.5 OR comment LIKE '%quick%' \
             GROUP BY o_cust ORDER BY n DESC LIMIT 3;",
        )
        .unwrap();
        let Stmt::Select(s) = stmt else { panic!() };
        assert_eq!(s.items.len(), 2);
        assert_eq!(s.from, "orders");
        assert!(s.where_.is_some());
        assert_eq!(s.group_by.len(), 1);
        assert_eq!(s.order_by, vec![(OrderKey::Name("n".into()), true)]);
        assert_eq!(s.limit, Some(3));
    }

    #[test]
    fn parses_joins() {
        let stmt = parse(
            "SELECT customer.c_name, orders.o_total FROM customer \
             JOIN orders ON customer.c_id = orders.o_cust \
             JOIN lineitem ON orders.o_id = lineitem.l_oid",
        )
        .unwrap();
        let Stmt::Select(s) = stmt else { panic!() };
        assert_eq!(s.joins.len(), 2);
        assert_eq!(s.joins[0].table, "orders");
        assert_eq!(s.joins[0].left.table.as_deref(), Some("customer"));
    }

    #[test]
    fn expression_precedence() {
        let Stmt::Select(s) = parse("SELECT 1 + 2 * 3 FROM t").unwrap() else {
            panic!()
        };
        let SelectItem::Expr { expr, .. } = &s.items[0] else {
            panic!()
        };
        // 1 + (2 * 3)
        match expr {
            Expr::Bin(BinOp::Add, _, rhs) => {
                assert!(matches!(rhs.as_ref(), Expr::Bin(BinOp::Mul, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn is_null_and_not() {
        let Stmt::Select(s) =
            parse("SELECT * FROM t WHERE a IS NULL AND NOT b IS NOT NULL").unwrap()
        else {
            panic!()
        };
        assert!(!s.where_.unwrap().has_aggregate());
    }

    #[test]
    fn count_star_vs_count_col() {
        let Stmt::Select(s) = parse("SELECT COUNT(*), COUNT(x) FROM t").unwrap() else {
            panic!()
        };
        assert_eq!(
            s.items[0],
            SelectItem::Expr {
                expr: Expr::Agg(AggFunc::Count, None),
                alias: None
            }
        );
        assert!(matches!(
            &s.items[1],
            SelectItem::Expr {
                expr: Expr::Agg(AggFunc::Count, Some(_)),
                ..
            }
        ));
    }

    #[test]
    fn min_as_column_name_is_allowed() {
        // MIN not followed by '(' is an ordinary identifier.
        let Stmt::Select(s) = parse("SELECT min FROM t").unwrap() else {
            panic!()
        };
        assert!(matches!(
            &s.items[0],
            SelectItem::Expr { expr: Expr::Col(c), .. } if c.column == "min"
        ));
    }

    #[test]
    fn drop_table() {
        assert_eq!(parse("DROP TABLE t;").unwrap(), Stmt::Drop("t".into()));
    }

    #[test]
    fn errors_are_clean() {
        assert!(parse("").is_err());
        assert!(parse("SELECT").is_err());
        assert!(parse("SELECT * FROM").is_err());
        assert!(parse("SELECT * FROM t GARBAGE MORE").is_err());
        assert!(parse("CREATE TABLE t (a NOTATYPE)").is_err());
        assert!(parse("INSERT INTO t VALUES 1").is_err());
    }
}
