//! Sampling scans.
//!
//! DBSynth lets users "specify the amount of data sampled and the
//! sampling strategy"; the Markov-extraction experiment sweeps sample
//! fractions from 0.001% to 100%. All strategies are deterministic given
//! their seed, so extraction runs are reproducible.

use pdgf_prng::{PdgfDefaultRandom, PdgfRng};

/// How rows are selected from a scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SampleStrategy {
    /// Every row (a 100% sample).
    Full,
    /// Independent Bernoulli sample: each row kept with probability `p`.
    Fraction {
        /// Keep probability in `[0, 1]`.
        p: f64,
        /// Determinism seed.
        seed: u64,
    },
    /// Systematic sample: every `k`-th row, starting at row 0.
    EveryK {
        /// Stride (>= 1).
        k: u64,
    },
    /// Reservoir sample of exactly `n` rows (uniform without
    /// replacement), in original row order.
    Reservoir {
        /// Reservoir capacity.
        n: usize,
        /// Determinism seed.
        seed: u64,
    },
    /// The first `n` rows.
    FirstN {
        /// Prefix length.
        n: usize,
    },
}

impl SampleStrategy {
    /// Indices of the sampled rows from a table of `total` rows, in
    /// ascending order.
    pub fn select(&self, total: usize) -> Vec<usize> {
        match *self {
            SampleStrategy::Full => (0..total).collect(),
            SampleStrategy::Fraction { p, seed } => {
                assert!((0.0..=1.0).contains(&p), "fraction out of range");
                let mut rng = PdgfDefaultRandom::seed_from(seed);
                (0..total).filter(|_| rng.next_bool(p)).collect()
            }
            SampleStrategy::EveryK { k } => {
                assert!(k >= 1, "stride must be at least 1");
                (0..total).step_by(k as usize).collect()
            }
            SampleStrategy::Reservoir { n, seed } => {
                if n == 0 {
                    return Vec::new();
                }
                let mut rng = PdgfDefaultRandom::seed_from(seed);
                let mut reservoir: Vec<usize> = (0..total.min(n)).collect();
                for i in n..total {
                    let j = rng.next_bounded(i as u64 + 1) as usize;
                    if j < n {
                        reservoir[j] = i;
                    }
                }
                reservoir.sort_unstable();
                reservoir
            }
            SampleStrategy::FirstN { n } => (0..total.min(n)).collect(),
        }
    }

    /// Expected sample size for a table of `total` rows (exact for all
    /// strategies except `Fraction`, where it is the mean).
    pub fn expected_size(&self, total: usize) -> usize {
        match *self {
            SampleStrategy::Full => total,
            SampleStrategy::Fraction { p, .. } => (total as f64 * p).round() as usize,
            SampleStrategy::EveryK { k } => total.div_ceil(k as usize),
            SampleStrategy::Reservoir { n, .. } => total.min(n),
            SampleStrategy::FirstN { n } => total.min(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_selects_everything() {
        assert_eq!(SampleStrategy::Full.select(5), vec![0, 1, 2, 3, 4]);
        assert_eq!(SampleStrategy::Full.expected_size(5), 5);
    }

    #[test]
    fn fraction_is_calibrated_and_deterministic() {
        let s = SampleStrategy::Fraction { p: 0.1, seed: 42 };
        let picked = s.select(100_000);
        assert_eq!(picked, s.select(100_000), "not deterministic");
        let frac = picked.len() as f64 / 100_000.0;
        assert!((0.095..0.105).contains(&frac), "frac {frac}");
        assert!(SampleStrategy::Fraction { p: 0.0, seed: 1 }
            .select(1000)
            .is_empty());
        assert_eq!(
            SampleStrategy::Fraction { p: 1.0, seed: 1 }
                .select(1000)
                .len(),
            1000
        );
    }

    #[test]
    fn every_k_is_systematic() {
        let s = SampleStrategy::EveryK { k: 3 };
        assert_eq!(s.select(10), vec![0, 3, 6, 9]);
        assert_eq!(s.expected_size(10), 4);
    }

    #[test]
    fn reservoir_is_exact_size_and_uniformish() {
        let s = SampleStrategy::Reservoir { n: 100, seed: 7 };
        let picked = s.select(10_000);
        assert_eq!(picked.len(), 100);
        assert!(
            picked.windows(2).all(|w| w[0] < w[1]),
            "must be sorted unique"
        );
        // Roughly half the picks should land in the second half.
        let late = picked.iter().filter(|&&i| i >= 5000).count();
        assert!((30..70).contains(&late), "late picks: {late}");
        // Small tables are returned whole.
        assert_eq!(
            SampleStrategy::Reservoir { n: 100, seed: 7 }
                .select(10)
                .len(),
            10
        );
        assert!(SampleStrategy::Reservoir { n: 0, seed: 7 }
            .select(10)
            .is_empty());
    }

    #[test]
    fn first_n_is_a_prefix() {
        assert_eq!(SampleStrategy::FirstN { n: 3 }.select(10), vec![0, 1, 2]);
        assert_eq!(SampleStrategy::FirstN { n: 30 }.select(10).len(), 10);
    }

    #[test]
    fn reservoir_different_seeds_differ() {
        let a = SampleStrategy::Reservoir { n: 50, seed: 1 }.select(10_000);
        let b = SampleStrategy::Reservoir { n: 50, seed: 2 }.select(10_000);
        assert_ne!(a, b);
    }
}
