//! Statistics — the substrate's `ANALYZE`.
//!
//! DBSynth's elaborate extraction reads "min/max constraints, histograms,
//! NULL probabilities, as well as statistic information collected by the
//! database system such as histograms". This module computes them from a
//! table scan (optionally over a sample).

use std::collections::HashSet;

use pdgf_schema::Value;

use crate::table::TableData;

/// An equi-width histogram over a numeric column.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Lower bound of the first bucket.
    pub lo: f64,
    /// Upper bound of the last bucket.
    pub hi: f64,
    /// Per-bucket counts.
    pub counts: Vec<u64>,
}

impl Histogram {
    /// Build from numeric values with `buckets` equal-width buckets.
    /// Returns `None` for empty input.
    pub fn build(values: impl Iterator<Item = f64>, buckets: usize) -> Option<Self> {
        assert!(buckets > 0);
        let vals: Vec<f64> = values.filter(|v| v.is_finite()).collect();
        if vals.is_empty() {
            return None;
        }
        let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut counts = vec![0u64; buckets];
        let width = (hi - lo) / buckets as f64;
        for v in vals {
            let idx = if width == 0.0 {
                0
            } else {
                (((v - lo) / width) as usize).min(buckets - 1)
            };
            counts[idx] += 1;
        }
        Some(Self { lo, hi, counts })
    }

    /// Total count across buckets.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Bucket boundaries `(lo_i, hi_i)` for reporting.
    pub fn bucket_bounds(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + width * i as f64, self.lo + width * (i + 1) as f64)
    }
}

/// Per-column statistics.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Column name.
    pub name: String,
    /// Values scanned (including NULLs).
    pub count: u64,
    /// NULLs seen.
    pub null_count: u64,
    /// Minimum non-null value.
    pub min: Option<Value>,
    /// Maximum non-null value.
    pub max: Option<Value>,
    /// Exact distinct count of non-null values.
    pub distinct: u64,
    /// Equi-width histogram (numeric columns only).
    pub histogram: Option<Histogram>,
    /// Average text length (text columns only).
    pub avg_text_len: Option<f64>,
}

impl ColumnStats {
    /// NULL fraction in `[0, 1]`.
    pub fn null_fraction(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.null_count as f64 / self.count as f64
        }
    }

    /// Compute stats for one column of `table`, scanning the row indices
    /// in `rows` (e.g. a sample), or all rows when `rows` is `None`.
    pub fn compute(
        table: &TableData,
        column: usize,
        rows: Option<&[usize]>,
        histogram_buckets: usize,
    ) -> Self {
        let name = table.def().columns[column].name.clone();
        let mut count = 0u64;
        let mut null_count = 0u64;
        let mut min: Option<Value> = None;
        let mut max: Option<Value> = None;
        let mut distinct: HashSet<String> = HashSet::new();
        let mut numeric: Vec<f64> = Vec::new();
        let mut text_len_sum = 0u64;
        let mut text_count = 0u64;

        let mut visit = |v: &Value| {
            count += 1;
            if v.is_null() {
                null_count += 1;
                return;
            }
            match &min {
                Some(m) if v.sql_cmp(m).is_ge() => {}
                _ => min = Some(v.clone()),
            }
            match &max {
                Some(m) if v.sql_cmp(m).is_le() => {}
                _ => max = Some(v.clone()),
            }
            distinct.insert(v.to_string());
            if let Some(x) = v.as_f64() {
                numeric.push(x);
            }
            if let Some(s) = v.as_text() {
                text_len_sum += s.len() as u64;
                text_count += 1;
            }
        };

        match rows {
            Some(indices) => {
                for &i in indices {
                    visit(&table.rows()[i][column]);
                }
            }
            None => {
                for v in table.column(column) {
                    visit(v);
                }
            }
        }

        let histogram = if text_count == 0 {
            Histogram::build(numeric.into_iter(), histogram_buckets)
        } else {
            None
        };
        ColumnStats {
            name,
            count,
            null_count,
            min,
            max,
            distinct: distinct.len() as u64,
            histogram,
            avg_text_len: if text_count > 0 {
                Some(text_len_sum as f64 / text_count as f64)
            } else {
                None
            },
        }
    }
}

/// Whole-table statistics.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Table name.
    pub table: String,
    /// Row count.
    pub row_count: u64,
    /// Per-column statistics in declaration order.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Compute full-table statistics with the default 16-bucket
    /// histograms.
    pub fn analyze(table: &TableData) -> Self {
        Self::analyze_with(table, None, 16)
    }

    /// Compute statistics over a row sample with custom histogram width.
    pub fn analyze_with(
        table: &TableData,
        rows: Option<&[usize]>,
        histogram_buckets: usize,
    ) -> Self {
        let columns = (0..table.def().columns.len())
            .map(|c| ColumnStats::compute(table, c, rows, histogram_buckets))
            .collect();
        TableStats {
            table: table.def().name.clone(),
            row_count: rows
                .map(|r| r.len() as u64)
                .unwrap_or(table.row_count() as u64),
            columns,
        }
    }

    /// Stats for a column by name.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ColumnDef, TableDef};
    use pdgf_schema::SqlType;

    fn table() -> TableData {
        let mut t = TableData::new(
            TableDef::new("s")
                .column(ColumnDef::new("n", SqlType::Integer))
                .column(ColumnDef::new("w", SqlType::Varchar(10))),
        );
        for i in 0..100i64 {
            let text = if i % 10 == 0 {
                Value::Null
            } else {
                Value::text(format!("w{}", i % 3))
            };
            t.insert(vec![Value::Long(i), text]).unwrap();
        }
        t
    }

    #[test]
    fn numeric_stats_are_exact() {
        let stats = TableStats::analyze(&table());
        assert_eq!(stats.row_count, 100);
        let n = stats.column("n").unwrap();
        assert_eq!(n.count, 100);
        assert_eq!(n.null_count, 0);
        assert_eq!(n.min, Some(Value::Long(0)));
        assert_eq!(n.max, Some(Value::Long(99)));
        assert_eq!(n.distinct, 100);
        let h = n.histogram.as_ref().unwrap();
        assert_eq!(h.total(), 100);
        assert_eq!(h.counts.len(), 16);
    }

    #[test]
    fn text_stats_count_nulls_and_lengths() {
        let stats = TableStats::analyze(&table());
        let w = stats.column("w").unwrap();
        assert_eq!(w.null_count, 10);
        assert!((w.null_fraction() - 0.1).abs() < 1e-9);
        assert_eq!(w.distinct, 3);
        assert_eq!(w.avg_text_len, Some(2.0));
        assert!(w.histogram.is_none(), "no histograms for text");
        assert_eq!(w.min, Some(Value::text("w0")));
        assert_eq!(w.max, Some(Value::text("w2")));
    }

    #[test]
    fn histogram_buckets_partition_the_range() {
        let h = Histogram::build((0..100).map(f64::from), 10).unwrap();
        assert_eq!(h.counts, vec![10; 10]);
        let (lo0, hi0) = h.bucket_bounds(0);
        assert_eq!(lo0, 0.0);
        assert!((hi0 - 9.9).abs() < 0.2);
        // Max value lands in the last bucket, not one past it.
        assert_eq!(h.counts.iter().sum::<u64>(), 100);
    }

    #[test]
    fn histogram_of_constant_column() {
        let h = Histogram::build(std::iter::repeat_n(5.0, 10), 4).unwrap();
        assert_eq!(h.counts[0], 10);
        assert_eq!(h.lo, h.hi);
    }

    #[test]
    fn empty_histogram_is_none() {
        assert!(Histogram::build(std::iter::empty(), 4).is_none());
    }

    #[test]
    fn sampled_stats_scan_only_the_sample() {
        let t = table();
        let sample: Vec<usize> = (0..100).step_by(2).collect();
        let stats = TableStats::analyze_with(&t, Some(&sample), 8);
        assert_eq!(stats.row_count, 50);
        let n = stats.column("n").unwrap();
        assert_eq!(n.count, 50);
        assert_eq!(n.max, Some(Value::Long(98)));
        assert_eq!(n.distinct, 50);
    }

    #[test]
    fn all_null_column_has_no_min_max() {
        let mut t =
            TableData::new(TableDef::new("x").column(ColumnDef::new("v", SqlType::Integer)));
        for _ in 0..5 {
            t.insert(vec![Value::Null]).unwrap();
        }
        let stats = TableStats::analyze(&t);
        let c = &stats.columns[0];
        assert_eq!(c.null_fraction(), 1.0);
        assert_eq!(c.min, None);
        assert_eq!(c.max, None);
        assert_eq!(c.distinct, 0);
        assert!(c.histogram.is_none());
    }
}
