//! A `dbgen`-style baseline generator.
//!
//! Figure 6 of the paper compares PDGF against TPC-H's `dbgen`. To keep
//! the comparison architecture-vs-architecture (and remove the Java/C
//! confound the paper had), this module reimplements `dbgen`'s *design*
//! in Rust:
//!
//! * **hard-coded** per-table generation loops with `format!`-style row
//!   assembly — no generic generator framework, no meta generators;
//! * **sequential, stateful RNG streams** per table — values are drawn in
//!   row order, so a row cannot be produced without producing (or
//!   skipping through) its predecessors;
//! * **non-transparent parallelism**: "for each parallel stream a new
//!   instance is started, which writes its own files" — a chunked
//!   instance writes rows `[lo, hi)` of a table to its own sink, and the
//!   caller gets one file per instance rather than PDGF's sorted single
//!   file.
//!
//! Output is the classic `|`-separated `.tbl` format.

use std::io;

use pdgf_output::Sink;
use pdgf_prng::{PdgfRng, XorShift64Star};

use crate::corpus;
use crate::tpch::{INSTRUCTIONS, MFGRS, MODES, NATIONS, PRIORITIES, REGIONS, SEGMENTS};

/// The eight TPC-H tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpchTable {
    /// region (5 rows).
    Region,
    /// nation (25 rows).
    Nation,
    /// supplier (10k × SF).
    Supplier,
    /// customer (150k × SF).
    Customer,
    /// part (200k × SF).
    Part,
    /// partsupp (800k × SF).
    PartSupp,
    /// orders (1.5M × SF).
    Orders,
    /// lineitem (6M × SF).
    LineItem,
}

impl TpchTable {
    /// All tables in generation order.
    pub const ALL: [TpchTable; 8] = [
        TpchTable::Region,
        TpchTable::Nation,
        TpchTable::Supplier,
        TpchTable::Customer,
        TpchTable::Part,
        TpchTable::PartSupp,
        TpchTable::Orders,
        TpchTable::LineItem,
    ];

    /// Row count at scale factor `sf`.
    pub fn rows(self, sf: f64) -> u64 {
        let scaled = |base: f64| (base * sf).round() as u64;
        match self {
            TpchTable::Region => 5,
            TpchTable::Nation => 25,
            TpchTable::Supplier => scaled(10_000.0),
            TpchTable::Customer => scaled(150_000.0),
            TpchTable::Part => scaled(200_000.0),
            TpchTable::PartSupp => scaled(800_000.0),
            TpchTable::Orders => scaled(1_500_000.0),
            TpchTable::LineItem => scaled(6_000_000.0),
        }
    }

    /// `.tbl` file stem.
    pub fn file_stem(self) -> &'static str {
        match self {
            TpchTable::Region => "region",
            TpchTable::Nation => "nation",
            TpchTable::Supplier => "supplier",
            TpchTable::Customer => "customer",
            TpchTable::Part => "part",
            TpchTable::PartSupp => "partsupp",
            TpchTable::Orders => "orders",
            TpchTable::LineItem => "lineitem",
        }
    }
}

/// The sequential TPC-H baseline generator.
pub struct DbGen {
    sf: f64,
    seed: u64,
}

impl DbGen {
    /// Generator at scale factor `sf`.
    pub fn new(sf: f64, seed: u64) -> Self {
        Self { sf, seed }
    }

    /// Generate one whole table into `sink`.
    pub fn generate_table(&self, table: TpchTable, sink: &mut dyn Sink) -> io::Result<u64> {
        let rows = table.rows(self.sf);
        self.generate_chunk(table, 0, rows, sink)
    }

    /// Generate rows `[lo, hi)` of a table — one "instance" of dbgen's
    /// chunked parallel mode. The instance's RNG stream is seeded by its
    /// chunk start, mimicking dbgen's per-segment stream advancement.
    pub fn generate_chunk(
        &self,
        table: TpchTable,
        lo: u64,
        hi: u64,
        sink: &mut dyn Sink,
    ) -> io::Result<u64> {
        let mut rng = XorShift64Star::seed_from(
            self.seed ^ (table as u64) << 32 ^ lo.wrapping_mul(0x9E37_79B9),
        );
        let mut buf = String::with_capacity(64 * 1024);
        let mut count = 0;
        for row in lo..hi {
            match table {
                TpchTable::Region => self.region_row(row, &mut buf),
                TpchTable::Nation => self.nation_row(row, &mut rng, &mut buf),
                TpchTable::Supplier => self.supplier_row(row, &mut rng, &mut buf),
                TpchTable::Customer => self.customer_row(row, &mut rng, &mut buf),
                TpchTable::Part => self.part_row(row, &mut rng, &mut buf),
                TpchTable::PartSupp => self.partsupp_row(row, &mut rng, &mut buf),
                TpchTable::Orders => self.orders_row(row, &mut rng, &mut buf),
                TpchTable::LineItem => self.lineitem_row(row, &mut rng, &mut buf),
            }
            count += 1;
            if buf.len() >= 60 * 1024 {
                sink.write_chunk(buf.as_bytes())?;
                buf.clear();
            }
        }
        if !buf.is_empty() {
            sink.write_chunk(buf.as_bytes())?;
        }
        Ok(count)
    }

    fn text(&self, rng: &mut XorShift64Star, min_words: u64, max_words: u64, out: &mut String) {
        let n = min_words + rng.next_bounded(max_words - min_words + 1);
        for i in 0..n {
            if i > 0 {
                out.push(' ');
            }
            let class = rng.next_bounded(4);
            let list: &[&str] = match class {
                0 => corpus::ADVERBS,
                1 => corpus::ADJECTIVES,
                2 => corpus::NOUNS,
                _ => corpus::VERBS,
            };
            out.push_str(list[rng.next_bounded(list.len() as u64) as usize]);
        }
    }

    fn rand_str(&self, rng: &mut XorShift64Star, min: u64, max: u64, out: &mut String) {
        const CS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
        let n = min + rng.next_bounded(max - min + 1);
        for _ in 0..n {
            out.push(CS[rng.next_bounded(62) as usize] as char);
        }
    }

    fn money(&self, rng: &mut XorShift64Star, lo: i64, hi: i64, out: &mut String) {
        let cents = rng.next_i64_in(lo, hi);
        let sign = if cents < 0 { "-" } else { "" };
        let mag = cents.unsigned_abs();
        out.push_str(&format!("{sign}{}.{:02}", mag / 100, mag % 100));
    }

    fn date(&self, rng: &mut XorShift64Star, out: &mut String) {
        // 1992-01-01 .. 1998-08-02 as day offsets.
        let day = rng.next_bounded(2_406);
        let date = pdgf_schema::value::Date(8_035 + day as i32);
        out.push_str(&date.to_string());
    }

    fn phone(&self, rng: &mut XorShift64Star, out: &mut String) {
        out.push_str(&format!(
            "{}-{}-{}-{}",
            10 + rng.next_bounded(25),
            100 + rng.next_bounded(900),
            100 + rng.next_bounded(900),
            1000 + rng.next_bounded(9000)
        ));
    }

    fn region_row(&self, row: u64, out: &mut String) {
        out.push_str(&format!(
            "{}|{}|regional comment|\n",
            row,
            REGIONS[row as usize % REGIONS.len()]
        ));
    }

    fn nation_row(&self, row: u64, rng: &mut XorShift64Star, out: &mut String) {
        out.push_str(&format!(
            "{}|{}|{}|",
            row,
            NATIONS[row as usize % NATIONS.len()],
            row % 5
        ));
        self.text(rng, 4, 18, out);
        out.push_str("|\n");
    }

    fn supplier_row(&self, row: u64, rng: &mut XorShift64Star, out: &mut String) {
        out.push_str(&format!("{}|Supplier#{:09}|", row + 1, row + 1));
        self.rand_str(rng, 10, 40, out);
        out.push('|');
        out.push_str(&format!("{}|", rng.next_bounded(25)));
        self.phone(rng, out);
        out.push('|');
        self.money(rng, -99_999, 999_999, out);
        out.push('|');
        self.text(rng, 4, 12, out);
        out.push_str("|\n");
    }

    fn customer_row(&self, row: u64, rng: &mut XorShift64Star, out: &mut String) {
        out.push_str(&format!("{}|Customer#{:09}|", row + 1, row + 1));
        self.rand_str(rng, 10, 40, out);
        out.push('|');
        out.push_str(&format!("{}|", rng.next_bounded(25)));
        self.phone(rng, out);
        out.push('|');
        self.money(rng, -99_999, 999_999, out);
        out.push('|');
        out.push_str(SEGMENTS[rng.next_bounded(SEGMENTS.len() as u64) as usize]);
        out.push('|');
        self.text(rng, 4, 14, out);
        out.push_str("|\n");
    }

    fn part_row(&self, row: u64, rng: &mut XorShift64Star, out: &mut String) {
        out.push_str(&format!("{}|", row + 1));
        for i in 0..5 {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(corpus::COLORS[rng.next_bounded(corpus::COLORS.len() as u64) as usize]);
        }
        out.push('|');
        out.push_str(MFGRS[rng.next_bounded(5) as usize]);
        out.push_str(&format!("|Brand#{}|", 11 + rng.next_bounded(45)));
        out.push_str(crate::tpch::TYPE_SYLL1[rng.next_bounded(6) as usize]);
        out.push(' ');
        out.push_str(crate::tpch::TYPE_SYLL2[rng.next_bounded(5) as usize]);
        out.push(' ');
        out.push_str(crate::tpch::TYPE_SYLL3[rng.next_bounded(5) as usize]);
        out.push('|');
        out.push_str(&format!("{}|", 1 + rng.next_bounded(50)));
        out.push_str(crate::tpch::CONTAINER_SYLL1[rng.next_bounded(5) as usize]);
        out.push(' ');
        out.push_str(crate::tpch::CONTAINER_SYLL2[rng.next_bounded(8) as usize]);
        out.push('|');
        self.money(rng, 90_000, 200_000, out);
        out.push('|');
        self.text(rng, 1, 5, out);
        out.push_str("|\n");
    }

    fn partsupp_row(&self, row: u64, rng: &mut XorShift64Star, out: &mut String) {
        let parts = TpchTable::Part.rows(self.sf).max(1);
        let supps = TpchTable::Supplier.rows(self.sf).max(1);
        out.push_str(&format!(
            "{}|{}|{}|",
            row % parts + 1,
            (row / parts + row) % supps + 1,
            1 + rng.next_bounded(9_999)
        ));
        self.money(rng, 100, 100_000, out);
        out.push('|');
        self.text(rng, 10, 30, out);
        out.push_str("|\n");
    }

    fn orders_row(&self, row: u64, rng: &mut XorShift64Star, out: &mut String) {
        let custs = TpchTable::Customer.rows(self.sf).max(1);
        out.push_str(&format!("{}|{}|", row + 1, rng.next_bounded(custs) + 1));
        let status = match rng.next_bounded(100) {
            0..=48 => "F",
            49..=97 => "O",
            _ => "P",
        };
        out.push_str(status);
        out.push('|');
        self.money(rng, 85_000, 55_000_000, out);
        out.push('|');
        self.date(rng, out);
        out.push('|');
        out.push_str(PRIORITIES[rng.next_bounded(5) as usize]);
        out.push_str(&format!("|Clerk#{:09}|0|", rng.next_bounded(1000) + 1));
        self.text(rng, 4, 16, out);
        out.push_str("|\n");
    }

    fn lineitem_row(&self, row: u64, rng: &mut XorShift64Star, out: &mut String) {
        let orders = TpchTable::Orders.rows(self.sf).max(1);
        let parts = TpchTable::Part.rows(self.sf).max(1);
        let supps = TpchTable::Supplier.rows(self.sf).max(1);
        out.push_str(&format!(
            "{}|{}|{}|{}|",
            row % orders + 1,
            rng.next_bounded(parts) + 1,
            rng.next_bounded(supps) + 1,
            row % 4 + 1
        ));
        out.push_str(&format!("{}|", 1 + rng.next_bounded(50)));
        self.money(rng, 90_000, 10_000_000, out);
        out.push('|');
        out.push_str(&format!(
            "0.{:02}|0.{:02}|",
            rng.next_bounded(11),
            rng.next_bounded(9)
        ));
        let rf = ["R", "A", "N", "N"][rng.next_bounded(4) as usize];
        let ls = ["O", "F"][rng.next_bounded(2) as usize];
        out.push_str(rf);
        out.push('|');
        out.push_str(ls);
        out.push('|');
        self.date(rng, out);
        out.push('|');
        self.date(rng, out);
        out.push('|');
        self.date(rng, out);
        out.push('|');
        out.push_str(INSTRUCTIONS[rng.next_bounded(4) as usize]);
        out.push('|');
        out.push_str(MODES[rng.next_bounded(7) as usize]);
        out.push('|');
        self.text(rng, 1, 10, out);
        out.push_str("|\n");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgf_output::{MemorySink, NullSink};

    #[test]
    fn row_counts_scale() {
        assert_eq!(TpchTable::LineItem.rows(1.0), 6_000_000);
        assert_eq!(TpchTable::LineItem.rows(0.001), 6_000);
        assert_eq!(TpchTable::Region.rows(100.0), 5, "fixed tables don't scale");
        assert_eq!(TpchTable::Nation.rows(0.001), 25);
    }

    #[test]
    fn lineitem_rows_have_16_pipe_fields() {
        let g = DbGen::new(0.001, 7);
        let mut sink = MemorySink::new();
        g.generate_table(TpchTable::LineItem, &mut sink).unwrap();
        let text = sink.as_str();
        assert_eq!(text.lines().count(), 6_000);
        for line in text.lines().take(20) {
            // Trailing '|' means split produces 17 parts with empty last.
            assert_eq!(line.split('|').count(), 17, "{line}");
        }
    }

    #[test]
    fn all_tables_generate_nonempty_output() {
        let g = DbGen::new(0.001, 7);
        for t in TpchTable::ALL {
            let mut sink = NullSink::new();
            let rows = g.generate_table(t, &mut sink).unwrap();
            assert_eq!(rows, t.rows(0.001));
            assert!(sink.bytes_written() > 0, "{t:?}");
        }
    }

    #[test]
    fn chunked_instances_cover_the_table() {
        let g = DbGen::new(0.001, 7);
        let total = TpchTable::Orders.rows(0.001);
        let mut combined = 0;
        for i in 0..4 {
            let lo = total * i / 4;
            let hi = total * (i + 1) / 4;
            let mut sink = MemorySink::new();
            combined += g
                .generate_chunk(TpchTable::Orders, lo, hi, &mut sink)
                .unwrap();
            assert_eq!(sink.as_str().lines().count() as u64, hi - lo);
        }
        assert_eq!(combined, total);
    }

    #[test]
    fn generation_is_repeatable_per_seed() {
        let a = {
            let mut s = MemorySink::new();
            DbGen::new(0.0005, 1)
                .generate_table(TpchTable::Customer, &mut s)
                .unwrap();
            s.as_str().to_string()
        };
        let b = {
            let mut s = MemorySink::new();
            DbGen::new(0.0005, 1)
                .generate_table(TpchTable::Customer, &mut s)
                .unwrap();
            s.as_str().to_string()
        };
        assert_eq!(a, b);
        let c = {
            let mut s = MemorySink::new();
            DbGen::new(0.0005, 2)
                .generate_table(TpchTable::Customer, &mut s)
                .unwrap();
            s.as_str().to_string()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn keys_are_dense_and_in_range() {
        let g = DbGen::new(0.001, 7);
        let mut sink = MemorySink::new();
        g.generate_table(TpchTable::Orders, &mut sink).unwrap();
        for (i, line) in sink.as_str().lines().enumerate() {
            let key: u64 = line.split('|').next().unwrap().parse().unwrap();
            assert_eq!(key, i as u64 + 1);
            let cust: u64 = line.split('|').nth(1).unwrap().parse().unwrap();
            assert!((1..=150).contains(&cust));
        }
    }
}
