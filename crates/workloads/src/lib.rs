//! Workload models for the evaluation.
//!
//! The paper's experiments run on three data sets, all rebuilt here:
//!
//! * [`tpch`] — "our custom implementation of the TPC-H data set" as a
//!   PDGF model (the paper's Listing 1 shows an excerpt of exactly this
//!   configuration), used by the scale-up (Fig. 5), DBGen-comparison
//!   (Fig. 6), and extraction (Tab. E1) experiments;
//! * [`dbgen`] — a faithful architectural stand-in for TPC-H `dbgen`:
//!   hard-coded, sequential, stateful-RNG, per-instance output files
//!   (Fig. 6's baseline);
//! * [`bigbench`] — a BigBench-style retail model (structured tables +
//!   free-text product reviews with cross-references) for the multi-node
//!   scale-out experiment (Fig. 4);
//! * [`imdb`] — an IMDb-style movie database synthesized into `minidb`,
//!   the demo's "real use case" source for DBSynth extraction;
//! * [`ssb`] — the Star Schema Benchmark (uniform and skewed variants),
//!   which the paper lists among PDGF's implemented benchmarks;
//! * [`corpus`] — shared word lists and the curated TPC-H comment Markov
//!   model.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rust_2018_idioms)]

pub mod bigbench;
pub mod corpus;
pub mod dbgen;
pub mod imdb;
pub mod ssb;
pub mod tpch;
