//! Shared vocabulary and curated text models.
//!
//! TPC-H's `dbgen` generates comment text from a fixed grammar over word
//! lists (adverbs, adjectives, nouns, verbs, …). We reuse those word
//! classes to deterministically synthesize a training corpus and fit the
//! Markov model PDGF's TPC-H configuration references; the paper reports
//! the resulting `l_comment` model at ~1500 words and 95 starting states,
//! at a scale this corpus approximates.

use pdgf_prng::{PdgfDefaultRandom, PdgfRng};
use textsynth::{MarkovBuilder, MarkovModel};

/// TPC-H grammar adverbs.
pub const ADVERBS: &[&str] = &[
    "sometimes",
    "always",
    "never",
    "furiously",
    "slyly",
    "carefully",
    "blithely",
    "quickly",
    "fluffily",
    "silently",
    "daringly",
    "busily",
    "ruthlessly",
    "finally",
    "ironically",
    "evenly",
    "boldly",
    "quietly",
];

/// TPC-H grammar adjectives.
pub const ADJECTIVES: &[&str] = &[
    "special",
    "pending",
    "unusual",
    "express",
    "furious",
    "sly",
    "careful",
    "blithe",
    "quick",
    "fluffy",
    "slow",
    "quiet",
    "ruthless",
    "thin",
    "close",
    "dogged",
    "daring",
    "brave",
    "stealthy",
    "permanent",
    "enticing",
    "idle",
    "busy",
    "regular",
    "final",
    "ironic",
    "even",
    "bold",
    "silent",
];

/// TPC-H grammar nouns.
pub const NOUNS: &[&str] = &[
    "foxes",
    "ideas",
    "theodolites",
    "pinto",
    "beans",
    "instructions",
    "dependencies",
    "excuses",
    "platelets",
    "asymptotes",
    "courts",
    "dolphins",
    "multipliers",
    "sauternes",
    "warthogs",
    "frets",
    "dinos",
    "attainments",
    "somas",
    "braids",
    "frays",
    "warhorses",
    "dugouts",
    "notornis",
    "epitaphs",
    "pearls",
    "tithes",
    "waters",
    "orbits",
    "gifts",
    "sheaves",
    "depths",
    "sentiments",
    "decoys",
    "realms",
    "pains",
    "grouches",
    "escapades",
    "hockey",
    "players",
    "requests",
    "accounts",
    "packages",
    "deposits",
    "patterns",
];

/// TPC-H grammar verbs.
pub const VERBS: &[&str] = &[
    "sleep",
    "wake",
    "are",
    "cajole",
    "haggle",
    "nag",
    "use",
    "boost",
    "affix",
    "detect",
    "integrate",
    "maintain",
    "nod",
    "was",
    "lose",
    "sublate",
    "solve",
    "thrash",
    "promise",
    "engage",
    "hinder",
    "print",
    "x-ray",
    "breach",
    "eat",
    "grow",
    "impress",
    "mold",
    "poach",
    "serve",
    "run",
    "dazzle",
    "snooze",
    "doze",
    "unwind",
    "kindle",
    "play",
    "hang",
    "believe",
    "doubt",
];

/// TPC-H grammar prepositions (abridged).
pub const PREPOSITIONS: &[&str] = &[
    "about",
    "above",
    "according to",
    "across",
    "after",
    "against",
    "along",
    "among",
    "around",
    "at",
    "atop",
    "before",
    "behind",
    "beneath",
    "beside",
    "besides",
    "between",
    "beyond",
    "by",
    "despite",
    "during",
    "except",
    "for",
    "from",
    "in",
    "inside",
    "instead of",
    "into",
    "near",
    "of",
    "on",
    "outside",
    "over",
    "past",
    "since",
    "through",
    "throughout",
    "to",
    "toward",
    "under",
    "until",
    "up",
    "upon",
    "without",
    "with",
    "within",
];

/// TPC-H part color words (used by `p_name`).
pub const COLORS: &[&str] = &[
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "chiffon",
    "chocolate",
    "coral",
    "cornflower",
    "cornsilk",
    "cream",
    "cyan",
    "dark",
    "deep",
    "dim",
    "dodger",
    "drab",
    "firebrick",
    "floral",
    "forest",
    "frosted",
    "gainsboro",
    "ghost",
    "goldenrod",
    "green",
    "grey",
    "honeydew",
    "hot",
    "hotpink",
    "indian",
    "ivory",
    "khaki",
    "lace",
    "lavender",
    "lawn",
    "lemon",
    "light",
    "lime",
    "linen",
    "magenta",
    "maroon",
    "medium",
    "metallic",
    "midnight",
    "mint",
    "misty",
    "moccasin",
    "navajo",
    "navy",
    "olive",
    "orange",
    "orchid",
    "pale",
    "papaya",
    "peach",
    "peru",
    "pink",
    "plum",
    "powder",
    "puff",
    "purple",
    "red",
    "rose",
    "rosy",
    "royal",
    "saddle",
    "salmon",
    "sandy",
    "seashell",
    "sienna",
    "sky",
    "slate",
    "smoke",
    "snow",
    "spring",
    "steel",
    "tan",
    "thistle",
    "tomato",
    "turquoise",
    "violet",
    "wheat",
    "white",
    "yellow",
];

/// Deterministically synthesize a dbgen-style comment sentence.
fn sentence(rng: &mut PdgfDefaultRandom) -> String {
    let pick = |rng: &mut PdgfDefaultRandom, list: &[&'static str]| -> &'static str {
        list[rng.next_bounded(list.len() as u64) as usize]
    };
    // dbgen's "noun phrase verb phrase" grammar, abridged.
    let mut s = String::new();
    s.push_str(pick(rng, ADVERBS));
    s.push(' ');
    s.push_str(pick(rng, ADJECTIVES));
    s.push(' ');
    s.push_str(pick(rng, NOUNS));
    s.push(' ');
    s.push_str(pick(rng, VERBS));
    if rng.next_bool(0.6) {
        s.push(' ');
        s.push_str(pick(rng, PREPOSITIONS));
        s.push_str(" the ");
        s.push_str(pick(rng, ADJECTIVES));
        s.push(' ');
        s.push_str(pick(rng, NOUNS));
    }
    s
}

/// The curated TPC-H comment Markov model: fit on a deterministic corpus
/// of dbgen-grammar sentences.
pub fn tpch_comment_model() -> MarkovModel {
    let mut rng = PdgfDefaultRandom::seed_from(0x79C4_2015);
    let mut builder = MarkovBuilder::new();
    for _ in 0..4000 {
        builder.feed(&sentence(&mut rng));
    }
    builder.build().expect("corpus is non-empty")
}

/// The serialized (text-format) comment model for inline embedding in
/// PDGF configurations.
pub fn tpch_comment_model_text() -> String {
    tpch_comment_model().to_text()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comment_model_statistics_match_paper_scale() {
        let m = tpch_comment_model();
        // "the comment field model contains 1500 words and 95 starting
        // states, which can easily be fit in memory" — our abridged word
        // lists give the same order of magnitude.
        assert!(
            (100..3000).contains(&m.word_count()),
            "word count {}",
            m.word_count()
        );
        assert!(
            (10..200).contains(&m.start_state_count()),
            "start states {}",
            m.start_state_count()
        );
    }

    #[test]
    fn comment_model_is_deterministic() {
        let a = tpch_comment_model().to_bytes();
        let b = tpch_comment_model().to_bytes();
        assert_eq!(a, b);
    }

    #[test]
    fn generated_comments_look_like_dbgen_text() {
        let m = tpch_comment_model();
        let mut rng = PdgfDefaultRandom::seed_from(9);
        let text = m.generate_range(&mut || rng.next_u64(), 1, 10);
        assert!(!text.is_empty());
        let n = text.split_whitespace().count();
        assert!((1..=10).contains(&n));
    }
}
