//! The Star Schema Benchmark as a PDGF model.
//!
//! The paper lists SSB among the benchmarks PDGF implemented ("PDGF has
//! been successfully used to implement a variety of benchmarks, e.g.,
//! TPC-H, the Star Schema Benchmark, TPC-DI, and BigBench") and cites the
//! authors' skewed-SSB work ("Variations of the Star Schema Benchmark to
//! Test Data Skew in Database Management Systems", ICPE 2013). Both live
//! here: [`schema`] builds the classic uniform SSB, and
//! [`schema_skewed`] the skew variant where dimension references follow a
//! Zipf distribution — the feature those variations exist to exercise.

use pdgf_gen::MapResolver;
use pdgf_schema::model::{DateFormat, DictSource, GeneratorSpec, MarkovSource, RefDistribution};
use pdgf_schema::value::Date;
use pdgf_schema::{Expr, Field, Schema, SqlType, Table};

use crate::corpus;
use crate::tpch::{MFGRS, NATIONS, REGIONS, SEGMENTS};

/// Resource path of the comment Markov model.
pub const COMMENT_MODEL_PATH: &str = "markov/ssb_comment_markovSamples.bin";

fn expr(src: &str) -> Expr {
    Expr::parse(src).expect("static expression")
}

fn dict(words: &[&str]) -> GeneratorSpec {
    GeneratorSpec::Dict {
        source: DictSource::Inline {
            entries: words.iter().map(|w| (w.to_string(), 1.0)).collect(),
        },
        weighted: false,
    }
}

fn reference(table: &str, field: &str, dist: RefDistribution) -> GeneratorSpec {
    GeneratorSpec::Reference {
        table: table.to_string(),
        field: field.to_string(),
        distribution: dist,
    }
}

fn labeled_id(prefix: &str) -> GeneratorSpec {
    GeneratorSpec::Sequential {
        parts: vec![
            GeneratorSpec::Static {
                value: pdgf_schema::Value::text(prefix),
            },
            GeneratorSpec::Formula {
                expr: expr("${ROW} + 1"),
                as_long: true,
            },
        ],
        separator: String::new(),
    }
}

/// Build the SSB model with the given fact-to-dimension reference
/// distribution (uniform for classic SSB).
fn build(seed: u64, fact_dist: RefDistribution) -> Schema {
    let mut s = Schema::new("ssb", seed);
    s.properties.define("SF", "1").unwrap();
    for (name, base) in [
        ("customer_size", 30_000u64),
        ("supplier_size", 2_000),
        ("part_size", 200_000),
        ("lineorder_size", 6_000_000),
    ] {
        s.properties
            .define(name, &format!("{base} * ${{SF}}"))
            .unwrap();
    }
    // SSB's date dimension: 7 years of days, independent of SF.
    s.properties.define("date_size", "2556").unwrap();

    s = s.table(
        Table::new("date_dim", "${date_size}")
            .field(
                Field::new(
                    "d_datekey",
                    SqlType::BigInt,
                    GeneratorSpec::Id { permute: false },
                )
                .primary(),
            )
            // d_date derives from the key: day k of the 7-year span.
            .field(Field::new(
                "d_year",
                SqlType::Integer,
                GeneratorSpec::Formula {
                    expr: expr("1992 + floor(${ROW} / 365.25)"),
                    as_long: true,
                },
            ))
            .field(Field::new(
                "d_month",
                SqlType::Integer,
                GeneratorSpec::Formula {
                    expr: expr("floor(${ROW} / 30.44) % 12 + 1"),
                    as_long: true,
                },
            ))
            .field(Field::new(
                "d_weekday",
                SqlType::Integer,
                GeneratorSpec::Formula {
                    expr: expr("${ROW} % 7 + 1"),
                    as_long: true,
                },
            )),
    );

    s = s.table(
        Table::new("customer", "${customer_size}")
            .field(
                Field::new(
                    "c_custkey",
                    SqlType::BigInt,
                    GeneratorSpec::Id { permute: false },
                )
                .primary(),
            )
            .field(Field::new(
                "c_name",
                SqlType::Varchar(25),
                labeled_id("Customer#"),
            ))
            .field(Field::new(
                "c_city",
                SqlType::Char(10),
                dict(&[
                    "UNITED KI1",
                    "UNITED KI5",
                    "CHINA    4",
                    "CHINA    9",
                    "INDIA    6",
                    "JAPAN    2",
                    "RUSSIA   7",
                    "GERMANY  3",
                    "FRANCE   8",
                    "PERU     0",
                ]),
            ))
            .field(Field::new("c_nation", SqlType::Char(15), dict(NATIONS)))
            .field(Field::new("c_region", SqlType::Char(12), dict(REGIONS)))
            .field(Field::new(
                "c_mktsegment",
                SqlType::Char(10),
                dict(SEGMENTS),
            )),
    );

    s = s.table(
        Table::new("supplier", "${supplier_size}")
            .field(
                Field::new(
                    "s_suppkey",
                    SqlType::BigInt,
                    GeneratorSpec::Id { permute: false },
                )
                .primary(),
            )
            .field(Field::new(
                "s_name",
                SqlType::Char(25),
                labeled_id("Supplier#"),
            ))
            .field(Field::new("s_nation", SqlType::Char(15), dict(NATIONS)))
            .field(Field::new("s_region", SqlType::Char(12), dict(REGIONS))),
    );

    s = s.table(
        Table::new("part", "${part_size}")
            .field(
                Field::new(
                    "p_partkey",
                    SqlType::BigInt,
                    GeneratorSpec::Id { permute: false },
                )
                .primary(),
            )
            .field(Field::new(
                "p_name",
                SqlType::Varchar(22),
                GeneratorSpec::Sequential {
                    parts: vec![dict(corpus::COLORS), dict(corpus::COLORS)],
                    separator: " ".to_string(),
                },
            ))
            .field(Field::new("p_mfgr", SqlType::Char(25), dict(MFGRS)))
            .field(Field::new(
                "p_category",
                SqlType::Char(7),
                GeneratorSpec::Sequential {
                    parts: vec![
                        GeneratorSpec::Static {
                            value: pdgf_schema::Value::text("MFGR#"),
                        },
                        GeneratorSpec::Long {
                            min: expr("11"),
                            max: expr("55"),
                        },
                    ],
                    separator: String::new(),
                },
            ))
            .field(Field::new(
                "p_color",
                SqlType::Varchar(11),
                dict(corpus::COLORS),
            )),
    );

    s = s.table(
        Table::new("lineorder", "${lineorder_size}")
            .field(
                Field::new(
                    "lo_orderkey",
                    SqlType::BigInt,
                    GeneratorSpec::Id { permute: false },
                )
                .primary(),
            )
            .field(Field::new(
                "lo_custkey",
                SqlType::BigInt,
                reference("customer", "c_custkey", fact_dist.clone()),
            ))
            .field(Field::new(
                "lo_partkey",
                SqlType::BigInt,
                reference("part", "p_partkey", fact_dist.clone()),
            ))
            .field(Field::new(
                "lo_suppkey",
                SqlType::BigInt,
                reference("supplier", "s_suppkey", fact_dist),
            ))
            .field(Field::new(
                "lo_orderdate",
                SqlType::BigInt,
                reference("date_dim", "d_datekey", RefDistribution::Uniform),
            ))
            .field(Field::new(
                "lo_quantity",
                SqlType::Integer,
                GeneratorSpec::Long {
                    min: expr("1"),
                    max: expr("50"),
                },
            ))
            .field(Field::new(
                "lo_extendedprice",
                SqlType::Decimal(12, 2),
                GeneratorSpec::Decimal {
                    min: expr("90000"),
                    max: expr("10000000"),
                    scale: 2,
                },
            ))
            .field(Field::new(
                "lo_discount",
                SqlType::Integer,
                GeneratorSpec::Long {
                    min: expr("0"),
                    max: expr("10"),
                },
            ))
            .field(Field::new(
                "lo_revenue",
                SqlType::Decimal(14, 2),
                GeneratorSpec::Decimal {
                    min: expr("80000"),
                    max: expr("9000000"),
                    scale: 2,
                },
            ))
            .field(Field::new(
                "lo_shipmode",
                SqlType::Char(10),
                dict(crate::tpch::MODES),
            ))
            .field(Field::new(
                "lo_commitdate",
                SqlType::Date,
                GeneratorSpec::DateRange {
                    min: Date::from_ymd(1992, 1, 1),
                    max: Date::from_ymd(1998, 12, 31),
                    format: DateFormat::Iso,
                },
            ))
            .field(Field::new(
                "lo_comment",
                SqlType::Varchar(44),
                GeneratorSpec::Markov {
                    source: MarkovSource::File(COMMENT_MODEL_PATH.to_string()),
                    min_words: 1,
                    max_words: 8,
                },
            )),
    );
    s
}

/// The classic (uniform) Star Schema Benchmark.
pub fn schema(seed: u64) -> Schema {
    build(seed, RefDistribution::Uniform)
}

/// The skewed SSB variant: fact-table foreign keys follow a Zipf
/// distribution with exponent `theta`, concentrating sales on popular
/// customers/parts/suppliers.
pub fn schema_skewed(seed: u64, theta: f64) -> Schema {
    build(seed, RefDistribution::Zipf { theta })
}

/// Resolver carrying the comment model.
pub fn resolver() -> MapResolver {
    MapResolver::new().with_markov(COMMENT_MODEL_PATH, corpus::tpch_comment_model())
}

/// Ready-to-build uniform-SSB project at `sf`.
pub fn project(sf: f64) -> pdgf::Pdgf {
    pdgf::Pdgf::from_schema(schema(19_920_601))
        .resolver(resolver())
        .set_property("SF", &format!("{sf}"))
}

/// Ready-to-build skewed-SSB project at `sf`.
pub fn project_skewed(sf: f64, theta: f64) -> pdgf::Pdgf {
    pdgf::Pdgf::from_schema(schema_skewed(19_920_601, theta))
        .resolver(resolver())
        .set_property("SF", &format!("{sf}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_variants_validate() {
        schema(1).validate().unwrap();
        schema_skewed(1, 0.8).validate().unwrap();
    }

    #[test]
    fn fact_references_resolve_to_dimensions() {
        let project = project(0.001).workers(0).build().unwrap();
        let rt = project.runtime();
        let (lo_idx, lo) = rt.table_by_name("lineorder").unwrap();
        assert_eq!(lo.size, 6_000);
        let (_, customer) = rt.table_by_name("customer").unwrap();
        let (_, date_dim) = rt.table_by_name("date_dim").unwrap();
        assert_eq!(date_dim.size, 2_556, "date dimension does not scale");
        for row in (0..lo.size).step_by(131) {
            let c = rt.value(lo_idx, 1, 0, row).as_i64().unwrap();
            assert!((1..=customer.size as i64).contains(&c));
            let d = rt.value(lo_idx, 4, 0, row).as_i64().unwrap();
            assert!((1..=2556).contains(&d));
        }
    }

    #[test]
    fn skewed_variant_concentrates_sales() {
        let uniform = project(0.002).workers(0).build().unwrap();
        let skewed = project_skewed(0.002, 0.8).workers(0).build().unwrap();
        let hot_count = |p: &pdgf::PdgfProject| {
            let rt = p.runtime();
            let (lo_idx, lo) = rt.table_by_name("lineorder").unwrap();
            let mut counts = std::collections::HashMap::new();
            for row in 0..lo.size {
                *counts
                    .entry(rt.value(lo_idx, 2, 0, row).as_i64().unwrap())
                    .or_insert(0u64) += 1;
            }
            counts.values().copied().max().unwrap()
        };
        let hot_uniform = hot_count(&uniform);
        let hot_skewed = hot_count(&skewed);
        assert!(
            hot_skewed > hot_uniform * 5,
            "skew not visible: uniform hottest {hot_uniform}, skewed hottest {hot_skewed}"
        );
    }

    #[test]
    fn date_dimension_formulas_are_calendar_like() {
        let project = project(0.001).workers(0).build().unwrap();
        let rt = project.runtime();
        let (d_idx, _) = rt.table_by_name("date_dim").unwrap();
        // First day: 1992, month 1, weekday 1.
        assert_eq!(rt.value(d_idx, 1, 0, 0).as_i64(), Some(1992));
        assert_eq!(rt.value(d_idx, 2, 0, 0).as_i64(), Some(1));
        // Last day of the 7-year span is in 1998.
        assert_eq!(rt.value(d_idx, 1, 0, 2555).as_i64(), Some(1998));
        for row in [0u64, 100, 2000] {
            let m = rt.value(d_idx, 2, 0, row).as_i64().unwrap();
            assert!((1..=12).contains(&m));
            let w = rt.value(d_idx, 3, 0, row).as_i64().unwrap();
            assert!((1..=7).contains(&w));
        }
    }
}
