//! A BigBench-style retail analytics model.
//!
//! The paper's scale-out experiment (Figure 4) generates "a BigBench data
//! set of scale factor 5000". BigBench's defining property for data
//! generation is the mix of structured retail tables and *text with
//! references into the structured data* (product reviews mentioning
//! items) — the kind of heterogeneous data PDGF's connected generators
//! produce and BDGS's disconnected ones cannot (Section 6). This model
//! reproduces that mix at configurable scale.

use pdgf_gen::MapResolver;
use pdgf_schema::model::{DateFormat, DictSource, GeneratorSpec, MarkovSource, RefDistribution};
use pdgf_schema::value::Date;
use pdgf_schema::{Expr, Field, Schema, SqlType, Table};

use crate::corpus;

/// Resource path of the review-text Markov model.
pub const REVIEW_MODEL_PATH: &str = "markov/product_reviews_markovSamples.bin";

/// Product categories.
pub const CATEGORIES: &[&str] = &[
    "Books",
    "Electronics",
    "Home",
    "Garden",
    "Sports",
    "Toys",
    "Clothing",
    "Music",
    "Grocery",
    "Automotive",
];

fn expr(src: &str) -> Expr {
    Expr::parse(src).expect("static expression")
}

fn dict(words: &[&str]) -> GeneratorSpec {
    GeneratorSpec::Dict {
        source: DictSource::Inline {
            entries: words.iter().map(|w| (w.to_string(), 1.0)).collect(),
        },
        weighted: false,
    }
}

fn reference(table: &str, field: &str) -> GeneratorSpec {
    GeneratorSpec::Reference {
        table: table.to_string(),
        field: field.to_string(),
        distribution: RefDistribution::Uniform,
    }
}

fn zipf_reference(table: &str, field: &str, theta: f64) -> GeneratorSpec {
    GeneratorSpec::Reference {
        table: table.to_string(),
        field: field.to_string(),
        distribution: RefDistribution::Zipf { theta },
    }
}

/// Build the BigBench-style schema. Table bases follow BigBench's
/// store/web retail shape, scaled by `SF`.
pub fn schema(seed: u64) -> Schema {
    let mut s = Schema::new("bigbench", seed);
    s.properties.define("SF", "1").unwrap();
    for (name, base) in [
        ("item_size", 1_000u64),
        ("customer_size", 2_000),
        ("store_size", 10),
        ("web_page_size", 50),
        ("store_sales_size", 50_000),
        ("web_sales_size", 25_000),
        ("reviews_size", 5_000),
    ] {
        s.properties
            .define(name, &format!("{base} * ${{SF}}"))
            .unwrap();
    }

    s = s.table(
        Table::new("item", "${item_size}")
            .field(
                Field::new(
                    "i_item_id",
                    SqlType::BigInt,
                    GeneratorSpec::Id { permute: false },
                )
                .primary(),
            )
            .field(Field::new(
                "i_name",
                SqlType::Varchar(50),
                GeneratorSpec::Sequential {
                    parts: vec![dict(corpus::COLORS), dict(corpus::NOUNS)],
                    separator: " ".to_string(),
                },
            ))
            .field(Field::new(
                "i_category",
                SqlType::Varchar(20),
                dict(CATEGORIES),
            ))
            .field(Field::new(
                "i_price",
                SqlType::Decimal(10, 2),
                GeneratorSpec::Decimal {
                    min: expr("99"),
                    max: expr("99999"),
                    scale: 2,
                },
            )),
    );

    s = s.table(
        Table::new("customer", "${customer_size}")
            .field(
                Field::new(
                    "c_customer_id",
                    SqlType::BigInt,
                    GeneratorSpec::Id { permute: false },
                )
                .primary(),
            )
            .field(Field::new(
                "c_name",
                SqlType::Varchar(40),
                GeneratorSpec::RandomString {
                    min_len: 8,
                    max_len: 24,
                },
            ))
            .field(Field::new(
                "c_birth_year",
                SqlType::Integer,
                GeneratorSpec::Long {
                    min: expr("1930"),
                    max: expr("2005"),
                },
            ))
            .field(Field::new(
                "c_email",
                SqlType::Varchar(60),
                GeneratorSpec::Sequential {
                    parts: vec![
                        GeneratorSpec::RandomString {
                            min_len: 5,
                            max_len: 12,
                        },
                        GeneratorSpec::Static {
                            value: pdgf_schema::Value::text("@example.com"),
                        },
                    ],
                    separator: String::new(),
                },
            )),
    );

    s = s.table(
        Table::new("store", "${store_size}")
            .field(
                Field::new(
                    "s_store_id",
                    SqlType::BigInt,
                    GeneratorSpec::Id { permute: false },
                )
                .primary(),
            )
            .field(Field::new(
                "s_city",
                SqlType::Varchar(30),
                dict(&[
                    "Toronto",
                    "Passau",
                    "Melbourne",
                    "Berlin",
                    "Chicago",
                    "Osaka",
                ]),
            )),
    );

    s = s.table(
        Table::new("web_page", "${web_page_size}")
            .field(
                Field::new(
                    "wp_page_id",
                    SqlType::BigInt,
                    GeneratorSpec::Id { permute: false },
                )
                .primary(),
            )
            .field(Field::new(
                "wp_url",
                SqlType::Varchar(80),
                GeneratorSpec::Sequential {
                    parts: vec![
                        GeneratorSpec::Static {
                            value: pdgf_schema::Value::text("https://shop.example/p/"),
                        },
                        GeneratorSpec::RandomString {
                            min_len: 6,
                            max_len: 12,
                        },
                    ],
                    separator: String::new(),
                },
            )),
    );

    s = s.table(
        Table::new("store_sales", "${store_sales_size}")
            .field(
                Field::new(
                    "ss_id",
                    SqlType::BigInt,
                    GeneratorSpec::Id { permute: false },
                )
                .primary(),
            )
            .field(Field::new(
                "ss_item",
                SqlType::BigInt,
                // Popular items sell more: BigBench's skewed sales.
                zipf_reference("item", "i_item_id", 0.6),
            ))
            .field(Field::new(
                "ss_customer",
                SqlType::BigInt,
                reference("customer", "c_customer_id"),
            ))
            .field(Field::new(
                "ss_store",
                SqlType::BigInt,
                reference("store", "s_store_id"),
            ))
            .field(Field::new(
                "ss_quantity",
                SqlType::Integer,
                GeneratorSpec::Long {
                    min: expr("1"),
                    max: expr("100"),
                },
            ))
            .field(Field::new(
                "ss_date",
                SqlType::Date,
                GeneratorSpec::DateRange {
                    min: Date::from_ymd(2010, 1, 1),
                    max: Date::from_ymd(2014, 12, 31),
                    format: DateFormat::Iso,
                },
            )),
    );

    s = s.table(
        Table::new("web_sales", "${web_sales_size}")
            .field(
                Field::new(
                    "ws_id",
                    SqlType::BigInt,
                    GeneratorSpec::Id { permute: false },
                )
                .primary(),
            )
            .field(Field::new(
                "ws_item",
                SqlType::BigInt,
                zipf_reference("item", "i_item_id", 0.6),
            ))
            .field(Field::new(
                "ws_customer",
                SqlType::BigInt,
                reference("customer", "c_customer_id"),
            ))
            .field(Field::new(
                "ws_page",
                SqlType::BigInt,
                reference("web_page", "wp_page_id"),
            ))
            .field(Field::new(
                "ws_quantity",
                SqlType::Integer,
                GeneratorSpec::Long {
                    min: expr("1"),
                    max: expr("20"),
                },
            )),
    );

    // The BigBench signature: free text referencing structured data.
    s = s.table(
        Table::new("product_reviews", "${reviews_size}")
            .field(
                Field::new(
                    "pr_review_id",
                    SqlType::BigInt,
                    GeneratorSpec::Id { permute: false },
                )
                .primary(),
            )
            .field(Field::new(
                "pr_item",
                SqlType::BigInt,
                zipf_reference("item", "i_item_id", 0.7),
            ))
            .field(Field::new(
                "pr_user",
                SqlType::BigInt,
                reference("customer", "c_customer_id"),
            ))
            .field(Field::new(
                "pr_rating",
                SqlType::Integer,
                GeneratorSpec::Long {
                    min: expr("1"),
                    max: expr("5"),
                },
            ))
            .field(Field::new(
                "pr_content",
                SqlType::Varchar(500),
                GeneratorSpec::Markov {
                    source: MarkovSource::File(REVIEW_MODEL_PATH.to_string()),
                    min_words: 5,
                    max_words: 60,
                },
            )),
    );

    s
}

/// Resolver carrying the review-text model.
pub fn resolver() -> MapResolver {
    MapResolver::new().with_markov(REVIEW_MODEL_PATH, corpus::tpch_comment_model())
}

/// Ready-to-build project at `sf`.
pub fn project(sf: f64) -> pdgf::Pdgf {
    pdgf::Pdgf::from_schema(schema(5_000))
        .resolver(resolver())
        .set_property("SF", &format!("{sf}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_validates() {
        let s = schema(1);
        s.validate().unwrap();
        assert_eq!(s.tables.len(), 7);
    }

    #[test]
    fn review_text_references_real_items() {
        let project = project(0.1).workers(0).build().unwrap();
        let rt = project.runtime();
        let (pr_idx, pr) = rt.table_by_name("product_reviews").unwrap();
        let (_, item) = rt.table_by_name("item").unwrap();
        for row in (0..pr.size).step_by(37) {
            let item_ref = rt.value(pr_idx, 1, 0, row).as_i64().unwrap();
            assert!((1..=item.size as i64).contains(&item_ref));
            let content = rt.value(pr_idx, 4, 0, row);
            let words = content.as_text().unwrap().split_whitespace().count();
            assert!((5..=60).contains(&words));
        }
    }

    #[test]
    fn sales_skew_favors_popular_items() {
        let project = project(0.2).workers(0).build().unwrap();
        let rt = project.runtime();
        let (ss_idx, ss) = rt.table_by_name("store_sales").unwrap();
        let mut counts = std::collections::HashMap::new();
        for row in 0..ss.size {
            *counts
                .entry(rt.value(ss_idx, 1, 0, row).as_i64().unwrap())
                .or_insert(0u64) += 1;
        }
        let (_, item) = rt.table_by_name("item").unwrap();
        let avg = ss.size / item.size;
        let hottest = counts.values().copied().max().unwrap();
        assert!(
            hottest > 5 * avg,
            "zipf skew absent: hottest {hottest}, avg {avg}"
        );
    }

    #[test]
    fn scale_factor_controls_all_table_sizes() {
        let p1 = project(0.1).workers(0).build().unwrap();
        let p2 = project(0.2).workers(0).build().unwrap();
        for (a, b) in p1.runtime().tables().iter().zip(p2.runtime().tables()) {
            assert_eq!(a.size * 2, b.size, "{}", a.name);
        }
    }
}
