//! An IMDb-style movie database, synthesized into `minidb`.
//!
//! The paper's demo uses "the publicly available parts of the IMDb
//! database … hosted in a MySQL database" as the real-world extraction
//! source. This module deterministically builds a source database with
//! the same character: entity tables (movies, persons), a many-to-many
//! link table (cast), categorical columns, nullable columns, and free
//! text (plots) — everything DBSynth's extraction paths need to exercise.

use minidb::{ColumnDef, Database, TableDef};
use pdgf_prng::{PdgfDefaultRandom, PdgfRng};
use pdgf_schema::value::Date;
use pdgf_schema::{SqlType, Value};

/// Movie genres.
pub const GENRES: &[&str] = &[
    "Drama",
    "Comedy",
    "Action",
    "Documentary",
    "Horror",
    "Romance",
    "Thriller",
    "Animation",
    "Crime",
    "Adventure",
];

/// Cast roles.
pub const ROLES: &[&str] = &[
    "actor", "actress", "director", "producer", "writer", "composer",
];

const TITLE_HEADS: &[&str] = &[
    "The", "A", "Last", "First", "Dark", "Bright", "Silent", "Hidden", "Lost", "Eternal",
];
const TITLE_NOUNS: &[&str] = &[
    "Journey", "Night", "River", "Garden", "Secret", "Promise", "City", "Storm", "Mirror",
    "Harvest", "Voyage", "Letter", "Shadow", "Dream", "Winter",
];
const PLOT_SUBJECTS: &[&str] = &[
    "a young detective",
    "an aging pianist",
    "two estranged siblings",
    "a retired sailor",
    "an ambitious reporter",
    "a quiet librarian",
    "a travelling circus",
    "a small village",
];
const PLOT_VERBS: &[&str] = &[
    "discovers",
    "confronts",
    "escapes",
    "rebuilds",
    "follows",
    "betrays",
    "rescues",
    "remembers",
    "loses",
    "finds",
];
const PLOT_OBJECTS: &[&str] = &[
    "a long buried secret",
    "the family estate",
    "an impossible love",
    "a stolen fortune",
    "the edge of the world",
    "a forgotten promise",
    "the last train home",
    "an unlikely friendship",
];
const PLOT_TAILS: &[&str] = &[
    "before the winter ends",
    "against all odds",
    "in the heart of the city",
    "under a relentless sun",
    "as the war begins",
    "with nothing left to lose",
];
const FIRST: &[&str] = &[
    "Ava", "Noah", "Mia", "Liam", "Zoe", "Ethan", "Lena", "Omar", "Iris", "Hugo", "Nina", "Felix",
    "Clara", "Jonas", "Maya", "Victor",
];
const LAST: &[&str] = &[
    "Moreau",
    "Tanaka",
    "Okafor",
    "Lindqvist",
    "Costa",
    "Novak",
    "Fischer",
    "Romero",
    "Haddad",
    "Petrov",
    "Keller",
    "Braun",
    "Silva",
    "Varga",
];

fn pick<'a>(rng: &mut PdgfDefaultRandom, list: &[&'a str]) -> &'a str {
    list[rng.next_bounded(list.len() as u64) as usize]
}

/// Build the IMDb-style source database with roughly `movies` movies
/// (plus persons ≈ 2×, cast ≈ 6×), deterministic in `seed`.
pub fn build(seed: u64, movies: u64) -> Database {
    let mut db = Database::new();
    db.create_table(
        TableDef::new("movies")
            .column(ColumnDef::new("m_id", SqlType::BigInt).primary_key())
            .column(ColumnDef::new("m_title", SqlType::Varchar(60)).not_null())
            .column(ColumnDef::new("m_year", SqlType::Integer).not_null())
            .column(ColumnDef::new("m_genre", SqlType::Varchar(16)).not_null())
            .column(ColumnDef::new("m_rating", SqlType::Decimal(3, 1)))
            .column(ColumnDef::new("m_plot", SqlType::Varchar(300))),
    )
    .expect("fresh database");
    db.create_table(
        TableDef::new("persons")
            .column(ColumnDef::new("p_id", SqlType::BigInt).primary_key())
            .column(ColumnDef::new("p_name", SqlType::Varchar(40)).not_null())
            .column(ColumnDef::new("p_birth", SqlType::Date)),
    )
    .expect("fresh database");
    db.create_table(
        TableDef::new("cast_info")
            .column(ColumnDef::new("ci_id", SqlType::BigInt).primary_key())
            .column(ColumnDef::new("ci_movie", SqlType::BigInt).not_null())
            .column(ColumnDef::new("ci_person", SqlType::BigInt).not_null())
            .column(ColumnDef::new("ci_role", SqlType::Varchar(12)).not_null())
            .foreign_key("ci_movie", "movies", "m_id")
            .foreign_key("ci_person", "persons", "p_id"),
    )
    .expect("fresh database");

    let mut rng = PdgfDefaultRandom::seed_from(seed);
    let persons = (movies * 2).max(4);

    for i in 0..movies {
        let title = format!(
            "{} {} {}",
            pick(&mut rng, TITLE_HEADS),
            pick(&mut rng, TITLE_NOUNS),
            // Roman-numeral-ish sequel tags keep titles mostly unique.
            ["", "II", "III", "Returns", "Origins"][rng.next_bounded(5) as usize]
        );
        let plot = if rng.next_bool(0.15) {
            Value::Null
        } else {
            Value::text(format!(
                "{} {} {} {}",
                pick(&mut rng, PLOT_SUBJECTS),
                pick(&mut rng, PLOT_VERBS),
                pick(&mut rng, PLOT_OBJECTS),
                pick(&mut rng, PLOT_TAILS),
            ))
        };
        let rating = if rng.next_bool(0.1) {
            Value::Null
        } else {
            Value::decimal(10 + rng.next_bounded(90) as i64, 1)
        };
        db.insert(
            "movies",
            vec![
                Value::Long(i as i64 + 1),
                Value::text(title.trim_end()),
                Value::Long(1930 + rng.next_bounded(95) as i64),
                Value::text(pick(&mut rng, GENRES)),
                rating,
                plot,
            ],
        )
        .expect("valid synthetic row");
    }

    for i in 0..persons {
        let birth = if rng.next_bool(0.2) {
            Value::Null
        } else {
            Value::Date(Date::from_ymd(
                1920 + rng.next_bounded(85) as i32,
                1 + rng.next_bounded(12) as u32,
                1 + rng.next_bounded(28) as u32,
            ))
        };
        db.insert(
            "persons",
            vec![
                Value::Long(i as i64 + 1),
                Value::text(format!(
                    "{} {}",
                    pick(&mut rng, FIRST),
                    pick(&mut rng, LAST)
                )),
                birth,
            ],
        )
        .expect("valid synthetic row");
    }

    let cast = movies * 6;
    for i in 0..cast {
        db.insert(
            "cast_info",
            vec![
                Value::Long(i as i64 + 1),
                Value::Long(rng.next_bounded(movies.max(1)) as i64 + 1),
                Value::Long(rng.next_bounded(persons) as i64 + 1),
                Value::text(pick(&mut rng, ROLES)),
            ],
        )
        .expect("valid synthetic row");
    }

    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::sql::query;

    #[test]
    fn builds_deterministically() {
        let a = build(42, 100);
        let b = build(42, 100);
        assert_eq!(
            a.table("movies").unwrap().rows(),
            b.table("movies").unwrap().rows()
        );
        let c = build(43, 100);
        assert_ne!(
            a.table("movies").unwrap().rows(),
            c.table("movies").unwrap().rows()
        );
    }

    #[test]
    fn shape_and_sizes() {
        let db = build(1, 200);
        assert_eq!(db.table("movies").unwrap().row_count(), 200);
        assert_eq!(db.table("persons").unwrap().row_count(), 400);
        assert_eq!(db.table("cast_info").unwrap().row_count(), 1200);
    }

    #[test]
    fn referential_integrity_holds() {
        let db = build(7, 150);
        let orphans = query(
            &db,
            "SELECT COUNT(*) FROM cast_info WHERE ci_movie < 1 OR ci_movie > 150",
        )
        .unwrap();
        assert_eq!(orphans.rows[0][0], Value::Long(0));
    }

    #[test]
    fn plots_are_multi_word_free_text_with_nulls() {
        let db = build(3, 300);
        let t = db.table("movies").unwrap();
        let plot_idx = t.def().column_index("m_plot").unwrap();
        let mut nulls = 0;
        for v in t.column(plot_idx) {
            match v {
                Value::Null => nulls += 1,
                other => {
                    let words = other.as_text().unwrap().split_whitespace().count();
                    assert!(words >= 6, "plot too short");
                }
            }
        }
        let frac = f64::from(nulls) / 300.0;
        assert!((0.05..0.30).contains(&frac), "null fraction {frac}");
    }

    #[test]
    fn queryable_through_sql() {
        let db = build(5, 100);
        let r = query(
            &db,
            "SELECT m_genre, COUNT(*) AS n FROM movies GROUP BY m_genre ORDER BY n DESC",
        )
        .unwrap();
        assert!(!r.rows.is_empty());
        let total: i64 = r.rows.iter().map(|row| row[1].as_i64().unwrap()).sum();
        assert_eq!(total, 100);
    }
}
