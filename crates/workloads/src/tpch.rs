//! The TPC-H data set as a PDGF model.
//!
//! "We will start by generating industry standard data sets such as
//! TPC-H. The data will be generated using PDGF, but this configuration
//! is compliant to the TPC-H data set and was developed in cooperation
//! with the TPC-H subcommittee." This module is that configuration,
//! expressed through the schema builder (its XML form — Listing 1's full
//! document — is a `to_xml_string` call away).
//!
//! Documented deviations from `dbgen` (see DESIGN.md): dense 1-based keys
//! everywhere (dbgen mixes 0-based enumeration keys and sparse order
//! keys); `l_partkey`/`l_suppkey` reference part/supplier independently
//! rather than jointly through partsupp; comment text comes from a Markov
//! model fit on the dbgen grammar vocabulary rather than the grammar
//! itself.

use pdgf_gen::MapResolver;
use pdgf_schema::model::{DateFormat, DictSource, GeneratorSpec, MarkovSource, RefDistribution};
use pdgf_schema::value::Date;
use pdgf_schema::{Expr, Field, Schema, SqlType, Table};

use crate::corpus;

/// TPC-H region names (fixed enumeration).
pub const REGIONS: &[&str] = &["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// TPC-H nation names (fixed enumeration).
pub const NATIONS: &[&str] = &[
    "ALGERIA",
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "EGYPT",
    "ETHIOPIA",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "INDONESIA",
    "IRAN",
    "IRAQ",
    "JAPAN",
    "JORDAN",
    "KENYA",
    "MOROCCO",
    "MOZAMBIQUE",
    "PERU",
    "CHINA",
    "ROMANIA",
    "SAUDI ARABIA",
    "VIETNAM",
    "RUSSIA",
    "UNITED KINGDOM",
    "UNITED STATES",
];

/// Market segments.
pub const SEGMENTS: &[&str] = &[
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];

/// Order priorities.
pub const PRIORITIES: &[&str] = &["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// Ship instructions.
pub const INSTRUCTIONS: &[&str] = &[
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];

/// Ship modes.
pub const MODES: &[&str] = &["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

/// Part manufacturers / brands bases.
pub const MFGRS: &[&str] = &[
    "Manufacturer#1",
    "Manufacturer#2",
    "Manufacturer#3",
    "Manufacturer#4",
    "Manufacturer#5",
];

/// Part type components (6 × 5 × 5 = 150 types, as in the spec).
pub const TYPE_SYLL1: &[&str] = &["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
/// Second type syllable.
pub const TYPE_SYLL2: &[&str] = &["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
/// Third type syllable.
pub const TYPE_SYLL3: &[&str] = &["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];

/// Container components (5 × 8 = 40 containers).
pub const CONTAINER_SYLL1: &[&str] = &["SM", "LG", "MED", "JUMBO", "WRAP"];
/// Second container syllable.
pub const CONTAINER_SYLL2: &[&str] = &["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];

/// The Markov resource path the configuration references (Listing 1's
/// `markov\l_comment_markovSamples.bin`, with forward slashes).
pub const COMMENT_MODEL_PATH: &str = "markov/l_comment_markovSamples.bin";

fn expr(src: &str) -> Expr {
    Expr::parse(src).expect("static expression")
}

fn dict(words: &[&str]) -> GeneratorSpec {
    GeneratorSpec::Dict {
        source: DictSource::Inline {
            entries: words.iter().map(|w| (w.to_string(), 1.0)).collect(),
        },
        weighted: false,
    }
}

fn dict_by_row(words: &[&str]) -> GeneratorSpec {
    GeneratorSpec::DictByRow {
        source: DictSource::Inline {
            entries: words.iter().map(|w| (w.to_string(), 1.0)).collect(),
        },
    }
}

fn cross_dict(parts: &[&[&str]], sep: &str) -> GeneratorSpec {
    GeneratorSpec::Sequential {
        parts: parts.iter().map(|p| dict(p)).collect(),
        separator: sep.to_string(),
    }
}

fn comment(min_words: u32, max_words: u32) -> GeneratorSpec {
    GeneratorSpec::Markov {
        source: MarkovSource::File(COMMENT_MODEL_PATH.to_string()),
        min_words,
        max_words,
    }
}

fn reference(table: &str, field: &str) -> GeneratorSpec {
    GeneratorSpec::Reference {
        table: table.to_string(),
        field: field.to_string(),
        distribution: RefDistribution::Uniform,
    }
}

fn labeled_id(prefix: &str) -> GeneratorSpec {
    // dbgen's "Customer#000000001" style names.
    GeneratorSpec::Sequential {
        parts: vec![
            GeneratorSpec::Static {
                value: pdgf_schema::Value::text(prefix),
            },
            GeneratorSpec::Formula {
                expr: expr("${ROW} + 1"),
                as_long: true,
            },
        ],
        separator: String::new(),
    }
}

fn phone() -> GeneratorSpec {
    GeneratorSpec::Sequential {
        parts: vec![
            GeneratorSpec::Long {
                min: expr("10"),
                max: expr("34"),
            },
            GeneratorSpec::Long {
                min: expr("100"),
                max: expr("999"),
            },
            GeneratorSpec::Long {
                min: expr("100"),
                max: expr("999"),
            },
            GeneratorSpec::Long {
                min: expr("1000"),
                max: expr("9999"),
            },
        ],
        separator: "-".to_string(),
    }
}

fn date_range(from: (i32, u32, u32), to: (i32, u32, u32)) -> GeneratorSpec {
    GeneratorSpec::DateRange {
        min: Date::from_ymd(from.0, from.1, from.2),
        max: Date::from_ymd(to.0, to.1, to.2),
        format: DateFormat::Iso,
    }
}

/// Build the TPC-H schema model. `seed` matches Listing 1's `12456789`
/// when you want the paper's exact project.
pub fn schema(seed: u64) -> Schema {
    let mut s = Schema::new("tpch", seed);
    s.properties.define("SF", "1").unwrap();
    for (name, base) in [
        ("supplier_size", 10_000u64),
        ("customer_size", 150_000),
        ("part_size", 200_000),
        ("partsupp_size", 800_000),
        ("orders_size", 1_500_000),
        ("lineitem_size", 6_000_000),
    ] {
        s.properties
            .define(name, &format!("{base} * ${{SF}}"))
            .unwrap();
    }

    s = s.table(
        Table::new("region", "5")
            .field(
                Field::new(
                    "r_regionkey",
                    SqlType::BigInt,
                    GeneratorSpec::Id { permute: false },
                )
                .primary(),
            )
            .field(Field::new(
                "r_name",
                SqlType::Char(25),
                dict_by_row(REGIONS),
            ))
            .field(Field::new(
                "r_comment",
                SqlType::Varchar(152),
                comment(4, 20),
            )),
    );

    s = s.table(
        Table::new("nation", "25")
            .field(
                Field::new(
                    "n_nationkey",
                    SqlType::BigInt,
                    GeneratorSpec::Id { permute: false },
                )
                .primary(),
            )
            .field(Field::new(
                "n_name",
                SqlType::Char(25),
                dict_by_row(NATIONS),
            ))
            .field(Field::new(
                "n_regionkey",
                SqlType::BigInt,
                GeneratorSpec::Reference {
                    table: "region".into(),
                    field: "r_regionkey".into(),
                    distribution: RefDistribution::Permutation,
                },
            ))
            .field(Field::new(
                "n_comment",
                SqlType::Varchar(152),
                comment(4, 18),
            )),
    );

    s = s.table(
        Table::new("supplier", "${supplier_size}")
            .field(
                Field::new(
                    "s_suppkey",
                    SqlType::BigInt,
                    GeneratorSpec::Id { permute: false },
                )
                .primary(),
            )
            .field(Field::new(
                "s_name",
                SqlType::Char(25),
                labeled_id("Supplier#"),
            ))
            .field(Field::new(
                "s_address",
                SqlType::Varchar(40),
                GeneratorSpec::RandomString {
                    min_len: 10,
                    max_len: 40,
                },
            ))
            .field(Field::new(
                "s_nationkey",
                SqlType::BigInt,
                reference("nation", "n_nationkey"),
            ))
            .field(Field::new("s_phone", SqlType::Char(15), phone()))
            .field(Field::new(
                "s_acctbal",
                SqlType::Decimal(12, 2),
                GeneratorSpec::Decimal {
                    min: expr("-99999"),
                    max: expr("999999"),
                    scale: 2,
                },
            ))
            .field(Field::new(
                "s_comment",
                SqlType::Varchar(101),
                comment(4, 12),
            )),
    );

    s = s.table(
        Table::new("customer", "${customer_size}")
            .field(
                Field::new(
                    "c_custkey",
                    SqlType::BigInt,
                    GeneratorSpec::Id { permute: false },
                )
                .primary(),
            )
            .field(Field::new(
                "c_name",
                SqlType::Varchar(25),
                labeled_id("Customer#"),
            ))
            .field(Field::new(
                "c_address",
                SqlType::Varchar(40),
                GeneratorSpec::RandomString {
                    min_len: 10,
                    max_len: 40,
                },
            ))
            .field(Field::new(
                "c_nationkey",
                SqlType::BigInt,
                reference("nation", "n_nationkey"),
            ))
            .field(Field::new("c_phone", SqlType::Char(15), phone()))
            .field(Field::new(
                "c_acctbal",
                SqlType::Decimal(12, 2),
                GeneratorSpec::Decimal {
                    min: expr("-99999"),
                    max: expr("999999"),
                    scale: 2,
                },
            ))
            .field(Field::new(
                "c_mktsegment",
                SqlType::Char(10),
                dict(SEGMENTS),
            ))
            .field(Field::new(
                "c_comment",
                SqlType::Varchar(117),
                comment(4, 14),
            )),
    );

    s = s.table(
        Table::new("part", "${part_size}")
            .field(
                Field::new(
                    "p_partkey",
                    SqlType::BigInt,
                    GeneratorSpec::Id { permute: false },
                )
                .primary(),
            )
            .field(Field::new(
                "p_name",
                SqlType::Varchar(55),
                // dbgen: five space-separated color words.
                GeneratorSpec::Sequential {
                    parts: (0..5).map(|_| dict(corpus::COLORS)).collect(),
                    separator: " ".to_string(),
                },
            ))
            .field(Field::new("p_mfgr", SqlType::Char(25), dict(MFGRS)))
            .field(Field::new(
                "p_brand",
                SqlType::Char(10),
                GeneratorSpec::Sequential {
                    parts: vec![
                        GeneratorSpec::Static {
                            value: pdgf_schema::Value::text("Brand#"),
                        },
                        GeneratorSpec::Long {
                            min: expr("11"),
                            max: expr("55"),
                        },
                    ],
                    separator: String::new(),
                },
            ))
            .field(Field::new(
                "p_type",
                SqlType::Varchar(25),
                cross_dict(&[TYPE_SYLL1, TYPE_SYLL2, TYPE_SYLL3], " "),
            ))
            .field(Field::new(
                "p_size",
                SqlType::Integer,
                GeneratorSpec::Long {
                    min: expr("1"),
                    max: expr("50"),
                },
            ))
            .field(Field::new(
                "p_container",
                SqlType::Char(10),
                cross_dict(&[CONTAINER_SYLL1, CONTAINER_SYLL2], " "),
            ))
            .field(Field::new(
                "p_retailprice",
                SqlType::Decimal(12, 2),
                GeneratorSpec::Decimal {
                    min: expr("90000"),
                    max: expr("200000"),
                    scale: 2,
                },
            ))
            .field(Field::new("p_comment", SqlType::Varchar(23), comment(1, 5))),
    );

    s = s.table(
        Table::new("partsupp", "${partsupp_size}")
            .field(Field::new(
                "ps_partkey",
                SqlType::BigInt,
                GeneratorSpec::Reference {
                    table: "part".into(),
                    field: "p_partkey".into(),
                    // 800k rows over 200k parts: exactly 4 suppliers per
                    // part, as the spec requires.
                    distribution: RefDistribution::Permutation,
                },
            ))
            .field(Field::new(
                "ps_suppkey",
                SqlType::BigInt,
                GeneratorSpec::Reference {
                    table: "supplier".into(),
                    field: "s_suppkey".into(),
                    distribution: RefDistribution::Permutation,
                },
            ))
            .field(Field::new(
                "ps_availqty",
                SqlType::Integer,
                GeneratorSpec::Long {
                    min: expr("1"),
                    max: expr("9999"),
                },
            ))
            .field(Field::new(
                "ps_supplycost",
                SqlType::Decimal(12, 2),
                GeneratorSpec::Decimal {
                    min: expr("100"),
                    max: expr("100000"),
                    scale: 2,
                },
            ))
            .field(Field::new(
                "ps_comment",
                SqlType::Varchar(199),
                comment(10, 30),
            )),
    );

    s = s.table(
        Table::new("orders", "${orders_size}")
            .field(
                Field::new(
                    "o_orderkey",
                    SqlType::BigInt,
                    GeneratorSpec::Id { permute: false },
                )
                .primary(),
            )
            .field(Field::new(
                "o_custkey",
                SqlType::BigInt,
                reference("customer", "c_custkey"),
            ))
            .field(Field::new(
                "o_orderstatus",
                SqlType::Char(1),
                GeneratorSpec::Probability {
                    branches: vec![
                        (
                            0.49,
                            GeneratorSpec::Static {
                                value: pdgf_schema::Value::text("F"),
                            },
                        ),
                        (
                            0.49,
                            GeneratorSpec::Static {
                                value: pdgf_schema::Value::text("O"),
                            },
                        ),
                        (
                            0.02,
                            GeneratorSpec::Static {
                                value: pdgf_schema::Value::text("P"),
                            },
                        ),
                    ],
                },
            ))
            .field(Field::new(
                "o_totalprice",
                SqlType::Decimal(12, 2),
                GeneratorSpec::Decimal {
                    min: expr("85000"),
                    max: expr("55000000"),
                    scale: 2,
                },
            ))
            .field(Field::new(
                "o_orderdate",
                SqlType::Date,
                date_range((1992, 1, 1), (1998, 8, 2)),
            ))
            .field(Field::new(
                "o_orderpriority",
                SqlType::Char(15),
                dict(PRIORITIES),
            ))
            .field(Field::new(
                "o_clerk",
                SqlType::Char(15),
                labeled_id("Clerk#"),
            ))
            .field(Field::new(
                "o_shippriority",
                SqlType::Integer,
                GeneratorSpec::Static {
                    value: pdgf_schema::Value::Long(0),
                },
            ))
            .field(Field::new(
                "o_comment",
                SqlType::Varchar(79),
                comment(4, 16),
            )),
    );

    s = s.table(
        Table::new("lineitem", "${lineitem_size}")
            .field(Field::new(
                "l_orderkey",
                SqlType::BigInt,
                GeneratorSpec::Reference {
                    table: "orders".into(),
                    field: "o_orderkey".into(),
                    // 6M lines over 1.5M orders: exactly 4 per order
                    // (dbgen draws 1..7; the mean matches).
                    distribution: RefDistribution::Permutation,
                },
            ))
            .field(Field::new(
                "l_partkey",
                SqlType::BigInt,
                reference("part", "p_partkey"),
            ))
            .field(Field::new(
                "l_suppkey",
                SqlType::BigInt,
                reference("supplier", "s_suppkey"),
            ))
            .field(Field::new(
                "l_linenumber",
                SqlType::Integer,
                GeneratorSpec::Formula {
                    expr: expr("${ROW} % 4 + 1"),
                    as_long: true,
                },
            ))
            .field(Field::new(
                "l_quantity",
                SqlType::Decimal(12, 2),
                GeneratorSpec::Decimal {
                    min: expr("100"),
                    max: expr("5000"),
                    scale: 2,
                },
            ))
            .field(Field::new(
                "l_extendedprice",
                SqlType::Decimal(12, 2),
                GeneratorSpec::Decimal {
                    min: expr("90000"),
                    max: expr("10000000"),
                    scale: 2,
                },
            ))
            .field(Field::new(
                "l_discount",
                SqlType::Decimal(12, 2),
                GeneratorSpec::Decimal {
                    min: expr("0"),
                    max: expr("10"),
                    scale: 2,
                },
            ))
            .field(Field::new(
                "l_tax",
                SqlType::Decimal(12, 2),
                GeneratorSpec::Decimal {
                    min: expr("0"),
                    max: expr("8"),
                    scale: 2,
                },
            ))
            .field(Field::new(
                "l_returnflag",
                SqlType::Char(1),
                GeneratorSpec::Probability {
                    branches: vec![
                        (
                            0.25,
                            GeneratorSpec::Static {
                                value: pdgf_schema::Value::text("R"),
                            },
                        ),
                        (
                            0.25,
                            GeneratorSpec::Static {
                                value: pdgf_schema::Value::text("A"),
                            },
                        ),
                        (
                            0.50,
                            GeneratorSpec::Static {
                                value: pdgf_schema::Value::text("N"),
                            },
                        ),
                    ],
                },
            ))
            .field(Field::new(
                "l_linestatus",
                SqlType::Char(1),
                GeneratorSpec::Probability {
                    branches: vec![
                        (
                            0.5,
                            GeneratorSpec::Static {
                                value: pdgf_schema::Value::text("O"),
                            },
                        ),
                        (
                            0.5,
                            GeneratorSpec::Static {
                                value: pdgf_schema::Value::text("F"),
                            },
                        ),
                    ],
                },
            ))
            .field(Field::new(
                "l_shipdate",
                SqlType::Date,
                date_range((1992, 1, 2), (1998, 12, 1)),
            ))
            .field(Field::new(
                "l_commitdate",
                SqlType::Date,
                date_range((1992, 1, 31), (1998, 10, 31)),
            ))
            .field(Field::new(
                "l_receiptdate",
                SqlType::Date,
                date_range((1992, 1, 3), (1998, 12, 31)),
            ))
            .field(Field::new(
                "l_shipinstruct",
                SqlType::Char(25),
                dict(INSTRUCTIONS),
            ))
            .field(Field::new("l_shipmode", SqlType::Char(10), dict(MODES)))
            .field(Field::new(
                "l_comment",
                SqlType::Varchar(44),
                // Listing 1: NULL wrapper at probability 0 around the
                // Markov generator with 1..10 words.
                GeneratorSpec::Null {
                    probability: 0.0,
                    inner: Box::new(comment(1, 10)),
                },
            )),
    );

    s
}

/// Resolver carrying the comment Markov model the configuration
/// references.
pub fn resolver() -> MapResolver {
    MapResolver::new().with_markov(COMMENT_MODEL_PATH, corpus::tpch_comment_model())
}

/// Convenience: a ready-to-build [`pdgf::Pdgf`] project at `sf` with the
/// paper's seed.
pub fn project(sf: f64) -> pdgf::Pdgf {
    pdgf::Pdgf::from_schema(schema(12_456_789))
        .resolver(resolver())
        .set_property("SF", &format!("{sf}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgf::OutputFormat;

    #[test]
    fn schema_validates_and_sizes_scale() {
        let s = schema(12_456_789);
        s.validate().unwrap();
        assert_eq!(s.tables.len(), 8);
        let li = s.table_by_name("lineitem").unwrap();
        assert_eq!(s.table_size(li).unwrap(), 6_000_000);
        let mut scaled = schema(1);
        scaled.properties.override_value("SF", "0.001").unwrap();
        let li = scaled.table_by_name("lineitem").unwrap();
        assert_eq!(scaled.table_size(li).unwrap(), 6_000);
    }

    #[test]
    fn xml_roundtrip_of_the_full_model() {
        let s = schema(12_456_789);
        let doc = pdgf_schema::config::to_xml_string(&s);
        assert!(doc.contains("<seed>12456789</seed>"), "Listing 1 seed");
        assert!(doc.contains("6000000 * ${SF}") || doc.contains("${lineitem_size}"));
        assert!(doc.contains("markov/l_comment_markovSamples.bin"));
        let parsed = pdgf_schema::config::from_xml_string(&doc).unwrap();
        assert_eq!(parsed.tables.len(), 8);
    }

    #[test]
    fn tiny_scale_factor_generates_consistent_data() {
        let project = project(0.0005).workers(2).build().unwrap();
        let rt = project.runtime();
        // 3000 lineitems, 750 orders, 75 customers...
        let (li_idx, li) = rt.table_by_name("lineitem").unwrap();
        assert_eq!(li.size, 3_000);
        let (_, orders) = rt.table_by_name("orders").unwrap();
        assert_eq!(orders.size, 750);
        // Reference integrity: every l_orderkey is a valid order key.
        for row in (0..li.size).step_by(97) {
            let v = rt.value(li_idx, 0, 0, row).as_i64().unwrap();
            assert!(
                (1..=orders.size as i64).contains(&v),
                "dangling order key {v}"
            );
        }
    }

    #[test]
    fn region_and_nation_names_are_exact_enumerations() {
        let project = project(0.001).workers(0).build().unwrap();
        let rt = project.runtime();
        let (r_idx, region) = rt.table_by_name("region").unwrap();
        assert_eq!(region.size, 5);
        let names: Vec<String> = (0..5)
            .map(|r| rt.value(r_idx, 1, 0, r).to_string())
            .collect();
        assert_eq!(names, REGIONS);
        let (n_idx, nation) = rt.table_by_name("nation").unwrap();
        assert_eq!(nation.size, 25);
        assert_eq!(rt.value(n_idx, 1, 0, 7).to_string(), "GERMANY");
        // n_regionkey always lands on a real region.
        for row in 0..25 {
            let v = rt.value(n_idx, 2, 0, row).as_i64().unwrap();
            assert!((1..=5).contains(&v));
        }
    }

    #[test]
    fn partsupp_has_exactly_four_suppliers_per_part() {
        let project = project(0.0005).workers(0).build().unwrap();
        let rt = project.runtime();
        let (ps_idx, ps) = rt.table_by_name("partsupp").unwrap();
        let (_, part) = rt.table_by_name("part").unwrap();
        assert_eq!(ps.size, part.size * 4);
        let mut counts = std::collections::HashMap::new();
        for row in 0..ps.size {
            *counts
                .entry(rt.value(ps_idx, 0, 0, row).as_i64().unwrap())
                .or_insert(0u32) += 1;
        }
        assert_eq!(counts.len() as u64, part.size);
        assert!(counts.values().all(|&c| c == 4));
    }

    #[test]
    fn csv_output_shape_matches_tpch() {
        let project = project(0.0002).workers(0).build().unwrap();
        let csv = project
            .table_to_string("lineitem", OutputFormat::Csv)
            .unwrap();
        let first = csv.lines().next().unwrap();
        assert_eq!(
            first.split(',').count(),
            16,
            "lineitem has 16 columns: {first}"
        );
        // Dates render ISO.
        assert!(first
            .split(',')
            .any(|f| f.len() == 10 && f.as_bytes()[4] == b'-'));
    }

    #[test]
    fn generation_is_deterministic_across_builds() {
        let a = project(0.0002).workers(4).build().unwrap();
        let b = project(0.0002).workers(1).build().unwrap();
        assert_eq!(
            a.table_to_string("orders", OutputFormat::Csv).unwrap(),
            b.table_to_string("orders", OutputFormat::Csv).unwrap()
        );
    }
}
