fn main() {
    let schema = workloads::tpch::schema(12_456_789);
    let xml = pdgf_schema::config::to_xml_string(&schema);
    std::fs::write("models/tpch.xml", &xml).unwrap();
    let markov = workloads::corpus::tpch_comment_model();
    std::fs::create_dir_all("models/markov").unwrap();
    std::fs::write(
        "models/markov/l_comment_markovSamples.bin",
        markov.to_bytes(),
    )
    .unwrap();
    let ssb = workloads::ssb::schema(19_920_601);
    std::fs::write("models/ssb.xml", pdgf_schema::config::to_xml_string(&ssb)).unwrap();
    std::fs::write(
        "models/markov/ssb_comment_markovSamples.bin",
        markov.to_bytes(),
    )
    .unwrap();
    println!("wrote models/");
}
