//! Offline stand-in for the `loom` model checker.
//!
//! The build environment has no registry access, so this shim vendors the
//! narrow `loom` API the workspace's concurrency tests use: [`model`],
//! `loom::thread`, and `loom::sync::{Arc, Mutex, Condvar, atomic}`. The
//! real loom exhaustively enumerates thread interleavings with DPOR; this
//! stand-in is honest about being weaker — it *stress-tests* instead,
//! running the model closure many times while injecting deterministic
//! pseudo-random preemption points (`thread::yield_now`) at every
//! synchronization-primitive touch. Each iteration uses a different
//! SplitMix64-derived preemption schedule, so repeated runs explore many
//! distinct interleavings, reproducibly.
//!
//! Code under test is written once against `loom::sync` via a `cfg(loom)`
//! facade and runs unmodified against the real loom if one is ever
//! available: the types here delegate to `std::sync` and expose std's
//! signatures (`lock()` returns `LockResult`, atomics take `Ordering`).
//!
//! The iteration count defaults to 64 and can be raised with the
//! `LOOM_MAX_ITERS` environment variable, mirroring loom's own knob.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use core::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};

/// Per-iteration schedule state: a SplitMix64 stream deciding, at every
/// synchronization touch point, whether to yield the OS scheduler.
static SCHEDULE: StdAtomicU64 = StdAtomicU64::new(0);

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Preemption point: called by every shim primitive. Advances the
/// schedule stream and yields the OS scheduler on a pseudo-random subset
/// of calls, perturbing thread interleavings between iterations.
fn preempt() {
    let n = SCHEDULE.fetch_add(1, StdOrdering::Relaxed);
    // Yield on roughly 1 in 4 touches; which touches yield differs per
    // iteration because `model` reseeds the counter's high bits.
    if splitmix64(n).is_multiple_of(4) {
        std::thread::yield_now();
    }
}

/// Run `f` under the model checker: many iterations, each with a distinct
/// deterministic preemption schedule. Panics propagate, failing the test.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let iters: u64 = std::env::var("LOOM_MAX_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    for iter in 0..iters {
        // Seed the schedule stream for this iteration: the high bits make
        // every iteration's yield pattern distinct.
        SCHEDULE.store(splitmix64(iter) << 20, StdOrdering::Relaxed);
        f();
    }
}

/// Threads whose creation and joining are preemption points.
pub mod thread {
    /// Handle to a spawned model thread.
    pub struct JoinHandle<T>(std::thread::JoinHandle<T>);

    impl<T> JoinHandle<T> {
        /// Wait for the thread to finish.
        pub fn join(self) -> std::thread::Result<T> {
            super::preempt();
            self.0.join()
        }
    }

    /// Spawn a thread inside the model.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        super::preempt();
        JoinHandle(std::thread::spawn(f))
    }

    /// Explicit preemption point, as in loom.
    pub fn yield_now() {
        std::thread::yield_now();
    }
}

/// Synchronization primitives that inject preemption points around the
/// std primitives they delegate to.
pub mod sync {
    pub use std::sync::Arc;

    use std::fmt;
    use std::sync::{LockResult, MutexGuard, WaitTimeoutResult};

    /// Mutex delegating to [`std::sync::Mutex`] with preemption points
    /// before and after acquisition.
    #[derive(Default)]
    pub struct Mutex<T>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        /// New mutex holding `value`.
        pub const fn new(value: T) -> Self {
            Self(std::sync::Mutex::new(value))
        }

        /// Acquire the lock (std signature: poison-aware).
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            super::preempt();
            let g = self.0.lock();
            super::preempt();
            g
        }
    }

    impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.0.fmt(f)
        }
    }

    /// Condvar delegating to [`std::sync::Condvar`] with preemption
    /// points around waits and notifications.
    #[derive(Default)]
    pub struct Condvar(std::sync::Condvar);

    impl Condvar {
        /// New condition variable.
        pub const fn new() -> Self {
            Self(std::sync::Condvar::new())
        }

        /// Block until notified.
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            super::preempt();
            self.0.wait(guard)
        }

        /// Block until notified or `dur` elapsed.
        pub fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            dur: std::time::Duration,
        ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
            super::preempt();
            self.0.wait_timeout(guard, dur)
        }

        /// Wake one waiter.
        pub fn notify_one(&self) {
            super::preempt();
            self.0.notify_one();
        }

        /// Wake all waiters.
        pub fn notify_all(&self) {
            super::preempt();
            self.0.notify_all();
        }
    }

    impl fmt::Debug for Condvar {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Condvar")
        }
    }

    /// Atomics whose every access is a preemption point.
    pub mod atomic {
        pub use core::sync::atomic::Ordering;

        macro_rules! atomic_shim {
            ($(#[$doc:meta])* $name:ident, $std:ident, $int:ty) => {
                $(#[$doc])*
                #[derive(Debug, Default)]
                pub struct $name(core::sync::atomic::$std);

                impl $name {
                    /// New atomic holding `value`.
                    pub const fn new(value: $int) -> Self {
                        Self(core::sync::atomic::$std::new(value))
                    }

                    /// Atomic load.
                    pub fn load(&self, order: Ordering) -> $int {
                        crate::preempt();
                        self.0.load(order)
                    }

                    /// Atomic store.
                    pub fn store(&self, value: $int, order: Ordering) {
                        crate::preempt();
                        self.0.store(value, order);
                    }

                    /// Atomic fetch-add, returning the previous value.
                    pub fn fetch_add(&self, value: $int, order: Ordering) -> $int {
                        crate::preempt();
                        let prev = self.0.fetch_add(value, order);
                        crate::preempt();
                        prev
                    }

                    /// Atomic compare-exchange.
                    pub fn compare_exchange(
                        &self,
                        current: $int,
                        new: $int,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$int, $int> {
                        crate::preempt();
                        self.0.compare_exchange(current, new, success, failure)
                    }
                }
            };
        }

        atomic_shim!(
            /// `AtomicU64` with preemption points.
            AtomicU64,
            AtomicU64,
            u64
        );
        atomic_shim!(
            /// `AtomicUsize` with preemption points.
            AtomicUsize,
            AtomicUsize,
            usize
        );

        /// `AtomicBool` with preemption points.
        #[derive(Debug, Default)]
        pub struct AtomicBool(core::sync::atomic::AtomicBool);

        impl AtomicBool {
            /// New atomic holding `value`.
            pub const fn new(value: bool) -> Self {
                Self(core::sync::atomic::AtomicBool::new(value))
            }

            /// Atomic load.
            pub fn load(&self, order: Ordering) -> bool {
                crate::preempt();
                self.0.load(order)
            }

            /// Atomic store.
            pub fn store(&self, value: bool, order: Ordering) {
                crate::preempt();
                self.0.store(value, order);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::{Arc, Condvar, Mutex};

    #[test]
    fn model_runs_many_iterations() {
        let count = Arc::new(AtomicU64::new(0));
        let c = count.clone();
        super::model(move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
        assert!(count.load(Ordering::Relaxed) >= 2);
    }

    #[test]
    fn primitives_behave_like_std() {
        super::model(|| {
            let m = Arc::new(Mutex::new(0u32));
            let cv = Arc::new(Condvar::new());
            let (m2, cv2) = (m.clone(), cv.clone());
            let t = super::thread::spawn(move || {
                *m2.lock().unwrap() = 7;
                cv2.notify_all();
            });
            let mut g = m.lock().unwrap();
            while *g != 7 {
                g = cv.wait(g).unwrap();
            }
            drop(g);
            t.join().unwrap();
        });
    }
}
