//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the `proptest!` macro, `prop_assert*` macros, integer and
//! float range strategies, `any::<T>()`, `prop::collection::vec`, and
//! string strategies from a small regex-pattern subset (literals,
//! classes, `.`, groups, `{m,n}` repetition).
//!
//! Differences from the real crate, by design:
//! - no shrinking — a failing case reports its generated inputs and the
//!   deterministic seed instead of minimizing them;
//! - case count defaults to 48 (`PROPTEST_CASES` overrides);
//! - generation is seeded from the test name, so runs are reproducible
//!   without a persistence file.

#![deny(missing_docs)]

use std::fmt;

/// Deterministic RNG (SplitMix64) used to drive all strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u128) -> u128 {
        if n == 0 {
            0
        } else {
            ((self.next_u64() as u128) * n) >> 64
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Error carried out of a failing property body by the `prop_assert*`
/// macros; the tuple field is the failure message.
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Construct from any message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type produced.
    type Value: fmt::Debug;
    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategy producing one fixed value every time.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary: Sized + fmt::Debug {
    /// Produce an arbitrary value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the full domain of `T` (see [`any`]).
pub struct Any<T>(std::marker::PhantomData<T>);

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.f64_unit() * (self.end - self.start)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Any bit pattern — including infinities, NaNs, and subnormals.
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

/// A size specification accepted by [`collection::vec`]: `a..b`
/// (half-open, like proptest), `a..=b`, or an exact `usize`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_excl: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_excl: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_excl: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_excl: n + 1,
        }
    }
}

/// Collection strategies (`prop::collection` in the real crate).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a random length.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generate vectors whose length is drawn from `size` and whose
    /// elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_excl - self.size.min) as u128;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// String generation from a regex-pattern subset.
pub mod string {
    use super::{Strategy, TestRng};

    enum Piece {
        Lit(char),
        Class(Vec<(char, char)>),
        Dot,
        Group(Vec<Quantified>),
    }

    struct Quantified {
        piece: Piece,
        min: u32,
        max: u32, // inclusive, regex-style
    }

    /// Characters `.` draws from: printable ASCII plus two non-ASCII
    /// code points for Unicode coverage. Newline is excluded, matching
    /// regex `.` semantics.
    const DOT_EXTRA: [char; 2] = ['\u{e9}', '\u{2192}']; // é, →

    fn parse_seq(
        chars: &mut std::iter::Peekable<std::str::Chars>,
        in_group: bool,
    ) -> Vec<Quantified> {
        let mut out = Vec::new();
        while let Some(&c) = chars.peek() {
            let piece = match c {
                ')' if in_group => break,
                '(' => {
                    chars.next();
                    let inner = parse_seq(chars, true);
                    assert_eq!(chars.next(), Some(')'), "unclosed group in pattern");
                    Piece::Group(inner)
                }
                '[' => {
                    chars.next();
                    Piece::Class(parse_class(chars))
                }
                '.' => {
                    chars.next();
                    Piece::Dot
                }
                '\\' => {
                    chars.next();
                    let esc = chars.next().expect("dangling escape in pattern");
                    Piece::Lit(unescape(esc))
                }
                other => {
                    chars.next();
                    Piece::Lit(other)
                }
            };
            let (min, max) = parse_quantifier(chars);
            out.push(Quantified { piece, min, max });
        }
        out
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            'r' => '\r',
            't' => '\t',
            other => other,
        }
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>) -> Vec<(char, char)> {
        let mut ranges = Vec::new();
        loop {
            let c = chars.next().expect("unclosed class in pattern");
            match c {
                ']' => break,
                '^' if ranges.is_empty() => {
                    panic!("negated classes are not supported by the proptest shim")
                }
                _ => {
                    let lo = if c == '\\' {
                        unescape(chars.next().expect("dangling escape in class"))
                    } else {
                        c
                    };
                    if chars.peek() == Some(&'-') {
                        let mut ahead = chars.clone();
                        ahead.next(); // consume '-'
                        match ahead.peek() {
                            Some(&']') | None => ranges.push((lo, lo)), // literal '-' handled next loop
                            Some(&hi) => {
                                chars.next();
                                chars.next();
                                assert!(lo <= hi, "inverted class range in pattern");
                                ranges.push((lo, hi));
                            }
                        }
                    } else {
                        ranges.push((lo, lo));
                    }
                }
            }
        }
        assert!(!ranges.is_empty(), "empty class in pattern");
        ranges
    }

    fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars>) -> (u32, u32) {
        match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => {
                        let lo: u32 = lo.trim().parse().expect("bad quantifier");
                        let hi: u32 = hi.trim().parse().expect("bad quantifier");
                        assert!(lo <= hi, "inverted quantifier in pattern");
                        (lo, hi)
                    }
                    None => {
                        let n: u32 = spec.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        }
    }

    fn generate_seq(seq: &[Quantified], rng: &mut TestRng, out: &mut String) {
        for q in seq {
            let reps = q.min as u128 + rng.below((q.max - q.min + 1) as u128);
            for _ in 0..reps {
                match &q.piece {
                    Piece::Lit(c) => out.push(*c),
                    Piece::Dot => {
                        // 95 printable ASCII chars + DOT_EXTRA.
                        let i = rng.below(95 + DOT_EXTRA.len() as u128) as u32;
                        if i < 95 {
                            out.push(char::from_u32(0x20 + i).expect("printable ascii"));
                        } else {
                            out.push(DOT_EXTRA[(i - 95) as usize]);
                        }
                    }
                    Piece::Class(ranges) => {
                        let total: u128 = ranges
                            .iter()
                            .map(|&(lo, hi)| (hi as u128) - (lo as u128) + 1)
                            .sum();
                        let mut pick = rng.below(total);
                        for &(lo, hi) in ranges {
                            let n = (hi as u128) - (lo as u128) + 1;
                            if pick < n {
                                out.push(
                                    char::from_u32(lo as u32 + pick as u32)
                                        .expect("valid class char"),
                                );
                                break;
                            }
                            pick -= n;
                        }
                    }
                    Piece::Group(inner) => generate_seq(inner, rng, out),
                }
            }
        }
    }

    /// Generate one string matching `pattern`.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut chars = pattern.chars().peekable();
        let seq = parse_seq(&mut chars, false);
        assert_eq!(chars.next(), None, "unbalanced ')' in pattern");
        let mut out = String::new();
        generate_seq(&seq, rng, &mut out);
        out
    }

    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate(self, rng)
        }
    }

    impl Strategy for String {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate(self, rng)
        }
    }
}

/// Case-running machinery behind the `proptest!` macro.
pub mod test_runner {
    use super::{TestCaseError, TestRng};

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Number of cases per property: `PROPTEST_CASES` or 48.
    pub fn cases() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(48)
    }

    /// Run `body` for [`cases`] deterministic seeds derived from `name`;
    /// panic with diagnostics on the first failure.
    pub fn run(name: &str, mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
        let base = fnv1a(name);
        let n = cases();
        for case in 0..n {
            let seed = base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = TestRng::new(seed);
            if let Err(e) = body(&mut rng) {
                panic!("property `{name}` failed at case {case}/{n} (seed {seed:#018x})\n  {e}");
            }
        }
    }
}

/// Everything the tests import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{any, Arbitrary, Just, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespaced strategy modules (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::string;
    }
}

/// Define property tests. Each function body runs for many generated
/// inputs; use `prop_assert*` inside (plain `assert!` also works but
/// reports less context).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                    let __case = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __res: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body;
                            ::std::result::Result::Ok(())
                        })();
                    __res.map_err(|e| $crate::TestCaseError(format!("{e}\n  with {__case}")))
                });
            }
        )*
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion `left == right` failed\n  left: {:?}\n right: {:?}",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion `left == right` failed: {}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion `left != right` failed\n  both: {:?}",
                __l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion `left != right` failed: {}\n  both: {:?}",
                format!($($fmt)+),
                __l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn int_range_stays_in_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(-50i64..50), &mut rng);
            assert!((-50..50).contains(&v));
        }
    }

    #[test]
    fn pattern_generates_matching_strings() {
        let mut rng = crate::TestRng::new(42);
        for _ in 0..500 {
            let s = crate::string::generate("[a-d]{1,3}( [a-d]{1,3}){0,5}", &mut rng);
            for word in s.split(' ') {
                assert!((1..=3).contains(&word.len()), "bad word {word:?} in {s:?}");
                assert!(word.chars().all(|c| ('a'..='d').contains(&c)));
            }
        }
    }

    #[test]
    fn dot_never_generates_newline() {
        let mut rng = crate::TestRng::new(9);
        for _ in 0..500 {
            let s = crate::string::generate(".{0,50}", &mut rng);
            assert!(!s.contains('\n'));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::TestRng::new(3);
        for _ in 0..500 {
            let v = crate::Strategy::generate(&crate::collection::vec(0u32..10, 1..40), &mut rng);
            assert!((1..40).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        /// The macro itself: bindings, early return, and assertions.
        #[test]
        fn macro_smoke(x in 1u64..100, s in "[a-z]{0,6}", v in prop::collection::vec(any::<i32>(), 0..4)) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(s.len() <= 6, "len was {}", s.len());
            prop_assert_eq!(v.len(), v.capacity().min(v.len()));
            if s.is_empty() {
                return Ok(());
            }
            prop_assert_ne!(s.len(), 0);
        }
    }
}
