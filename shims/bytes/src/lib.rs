//! Offline stand-in for the `bytes` crate.
//!
//! Provides the little-endian cursor surface `textsynth` uses to
//! serialize Markov models: `BytesMut` (append-only builder), `Bytes`
//! (frozen immutable buffer), and `Buf` implemented for `&[u8]` so a
//! `&mut &[u8]` can be consumed front-to-back. Backed by plain `Vec<u8>`
//! rather than refcounted slices — fidelity of the read/write API, not
//! the zero-copy machinery, is what the workspace needs.

#![deny(missing_docs)]

use std::ops::Deref;

/// An immutable byte buffer (frozen [`BytesMut`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Create an empty buffer.
    pub fn new() -> Self {
        Bytes { data: Vec::new() }
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.data
    }
}

/// A growable byte buffer with little-endian put helpers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Create an empty builder.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Create an empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

/// Write cursor that appends encoded values to a growable buffer.
///
/// Implemented for [`BytesMut`] and plain `Vec<u8>`.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a `u16` in little-endian order.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a `u32` in little-endian order.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a `u64` in little-endian order.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append an `f64` in little-endian IEEE-754 order.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source, consumed front-to-back.
///
/// Implemented for `&[u8]`, so `let mut data: &[u8] = ...;` can call
/// `data.get_u32_le()` etc., advancing the slice in place.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy `dst.len()` bytes out, advancing the cursor.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Consume a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Consume a little-endian IEEE-754 `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.len(),
            "buffer underflow: need {} bytes, have {}",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut buf = BytesMut::new();
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_f64_le(std::f64::consts::PI);
        buf.put_slice(b"tail");
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 2 + 4 + 8 + 4);

        let mut data: &[u8] = &frozen;
        assert_eq!(data.get_u16_le(), 0xBEEF);
        assert_eq!(data.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(data.get_f64_le(), std::f64::consts::PI);
        let mut tail = [0u8; 4];
        data.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"tail");
        assert!(!data.has_remaining());
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut data: &[u8] = &[1, 2];
        let _ = data.get_u32_le();
    }

    #[test]
    fn bytes_derefs_to_slice() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        let s: &[u8] = &b;
        assert_eq!(s, &[1, 2, 3]);
    }
}
