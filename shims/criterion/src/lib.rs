//! Offline stand-in for `criterion`.
//!
//! Provides the macro/API surface the bench targets use —
//! `Criterion::default().warm_up_time(..).measurement_time(..)
//! .sample_size(..)`, `bench_function`, `Bencher::iter`,
//! `criterion_group!`, `criterion_main!` — over a simple wall-clock
//! sampler: calibrate an iteration count per sample, warm up, take N
//! samples, and print min/median/mean ns per iteration. No plots, no
//! statistical regression, no saved baselines.
//!
//! When invoked with `--test` (as `cargo test --benches` does for
//! `harness = false` targets), each routine runs exactly once so test
//! runs stay fast.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver; collects configuration and runs routines.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        Criterion {
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            sample_size: 50,
            test_mode: args.iter().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Time spent running the routine before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Target total measurement time across all samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Number of samples to take.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Benchmark `routine`, which receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.test_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            println!("test {name} ... ok");
            return self;
        }

        // Calibrate: grow the per-sample iteration count until one
        // sample takes ~1/sample_size of the measurement budget.
        let target = self.measurement.as_secs_f64() / self.sample_size as f64;
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            let t = b.elapsed.as_secs_f64();
            if t >= target || iters >= 1 << 40 {
                break;
            }
            let scale = if t <= f64::EPSILON {
                100.0
            } else {
                (target / t).min(100.0)
            };
            iters = ((iters as f64 * scale).ceil() as u64).max(iters + 1);
        }

        let warm_up_deadline = Instant::now() + self.warm_up;
        while Instant::now() < warm_up_deadline {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
        }

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let min = samples_ns[0];
        let median = samples_ns[samples_ns.len() / 2];
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        println!(
            "{name:<40} {median:>12.1} ns/iter (min {min:.1}, mean {mean:.1}, {} samples x {iters} iters)",
            samples_ns.len()
        );
        self
    }

    /// Flush pending reports (no-op; kept for API compatibility).
    pub fn final_summary(&mut self) {}
}

/// Passed to each benchmark routine; times the closure given to
/// [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` for the harness-chosen number of iterations, timing the
    /// whole batch.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Define a benchmark group function. Supports both the plain form
/// `criterion_group!(benches, f, g)` and the configured form
/// `criterion_group! { name = benches; config = expr; targets = f, g }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_iterations() {
        let mut b = Bencher {
            iters: 1000,
            elapsed: Duration::ZERO,
        };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        assert_eq!(count, 1000);
    }

    fn quick(c: &mut Criterion) {
        c.bench_function("shim/quick", |b| b.iter(|| black_box(1u64 + 1)));
    }

    criterion_group! {
        name = group_braced;
        config = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(2);
        targets = quick
    }
    // Compile-checks the plain macro form; its default 2s budget is too
    // slow to actually run inside a unit test.
    #[allow(dead_code)]
    mod plain_form {
        use super::quick;
        criterion_group!(group_plain, quick);
    }

    #[test]
    fn groups_run_with_tiny_budgets() {
        group_braced();
    }
}
