//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API
//! (`lock()` returns the guard directly, no `Result`). Poisoning is
//! handled by taking the inner value anyway — matching parking_lot,
//! which has no poisoning at all.

#![deny(missing_docs)]

use std::fmt;
use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's poison-free interface.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    guard: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { guard }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                guard: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// A reader-writer lock with parking_lot's poison-free interface.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new RwLock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
        assert_eq!(l.into_inner(), vec![1, 2, 3, 4]);
    }
}
