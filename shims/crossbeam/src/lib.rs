//! Offline stand-in for the `crossbeam` facade crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the narrow API slice it actually consumes: `channel::bounded` MPMC
//! channels with disconnect semantics. The implementation is a
//! `Mutex<VecDeque>` ring with two condvars — not lock-free like the real
//! crossbeam, but identical in observable behavior (blocking `send` with
//! backpressure, iteration until all senders disconnect), which is all
//! the scheduler relies on.

#![deny(missing_docs)]

/// Multi-producer multi-consumer channels (bounded subset).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        cap: usize,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent message like crossbeam's type does.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message ready right now.
        Empty,
        /// No message ready and all senders disconnected.
        Disconnected,
    }

    /// Sending half of a bounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// A bounded MPMC channel with capacity `cap`. A zero capacity is
    /// promoted to one slot (the real crate's zero-capacity rendezvous
    /// semantics are not needed here).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(cap.max(1)),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap: cap.max(1),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Block until a slot is free, then enqueue `msg`. Fails only when
        /// every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(msg));
                }
                if state.queue.len() < self.shared.cap {
                    state.queue.push_back(msg);
                    drop(state);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                state = self.shared.not_full.wait(state).unwrap();
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives; fails once the channel is empty
        /// and every sender has disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    drop(state);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.not_empty.wait(state).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().unwrap();
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator that ends when all senders disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.shared.not_full.notify_all();
            }
        }
    }

    /// Borrowing blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    /// Consuming blocking iterator over received messages.
    pub struct IntoIter<T> {
        receiver: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { receiver: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn send_recv_roundtrip_in_order() {
        let (tx, rx) = channel::bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.into_iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn bounded_capacity_applies_backpressure() {
        let (tx, rx) = channel::bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = std::thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until a slot frees
            "sent"
        });
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(t.join().unwrap(), "sent");
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = channel::bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn try_recv_reports_empty_and_disconnected() {
        let (tx, rx) = channel::bounded::<u8>(1);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }

    #[test]
    fn many_producers_one_consumer() {
        let (tx, rx) = channel::bounded(8);
        let mut handles = Vec::new();
        for t in 0..4 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(t * 100 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut got: Vec<i32> = rx.into_iter().collect();
        for h in handles {
            h.join().unwrap();
        }
        got.sort_unstable();
        assert_eq!(got.len(), 400);
        assert_eq!(got[0], 0);
        assert_eq!(got[399], 399);
    }
}
