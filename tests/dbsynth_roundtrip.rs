//! The headline DBSynth workflow, tested end to end on the IMDb-style
//! source: extract → save/load model files → generate → load → validate.

use dbsynth_suite::dbsynth::{
    compare_databases, generate_into, load_model_dir, save_model_dir, ExtractionOptions, Extractor,
    SamplingOptions,
};
use dbsynth_suite::minidb::sql::query;
use dbsynth_suite::minidb::{Database, SampleStrategy};
use dbsynth_suite::pdgf::OutputFormat;
use dbsynth_suite::workloads::imdb;

fn source() -> Database {
    imdb::build(2015, 600)
}

fn elaborate_options() -> ExtractionOptions {
    ExtractionOptions {
        stats: true,
        sampling: Some(SamplingOptions {
            strategy: SampleStrategy::Full,
            dict_max_distinct: 32,
        }),
        seed: 7,
        histogram_buckets: 16,
        use_histograms: true,
        infer_foreign_keys: false,
    }
}

#[test]
fn full_roundtrip_preserves_statistics() {
    let original = source();
    let model = Extractor::new(&original, elaborate_options())
        .extract("imdb")
        .expect("extraction");
    let mut synthetic = Database::new();
    let report = generate_into(&mut synthetic, &model, 1.0, 2).expect("generate+load");
    assert_eq!(
        report.total_rows() as usize,
        original
            .table_names()
            .iter()
            .map(|n| original.table(n).expect("table").row_count())
            .sum::<usize>()
    );

    let fidelity = compare_databases(&original, &synthetic, 1.0).expect("compare");
    assert!(
        fidelity.max_null_delta() < 0.06,
        "{}",
        fidelity.to_summary_string()
    );
    assert!(
        fidelity.max_mean_rel_error() < 0.15,
        "{}",
        fidelity.to_summary_string()
    );
    assert!(
        fidelity.all_ranges_contained(),
        "{}",
        fidelity.to_summary_string()
    );

    // Categorical domains survive: genres are exactly the source's set.
    let orig_genres = query(
        &original,
        "SELECT m_genre, COUNT(*) FROM movies GROUP BY m_genre",
    )
    .expect("orig genres");
    let syn_genres = query(
        &synthetic,
        "SELECT m_genre, COUNT(*) FROM movies GROUP BY m_genre",
    )
    .expect("syn genres");
    let to_set = |r: &dbsynth_suite::minidb::sql::QueryResult| {
        r.rows
            .iter()
            .map(|row| row[0].to_string())
            .collect::<std::collections::BTreeSet<_>>()
    };
    assert_eq!(to_set(&orig_genres), to_set(&syn_genres));
}

#[test]
fn scaling_up_multiplies_rows_and_keeps_referential_integrity() {
    let original = source();
    let model = Extractor::new(&original, elaborate_options())
        .extract("imdb")
        .expect("extraction");
    let mut synthetic = Database::new();
    generate_into(&mut synthetic, &model, 3.0, 0).expect("generate+load");
    assert_eq!(
        synthetic.table("movies").expect("movies").row_count(),
        1_800
    );
    // Foreign keys were re-pointed at the *scaled* parent domain.
    let orphans = query(
        &synthetic,
        "SELECT COUNT(*) FROM cast_info WHERE ci_movie < 1 OR ci_movie > 1800",
    )
    .expect("orphans");
    assert_eq!(orphans.rows[0][0].as_i64(), Some(0));
    let joined = query(
        &synthetic,
        "SELECT COUNT(*) FROM cast_info JOIN movies ON cast_info.ci_movie = movies.m_id",
    )
    .expect("join");
    let cast = query(&synthetic, "SELECT COUNT(*) FROM cast_info").expect("count");
    assert_eq!(joined.rows[0][0], cast.rows[0][0]);
}

#[test]
fn model_directory_roundtrip_is_faithful() {
    let original = source();
    let model = Extractor::new(&original, elaborate_options())
        .extract("imdb")
        .expect("extraction");
    let dir = std::env::temp_dir().join(format!("roundtrip-it-{}", std::process::id()));
    save_model_dir(&model, &dir).expect("save model dir");

    // Files exist with the paper's layout.
    assert!(dir.join("model.xml").exists());
    assert!(
        model.markov_models.keys().all(|p| dir.join(p).exists()),
        "markov binaries written"
    );
    assert!(
        model.dictionaries.keys().all(|p| dir.join(p).exists()),
        "dictionaries written"
    );

    let from_disk = load_model_dir(&dir)
        .expect("load model dir")
        .workers(0)
        .build()
        .expect("build from disk");
    let from_memory = dbsynth_suite::dbsynth::workflow::pdgf_from_model(&model)
        .workers(0)
        .build()
        .expect("build from memory");
    for table in ["movies", "persons", "cast_info"] {
        assert_eq!(
            from_disk
                .table_to_string(table, OutputFormat::Csv)
                .expect("disk render"),
            from_memory
                .table_to_string(table, OutputFormat::Csv)
                .expect("mem render"),
            "{table}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn histogram_extraction_preserves_skew_that_uniform_bounds_lose() {
    use dbsynth_suite::minidb::{ColumnDef, TableDef};
    use pdgf_schema::{SqlType, Value};

    // A heavily skewed numeric column: 90% of amounts below 100, a thin
    // tail reaching ~10,000.
    let mut original = Database::new();
    original
        .create_table(
            TableDef::new("sales")
                .column(ColumnDef::new("s_id", SqlType::BigInt).primary_key())
                .column(ColumnDef::new("s_amount", SqlType::Integer).not_null()),
        )
        .expect("create");
    for i in 0..2_000i64 {
        let amount = if i % 10 == 9 {
            100 + (i % 100) * 99
        } else {
            i % 100
        };
        original
            .insert("sales", vec![Value::Long(i + 1), Value::Long(amount)])
            .expect("insert");
    }
    let small_fraction = |db: &Database| {
        let t = db.table("sales").expect("sales");
        let idx = t.def().column_index("s_amount").expect("column");
        let small = t
            .column(idx)
            .filter(|v| v.as_i64().unwrap_or(0) < 100)
            .count();
        small as f64 / t.row_count() as f64
    };
    let original_frac = small_fraction(&original);
    assert!(original_frac > 0.85, "setup: {original_frac}");

    let synth_with = |use_histograms: bool| {
        // Equi-width histograms trade resolution for size; 128 buckets
        // give ~77-unit buckets over this 10k range, enough to keep the
        // low-value mass where it belongs.
        let opts = ExtractionOptions {
            use_histograms,
            histogram_buckets: 128,
            ..elaborate_options()
        };
        let model = Extractor::new(&original, opts)
            .extract("skew")
            .expect("extract");
        let mut target = Database::new();
        generate_into(&mut target, &model, 1.0, 0).expect("generate");
        small_fraction(&target)
    };

    let with_hist = synth_with(true);
    let without_hist = synth_with(false);
    // Equi-width buckets blur the CDF by up to one bucket's mass at an
    // arbitrary cutoff, so allow that; uniform over [0, ~10000] puts only
    // ~1-15% below 100 and must be far worse.
    assert!(
        (with_hist - original_frac).abs() < 0.2,
        "histogram generation lost the skew: {with_hist} vs {original_frac}"
    );
    assert!(
        without_hist < 0.25,
        "uniform baseline unexpectedly skewed: {without_hist}"
    );
    assert!(
        (with_hist - original_frac).abs() * 3.0 < (without_hist - original_frac).abs(),
        "histograms must clearly beat min/max bounds: {with_hist} vs {without_hist} \
         (target {original_frac})"
    );
}

#[test]
fn schema_only_extraction_still_generates_plausible_data() {
    // Without sampling, the keyword rule engine must carry text columns.
    let original = source();
    let model = Extractor::new(&original, ExtractionOptions::schema_only(3))
        .extract("imdb")
        .expect("schema-only extraction");
    let mut synthetic = Database::new();
    generate_into(&mut synthetic, &model, 1.0, 0).expect("generate+load");
    assert_eq!(synthetic.table("movies").expect("movies").row_count(), 600);
    // p_name matched the "name" keyword rule: two capitalized words.
    let t = synthetic.table("persons").expect("persons");
    let name_idx = t.def().column_index("p_name").expect("column");
    for v in t.column(name_idx).take(20) {
        let name = v.as_text().expect("non-null name");
        assert_eq!(name.split(' ').count(), 2, "rule-generated name: {name}");
    }
}
