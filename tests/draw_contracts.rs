//! Dynamic enforcement of the static draw contracts (`pdgf prove`'s
//! ground truth) over the full generator zoo: every generator kind's
//! actual PRNG consumption, measured by the counting RNG through
//! [`SchemaRuntime::value_counting`], must land inside the contract its
//! runtime generator declares — per cell, per update epoch. The
//! columnar engine has no per-cell counter (it draws through hoisted
//! vectorized kernels), so its side of the proof is value identity:
//! every batch cell must equal the counted row-path cell, which pins
//! both engines to the same lineage node.

mod zoo;

use pdgf_gen::{MapResolver, SchemaRuntime};
use pdgf_schema::lineage::{contract_of_spec, fmt_draws};
use pdgf_schema::ColumnBatch;
use zoo::generator_zoo;

/// Declared runtime contracts must be byte-for-byte the contracts
/// derived from the schema description — the dynamic twin of `pdgf
/// prove`'s E054 check, run over every shipped generator kind at once.
#[test]
fn declared_contracts_match_spec_derivation() {
    let schema = generator_zoo();
    let rt = SchemaRuntime::build(&schema, &MapResolver::new()).expect("zoo builds");
    let declared = rt.contracts();
    for (ti, table) in schema.tables.iter().enumerate() {
        for (fi, field) in table.fields.iter().enumerate() {
            let derived = contract_of_spec(&field.generator, &schema);
            assert_eq!(
                declared[ti][fi], derived,
                "{}.{}: runtime contract drifted from spec derivation",
                table.name, field.name
            );
            assert!(
                declared[ti][fi].is_bounded(),
                "{}.{}: zoo generator has no finite draw bound",
                table.name,
                field.name
            );
        }
    }
}

/// Every cell of every zoo column, across update epochs: the counting
/// RNG's measured draw count must fall inside the declared contract.
/// Exact contracts (min == max) therefore pin consumption exactly.
#[test]
fn measured_draws_stay_inside_declared_contracts() {
    let schema = generator_zoo();
    let rt = SchemaRuntime::build(&schema, &MapResolver::new()).expect("zoo builds");
    let declared = rt.contracts();
    for (ti, table) in rt.tables().iter().enumerate() {
        for (ci, contract) in declared[ti].iter().enumerate() {
            let draws = contract.draws;
            for update in [0u32, 1, 2] {
                for row in 0..table.size {
                    let (_, n) = rt.value_counting(ti as u32, ci as u32, update, row);
                    assert!(
                        draws.min <= n && n <= draws.max,
                        "{}[{ci}] update={update} row={row}: measured {n} draws, \
                         contract says {}",
                        table.name,
                        fmt_draws(draws)
                    );
                }
            }
        }
    }
}

/// The columnar engine's cells must equal the counted row-path cells
/// across update epochs — with `measured_draws_stay_inside_declared_contracts`
/// this extends the contract proof to both engines: same values, same
/// lineage nodes, row-side consumption within bounds.
#[test]
fn columnar_cells_match_counted_row_cells() {
    let schema = generator_zoo();
    let rt = SchemaRuntime::build(&schema, &MapResolver::new()).expect("zoo builds");
    let mut batch = ColumnBatch::new();
    let mut scratch = pdgf_gen::GenScratch::default();
    for (ti, table) in rt.tables().iter().enumerate() {
        for update in [0u32, 1, 2] {
            rt.fill_batch(ti as u32, update, 0..table.size, &mut batch, &mut scratch);
            for (ci, col) in batch.columns().iter().enumerate() {
                for row in 0..table.size {
                    let (row_value, _) = rt.value_counting(ti as u32, ci as u32, update, row);
                    assert_eq!(
                        col.value(row as usize),
                        row_value,
                        "{}[{ci}] update={update} row={row}: columnar cell \
                         diverged from counted row cell",
                        table.name
                    );
                }
            }
        }
    }
}
