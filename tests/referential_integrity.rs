//! End-to-end referential integrity: generated data loaded into the
//! minidb substrate must join cleanly — the consistency the paper's
//! "reference computation" strategy guarantees without ever reading
//! generated data.

use dbsynth_suite::minidb::sql::{execute, query};
use dbsynth_suite::minidb::Database;
use dbsynth_suite::workloads::{bigbench, tpch};
use pdgf_schema::Value;

/// Generate a project's tables straight into a fresh minidb.
fn load_project(project: &dbsynth_suite::pdgf::PdgfProject) -> Database {
    let mut db = Database::new();
    dbsynth_suite::dbsynth::translate::create_target_tables(&mut db, project.schema())
        .expect("DDL applies");
    let rt = project.runtime();
    for (t_idx, table) in rt.tables().iter().enumerate() {
        let rows: Vec<Vec<Value>> = (0..table.size)
            .map(|r| rt.row(t_idx as u32, 0, r))
            .collect();
        db.bulk_load(&table.name, rows).expect("rows satisfy DDL");
    }
    db
}

#[test]
fn tpch_foreign_keys_join_without_orphans() {
    let project = tpch::project(0.0005)
        .workers(0)
        .build()
        .expect("tpch builds");
    let db = load_project(&project);

    // Every lineitem joins to an order; the join count equals lineitem's
    // row count exactly (no orphans, keys unique on the parent side).
    let li_count = query(&db, "SELECT COUNT(*) FROM lineitem")
        .expect("count")
        .rows[0][0]
        .clone();
    let joined = query(
        &db,
        "SELECT COUNT(*) FROM lineitem JOIN orders ON lineitem.l_orderkey = orders.o_orderkey",
    )
    .expect("join")
    .rows[0][0]
        .clone();
    assert_eq!(li_count, joined);

    // Orders → customer → nation → region chains resolve completely.
    let chain = query(
        &db,
        "SELECT COUNT(*) FROM orders \
         JOIN customer ON orders.o_custkey = customer.c_custkey \
         JOIN nation ON customer.c_nationkey = nation.n_nationkey \
         JOIN region ON nation.n_regionkey = region.r_regionkey",
    )
    .expect("chain join")
    .rows[0][0]
        .clone();
    let o_count = query(&db, "SELECT COUNT(*) FROM orders")
        .expect("count")
        .rows[0][0]
        .clone();
    assert_eq!(chain, o_count);
}

#[test]
fn tpch_business_queries_return_sane_shapes() {
    let project = tpch::project(0.0005)
        .workers(2)
        .build()
        .expect("tpch builds");
    let db = load_project(&project);

    // A pricing-summary-flavoured aggregation (Q1-like).
    let q1 = query(
        &db,
        "SELECT l_returnflag, l_linestatus, COUNT(*) AS n, SUM(l_quantity) AS qty \
         FROM lineitem GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus",
    )
    .expect("q1");
    assert!(
        (3..=6).contains(&q1.rows.len()),
        "R/A/N × O/F combinations: got {}",
        q1.rows.len()
    );

    // Per-segment customer counts cover all five segments.
    let seg = query(
        &db,
        "SELECT c_mktsegment, COUNT(*) FROM customer GROUP BY c_mktsegment",
    )
    .expect("segments");
    assert_eq!(seg.rows.len(), 5);

    // Date predicates work on generated dates.
    let dated = query(
        &db,
        "SELECT COUNT(*) FROM orders WHERE o_orderdate >= '1995-01-01' AND \
         o_orderdate < '1996-01-01'",
    )
    .expect("dated");
    let n = dated.rows[0][0].as_i64().expect("count");
    let total = query(&db, "SELECT COUNT(*) FROM orders")
        .expect("count")
        .rows[0][0]
        .as_i64()
        .expect("count");
    // Uniform over ~6.6 years: one year holds roughly 15%.
    let frac = n as f64 / total as f64;
    assert!((0.10..0.22).contains(&frac), "1995 fraction {frac}");
}

#[test]
fn bigbench_reviews_reference_items_and_customers() {
    let project = bigbench::project(0.05)
        .workers(0)
        .build()
        .expect("bigbench builds");
    let db = load_project(&project);
    let reviews = query(&db, "SELECT COUNT(*) FROM product_reviews")
        .expect("count")
        .rows[0][0]
        .clone();
    let joined = query(
        &db,
        "SELECT COUNT(*) FROM product_reviews \
         JOIN item ON product_reviews.pr_item = item.i_item_id \
         JOIN customer ON product_reviews.pr_user = customer.c_customer_id",
    )
    .expect("join")
    .rows[0][0]
        .clone();
    assert_eq!(reviews, joined);
}

#[test]
fn generated_sql_format_loads_through_the_sql_engine() {
    // The SQL output format must be executable DDL+DML: build the target
    // through INSERT statements only.
    let project = tpch::project(0.0001)
        .workers(0)
        .build()
        .expect("tpch builds");
    let mut db = Database::new();
    dbsynth_suite::dbsynth::translate::create_target_tables(&mut db, project.schema())
        .expect("DDL applies");
    let inserts = project
        .table_to_string("region", dbsynth_suite::pdgf::OutputFormat::Sql)
        .expect("sql render");
    for stmt in inserts.lines() {
        execute(&mut db, stmt).expect("insert executes");
    }
    let n = query(&db, "SELECT COUNT(*) FROM region")
        .expect("count")
        .rows[0][0]
        .clone();
    assert_eq!(n, Value::Long(5));
    let names = query(&db, "SELECT r_name FROM region ORDER BY r_regionkey").expect("names");
    assert_eq!(names.rows[0][0], Value::text("AFRICA"));
    assert_eq!(names.rows[4][0], Value::text("MIDDLE EAST"));
}
