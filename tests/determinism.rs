//! Cross-crate determinism guarantees — the property the whole paper
//! rests on: generated data is a pure function of the model and its seed,
//! independent of any execution detail.

use dbsynth_suite::pdgf::{OutputFormat, Pdgf};
use dbsynth_suite::workloads::tpch;
use pdgf_output::{CsvFormatter, Sink};
use pdgf_runtime::{MetaScheduler, RunConfig};

fn tpch_csv(workers: usize, package_rows: u64, table: &str) -> String {
    tpch::project(0.0005)
        .workers(workers)
        .package_rows(package_rows)
        .build()
        .expect("tpch builds")
        .table_to_string(table, OutputFormat::Csv)
        .expect("render")
}

#[test]
fn output_is_independent_of_worker_count_and_package_size() {
    let reference = tpch_csv(0, 1_000, "orders");
    for (workers, pkg) in [(1, 37), (2, 500), (4, 10_000), (3, 1)] {
        assert_eq!(
            tpch_csv(workers, pkg, "orders"),
            reference,
            "workers={workers} pkg={pkg}"
        );
    }
}

#[test]
fn node_sharding_is_transparent() {
    // The union of N node shards equals the 1-node output, byte for byte,
    // for several N — the meta-scheduler contract.
    let project = tpch::project(0.0005).build().expect("tpch builds");
    let rt = project.runtime();

    // Per-table byte streams: node shards of each table concatenate in
    // node order (node outputs of different tables interleave, so the
    // comparison must be per table).
    type TableBytes = std::collections::BTreeMap<String, Vec<u8>>;
    let collect = |nodes: usize| -> TableBytes {
        let sched = MetaScheduler::new(nodes, RunConfig::new().workers(2).package_rows(97));
        let shared = std::sync::Arc::new(parking_lot::Mutex::new(TableBytes::new()));
        let mut make = {
            let shared = shared.clone();
            move |table: &str, _: usize| -> std::io::Result<Box<dyn Sink>> {
                Ok(Box::new(TableSink {
                    table: table.to_string(),
                    dest: shared.clone(),
                    count: 0,
                }))
            }
        };
        sched
            .run_cluster(rt, &CsvFormatter::new(), &mut make)
            .expect("cluster run");
        let result = shared.lock().clone();
        result
    };

    let single = collect(1);
    for nodes in [2usize, 3, 5] {
        assert_eq!(collect(nodes), single, "nodes={nodes}");
    }
}

struct TableSink {
    table: String,
    dest: std::sync::Arc<parking_lot::Mutex<std::collections::BTreeMap<String, Vec<u8>>>>,
    count: u64,
}

impl Sink for TableSink {
    fn write_chunk(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.dest
            .lock()
            .entry(self.table.clone())
            .or_default()
            .extend_from_slice(bytes);
        self.count += bytes.len() as u64;
        Ok(())
    }
    fn finish(&mut self) -> std::io::Result<u64> {
        Ok(self.count)
    }
    fn bytes_written(&self) -> u64 {
        self.count
    }
}

#[test]
fn seed_change_modifies_every_random_value() {
    // "changing the seed will modify every value of the generated data
    // set" — check a data-bearing column end to end.
    let a = Pdgf::from_schema(tpch::schema(12_456_789))
        .resolver(tpch::resolver())
        .set_property("SF", "0.0005")
        .build()
        .expect("build a");
    let b = Pdgf::from_schema(tpch::schema(99))
        .resolver(tpch::resolver())
        .set_property("SF", "0.0005")
        .build()
        .expect("build b");
    let (o_idx, orders) = a.runtime().table_by_name("orders").expect("orders");
    let total_col = 3; // o_totalprice
    let diffs = (0..orders.size)
        .filter(|&r| {
            a.runtime().value(o_idx, total_col, 0, r) != b.runtime().value(o_idx, total_col, 0, r)
        })
        .count();
    assert!(
        diffs as u64 > orders.size * 99 / 100,
        "only {diffs}/{} values changed",
        orders.size
    );
}

#[test]
fn xml_roundtrip_preserves_generated_bytes() {
    let direct = tpch::project(0.0002)
        .workers(0)
        .build()
        .expect("direct build");
    let xml = dbsynth_suite::pdgf::schema::config::to_xml_string(direct.schema());
    let via_xml = Pdgf::from_xml_str(&xml)
        .expect("parse own XML")
        .resolver(tpch::resolver())
        .workers(0)
        .build()
        .expect("build from XML");
    for table in ["customer", "orders", "lineitem"] {
        assert_eq!(
            direct
                .table_to_string(table, OutputFormat::Csv)
                .expect("render"),
            via_xml
                .table_to_string(table, OutputFormat::Csv)
                .expect("render"),
            "{table}"
        );
    }
}

#[test]
fn formats_carry_identical_data() {
    // The same cells must appear in every output format: compare the CSV
    // and JSON renderings of the first rows field by field.
    let project = tpch::project(0.0002).workers(0).build().expect("build");
    let csv = project
        .table_to_string("customer", OutputFormat::Csv)
        .expect("csv");
    let json = project
        .table_to_string("customer", OutputFormat::Json)
        .expect("json");
    let first_csv = csv.lines().next().expect("has rows");
    let first_json = json.lines().next().expect("has rows");
    // The customer key and name must appear verbatim in both.
    let key = first_csv.split(',').next().expect("key field");
    assert!(first_json.contains(&format!("\"c_custkey\":{key}")));
    let sql = project
        .table_to_string("customer", OutputFormat::Sql)
        .expect("sql");
    assert!(sql
        .lines()
        .next()
        .expect("has rows")
        .contains(&format!("VALUES ({key}")));
}
