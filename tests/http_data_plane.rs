//! Cross-crate test of the multi-model data plane: one server hosting
//! TPC-H and SSB in one [`ModelRegistry`], fetched whole over both the
//! TCP frame protocol and the HTTP/1.1 front end, with
//! `max_request_rows` set far below the table sizes so every fetch is a
//! chained sequence of clamped cursor tiles. The chained bytes must be
//! byte-equal to `pdgf generate` output for all four formats and both
//! engines — the determinism contract extended across models,
//! protocols, and the cursor tiling.

use pdgf::runtime::ServeConfig;
use pdgf::{FetchRequest, ModelRegistry, OutputFormat, ServeClient, Server, ServerOptions};
use workloads::{ssb, tpch};

const SF: f64 = 0.02;
const TPCH_TABLE: &str = "supplier";
const SSB_TABLE: &str = "customer";

/// Reference bytes per (model, table, format) from the batch path, plus
/// the table sizes, computed from freshly built projects.
#[allow(clippy::type_complexity)]
fn references(
    columnar: bool,
) -> (
    Vec<(&'static str, &'static str, OutputFormat, Vec<u8>)>,
    ModelRegistry,
    u64,
    u64,
) {
    let tpch_project = tpch::project(SF).columnar(columnar).build().unwrap();
    let ssb_project = ssb::project(SF).columnar(columnar).build().unwrap();
    let tpch_rows = tpch_project
        .runtime()
        .table_by_name(TPCH_TABLE)
        .expect("tpch table")
        .1
        .size;
    let ssb_rows = ssb_project
        .runtime()
        .table_by_name(SSB_TABLE)
        .expect("ssb table")
        .1
        .size;
    let mut refs = Vec::new();
    for format in OutputFormat::all() {
        refs.push((
            "tpch",
            TPCH_TABLE,
            format,
            tpch_project
                .table_to_string(TPCH_TABLE, format)
                .unwrap()
                .into_bytes(),
        ));
        refs.push((
            "ssb",
            SSB_TABLE,
            format,
            ssb_project
                .table_to_string(SSB_TABLE, format)
                .unwrap()
                .into_bytes(),
        ));
    }
    let registry = ModelRegistry::new()
        .register("tpch", tpch_project)
        .unwrap()
        .register("ssb", ssb_project)
        .unwrap();
    (refs, registry, tpch_rows, ssb_rows)
}

#[test]
fn two_model_registry_cursor_chains_tile_byte_equal_for_both_engines() {
    for columnar in [true, false] {
        let (refs, registry, tpch_rows, ssb_rows) = references(columnar);
        // The cap forces every whole-table fetch through several cursor
        // hops (sizes are in the hundreds at this scale factor).
        assert!(tpch_rows > 97 && ssb_rows > 97, "tables big enough to tile");
        let options = ServerOptions::builder()
            .config(
                ServeConfig::new()
                    .workers(2)
                    .package_rows(64)
                    .window(3)
                    .max_request_rows(97)
                    .columnar(columnar),
            )
            .build()
            .unwrap();
        let server = Server::bind_registry(registry, "127.0.0.1:0", options, None)
            .unwrap()
            .with_http("127.0.0.1:0")
            .unwrap();
        let handle = server.spawn().unwrap();

        let mut tcp = ServeClient::connect(handle.addr()).unwrap();
        let mut http = ServeClient::connect_http(handle.http_addr().unwrap()).unwrap();
        for (model, table, format, whole) in &refs {
            let rows = if *model == "tpch" {
                tpch_rows
            } else {
                ssb_rows
            };
            let req = FetchRequest::range(table, 0, rows)
                .format(*format)
                .model(model);
            let over_tcp = tcp.fetch(req.clone()).unwrap();
            let over_http = http.fetch(req).unwrap();
            assert_eq!(
                &over_tcp,
                whole,
                "tcp {model}.{table} {} columnar={columnar}: chained tiles != generate",
                format.extension()
            );
            assert_eq!(
                over_http,
                over_tcp,
                "http {model}.{table} {} columnar={columnar}: transports disagree",
                format.extension()
            );
        }

        // The registry keeps per-model books: both slots saw requests,
        // and the model-addressed INFO endpoints resolve by name.
        let tpch_stats = handle.stats_of(0).expect("slot 0 exists");
        let ssb_stats = handle.stats_of(1).expect("slot 1 exists");
        assert!(tpch_stats.completed > 0, "tpch slot served requests");
        assert!(ssb_stats.completed > 0, "ssb slot served requests");
        assert_eq!(
            handle.stats().completed,
            tpch_stats.completed + ssb_stats.completed,
            "global counters are the sum of the per-model ones"
        );
        assert!(tcp.info_of("ssb").unwrap().contains(SSB_TABLE));
        assert!(http.info_of("tpch").unwrap().contains(TPCH_TABLE));
        handle.stop();
    }
}
