//! The generator zoo: one schema exercising every shipped generator
//! kind, shared by the cross-path byte-identity matrix
//! (`columnar_identity.rs`) and the serve determinism matrix
//! (`serve_matrix.rs`).

#![allow(dead_code)] // each test binary uses a subset of these helpers

use pdgf_schema::model::{DateFormat, DictSource, HistogramOutput, MarkovSource, RefDistribution};
use pdgf_schema::value::Date;
use pdgf_schema::{Expr, Field, GeneratorSpec, Schema, SqlType, Table, Value};

pub fn expr(s: &str) -> Expr {
    Expr::parse(s).expect("literal expression")
}

pub fn inline_dict() -> DictSource {
    DictSource::Inline {
        entries: vec![
            ("alpha".to_string(), 1.0),
            ("beta".to_string(), 3.0),
            ("gamma, \"quoted\" & <tagged>".to_string(), 2.0),
            ("delta".to_string(), 0.5),
        ],
    }
}

pub fn inline_markov() -> MarkovSource {
    let samples = [
        "carefully final deposits sleep quickly",
        "furiously regular requests haggle blithely",
        "quickly special packages wake across the ideas",
        "silent platelets detect slyly",
    ];
    let mut builder = textsynth::MarkovBuilder::new();
    for s in samples {
        builder.feed(s);
    }
    MarkovSource::Inline(builder.build().expect("non-empty corpus").to_text())
}

/// One table per shipped generator kind (plus a parent for references),
/// so a matrix over this schema covers every kernel and every fallback
/// in one run.
pub fn generator_zoo() -> Schema {
    let parent = Table::new("parent", "29")
        .field(Field::new("pk", SqlType::BigInt, GeneratorSpec::Id { permute: false }).primary())
        .field(Field::new(
            "name",
            SqlType::Varchar(12),
            GeneratorSpec::Dict {
                source: inline_dict(),
                weighted: false,
            },
        ));

    let kitchen = Table::new("kitchen", "257")
        .field(Field::new("id", SqlType::BigInt, GeneratorSpec::Id { permute: true }).primary())
        .field(Field::new(
            "long_v",
            SqlType::Integer,
            GeneratorSpec::Long {
                min: expr("-500"),
                max: expr("100000"),
            },
        ))
        .field(Field::new(
            "double_v",
            SqlType::Double,
            GeneratorSpec::Double {
                min: expr("0"),
                max: expr("1000"),
                decimals: Some(3),
            },
        ))
        .field(Field::new(
            "double_raw",
            SqlType::Double,
            GeneratorSpec::Double {
                min: expr("-1"),
                max: expr("1"),
                decimals: None,
            },
        ))
        .field(Field::new(
            "dec_v",
            SqlType::Decimal(12, 2),
            GeneratorSpec::Decimal {
                min: expr("-999"),
                max: expr("999"),
                scale: 2,
            },
        ))
        .field(Field::new(
            "date_iso",
            SqlType::Date,
            GeneratorSpec::DateRange {
                min: Date::from_ymd(1992, 1, 1),
                max: Date::from_ymd(1998, 12, 31),
                format: DateFormat::Iso,
            },
        ))
        .field(Field::new(
            "date_mdy",
            SqlType::Varchar(10),
            GeneratorSpec::DateRange {
                min: Date::from_ymd(2000, 6, 1),
                max: Date::from_ymd(2014, 11, 30),
                format: DateFormat::SlashMdy,
            },
        ))
        .field(Field::new(
            "date_dmy",
            SqlType::Varchar(10),
            GeneratorSpec::DateRange {
                min: Date::from_ymd(1970, 1, 1),
                max: Date::from_ymd(1999, 12, 31),
                format: DateFormat::DotDmy,
            },
        ))
        .field(Field::new(
            "ts_v",
            SqlType::Timestamp,
            GeneratorSpec::TimestampRange {
                min: 0,
                max: 1_500_000_000,
            },
        ))
        .field(Field::new(
            "rstr",
            SqlType::Varchar(24),
            GeneratorSpec::RandomString {
                min_len: 3,
                max_len: 24,
            },
        ))
        // Declared width below max_len forces the truncate wrapper over
        // the random-string kernel.
        .field(Field::new(
            "rstr_trunc",
            SqlType::Varchar(8),
            GeneratorSpec::RandomString {
                min_len: 1,
                max_len: 16,
            },
        ))
        .field(Field::new(
            "flag",
            SqlType::Boolean,
            GeneratorSpec::RandomBool { true_prob: 0.37 },
        ))
        .field(Field::new(
            "dict_w",
            SqlType::Varchar(40),
            GeneratorSpec::Dict {
                source: inline_dict(),
                weighted: true,
            },
        ))
        .field(Field::new(
            "dict_row",
            SqlType::Varchar(40),
            GeneratorSpec::DictByRow {
                source: inline_dict(),
            },
        ))
        .field(Field::new(
            "comment",
            SqlType::Varchar(60),
            GeneratorSpec::Markov {
                source: inline_markov(),
                min_words: 2,
                max_words: 9,
            },
        ))
        .field(Field::new(
            "ref_uniform",
            SqlType::BigInt,
            GeneratorSpec::Reference {
                table: "parent".to_string(),
                field: "pk".to_string(),
                distribution: RefDistribution::Uniform,
            },
        ))
        .field(Field::new(
            "ref_zipf",
            SqlType::Varchar(12),
            GeneratorSpec::Reference {
                table: "parent".to_string(),
                field: "name".to_string(),
                distribution: RefDistribution::Zipf { theta: 0.5 },
            },
        ))
        .field(Field::new(
            "ref_zipf_pk",
            SqlType::BigInt,
            GeneratorSpec::Reference {
                table: "parent".to_string(),
                field: "pk".to_string(),
                distribution: RefDistribution::Zipf { theta: 0.8 },
            },
        ))
        .field(Field::new(
            "ref_perm",
            SqlType::BigInt,
            GeneratorSpec::Reference {
                table: "parent".to_string(),
                field: "pk".to_string(),
                distribution: RefDistribution::Permutation,
            },
        ))
        .field(Field::new(
            "maybe_null",
            SqlType::Integer,
            GeneratorSpec::Null {
                probability: 0.25,
                inner: Box::new(GeneratorSpec::Long {
                    min: expr("1"),
                    max: expr("9"),
                }),
            },
        ))
        .field(Field::new(
            "constant",
            SqlType::Varchar(16),
            GeneratorSpec::Static {
                value: Value::text("fixed \"cell\""),
            },
        ))
        .field(Field::new(
            "concat",
            SqlType::Varchar(40),
            GeneratorSpec::Sequential {
                parts: vec![
                    GeneratorSpec::Dict {
                        source: inline_dict(),
                        weighted: false,
                    },
                    GeneratorSpec::Long {
                        min: expr("10"),
                        max: expr("99"),
                    },
                ],
                separator: "-".to_string(),
            },
        ))
        .field(Field::new(
            "branchy",
            SqlType::Varchar(40),
            GeneratorSpec::Probability {
                branches: vec![
                    (
                        0.6,
                        GeneratorSpec::Long {
                            min: expr("0"),
                            max: expr("9"),
                        },
                    ),
                    (
                        0.4,
                        GeneratorSpec::Dict {
                            source: inline_dict(),
                            weighted: false,
                        },
                    ),
                ],
            },
        ))
        .field(Field::new(
            "formula",
            SqlType::BigInt,
            GeneratorSpec::Formula {
                expr: expr("${ROW} % 7 + 1"),
                as_long: true,
            },
        ))
        .field(Field::new(
            "hist_long",
            SqlType::Integer,
            GeneratorSpec::HistogramNumeric {
                bounds: vec![0.0, 10.0, 100.0, 1000.0],
                weights: vec![5.0, 3.0, 1.0],
                output: HistogramOutput::Long,
            },
        ))
        .field(Field::new(
            "hist_dec",
            SqlType::Decimal(10, 2),
            GeneratorSpec::HistogramNumeric {
                bounds: vec![1.0, 2.5, 9.0],
                weights: vec![1.0, 1.0],
                output: HistogramOutput::Decimal(2),
            },
        ));

    Schema::new("zoo", 0xC01_AB5).table(parent).table(kitchen)
}
