//! The TPC-DI-style pipeline end to end: initial load into the SQL
//! substrate, then per-epoch change batches from the update black box
//! applied as SQL DML — row counts and values must track the black box's
//! deterministic bookkeeping.

use dbsynth_suite::minidb::sql::{execute, query};
use dbsynth_suite::minidb::Database;
use dbsynth_suite::pdgf::gen::{MapResolver, SchemaRuntime};
use dbsynth_suite::pdgf::runtime::{UpdateBlackBox, UpdateConfig, UpdateOp};
use dbsynth_suite::pdgf::schema::{Expr, Field, GeneratorSpec, Schema, SqlType, Table};
use pdgf_schema::Value;

fn runtime() -> SchemaRuntime {
    let schema = Schema::new("etl", 77).table(
        Table::new("accounts", "500")
            .field(
                Field::new(
                    "a_id",
                    SqlType::BigInt,
                    GeneratorSpec::Id { permute: false },
                )
                .primary(),
            )
            .field(Field::new(
                "a_balance",
                SqlType::Decimal(12, 2),
                GeneratorSpec::Decimal {
                    min: Expr::parse("0").expect("lit"),
                    max: Expr::parse("100000").expect("lit"),
                    scale: 2,
                },
            ))
            .field(Field::new(
                "a_note",
                SqlType::Varchar(20),
                GeneratorSpec::Null {
                    probability: 0.2,
                    inner: Box::new(GeneratorSpec::RandomString {
                        min_len: 3,
                        max_len: 12,
                    }),
                },
            )),
    );
    SchemaRuntime::build(&schema, &MapResolver::new()).expect("model builds")
}

#[test]
fn sql_applied_epochs_track_black_box_bookkeeping() {
    let rt = runtime();
    let mut db = Database::new();
    execute(
        &mut db,
        "CREATE TABLE accounts (a_id BIGINT PRIMARY KEY, a_balance DECIMAL(12,2), \
         a_note VARCHAR(20))",
    )
    .expect("DDL");

    // Initial load (epoch 0).
    let rows: Vec<Vec<Value>> = (0..500).map(|r| rt.row(0, 0, r)).collect();
    db.bulk_load("accounts", rows).expect("initial load");

    let bb = UpdateBlackBox::new(
        0,
        UpdateConfig {
            insert_fraction: 0.10,
            update_fraction: 0.10,
            delete_fraction: 0.04,
        },
    );
    let columns = vec![
        "a_id".to_string(),
        "a_balance".to_string(),
        "a_note".to_string(),
    ];

    let mut expected_live = 500i64;
    for epoch in 1..=4 {
        let batch = bb.batch(&rt, epoch);
        let (mut ins, mut del) = (0i64, 0i64);
        let mut deleted_keys: std::collections::HashSet<i64> = Default::default();
        for op in &batch.ops {
            match op {
                UpdateOp::Insert { .. } => ins += 1,
                UpdateOp::Delete { row } => {
                    del += 1;
                    deleted_keys.insert(rt.value(0, 0, 0, *row).as_i64().expect("key"));
                }
                UpdateOp::Update { .. } => {}
            }
        }
        // Deletes may address rows already removed in earlier epochs; the
        // SQL DELETE then affects zero rows. Count the actually-present
        // keys to predict the delta exactly.
        let mut actually_deleted = 0i64;
        for key in &deleted_keys {
            let present = query(
                &db,
                &format!("SELECT COUNT(*) FROM accounts WHERE a_id = {key}"),
            )
            .expect("probe")
            .rows[0][0]
                .as_i64()
                .expect("count");
            actually_deleted += present;
        }

        for stmt in batch.to_sql("accounts", &columns, 0, &|row| rt.value(0, 0, 0, row)) {
            execute(&mut db, &stmt).expect("DML applies");
        }
        expected_live += ins - actually_deleted;
        let live = query(&db, "SELECT COUNT(*) FROM accounts")
            .expect("count")
            .rows[0][0]
            .as_i64()
            .expect("count");
        assert_eq!(
            live, expected_live,
            "epoch {epoch}: {del} deletes requested"
        );
    }
    assert!(expected_live > 500, "stream should grow net of deletes");

    // Updated rows carry the epoch-seeded values: spot-check one update
    // from the last epoch.
    let batch = bb.batch(&rt, 4);
    let updated = batch.ops.iter().find_map(|op| match op {
        UpdateOp::Update { row, values } => Some((*row, values.clone())),
        _ => None,
    });
    if let Some((row, values)) = updated {
        let key = rt.value(0, 0, 0, row).as_i64().expect("key");
        let found = query(
            &db,
            &format!("SELECT a_balance FROM accounts WHERE a_id = {key}"),
        )
        .expect("probe");
        if let Some(r) = found.rows.first() {
            assert_eq!(r[0], values[1], "row {row} balance reflects epoch 4");
        }
    }
}
