//! Point-lookup determinism matrix for the on-the-fly row service.
//!
//! The serve path never reads files: every answer is recomputed from the
//! seeding hierarchy. These tests pin the contract for *every shipped
//! generator kind* (via the shared generator zoo), all four output
//! formats, and both engines (columnar batch and row path):
//!
//! * tiling a table with point lookups, plus the format's `begin`/`end`
//!   framing, is byte-equal to a full `pdgf generate`-style batch file;
//! * the public `PdgfProject::row` values, rendered through the same
//!   formatter, are byte-equal to the service's point-lookup response;
//! * both hold off update epoch 0.

mod zoo;

use std::sync::Arc;

use pdgf::{OutputFormat, Pdgf};
use pdgf_gen::{MapResolver, SchemaRuntime};
use pdgf_output::{Formatter, MemorySink};
use pdgf_runtime::{generate_table_range, table_meta, RowService, RunConfig, ServeConfig};
use zoo::generator_zoo;

fn runtime() -> Arc<SchemaRuntime> {
    Arc::new(SchemaRuntime::build(&generator_zoo(), &MapResolver::new()).expect("zoo builds"))
}

/// Batch-engine reference bytes: the whole table as one generated file.
fn whole_file(
    rt: &SchemaRuntime,
    table: u32,
    update: u32,
    formatter: &dyn Formatter,
    columnar: bool,
) -> Vec<u8> {
    let mut sink = MemorySink::new();
    generate_table_range(
        rt,
        table,
        update,
        0..rt.tables()[table as usize].size,
        formatter,
        &mut sink,
        &RunConfig::new()
            .workers(0)
            .package_rows(61)
            .columnar(columnar),
        None,
    )
    .expect("batch generation");
    sink.into_inner()
}

/// Every generator kind × all four formats × both engines: point lookups
/// tile the exact batch file (body rows are unframed fragments; the
/// format's `begin`/`end` bytes are added once around them).
#[test]
fn point_lookups_tile_whole_files_for_every_generator_kind() {
    let rt = runtime();
    for columnar in [true, false] {
        let service = RowService::new(
            Arc::clone(&rt),
            ServeConfig::new()
                .workers(2)
                .package_rows(19)
                .columnar(columnar),
            None,
        );
        for format in OutputFormat::all() {
            let formatter: Arc<dyn Formatter> = Arc::from(format.formatter());
            for table in 0..rt.tables().len() as u32 {
                let meta = table_meta(&rt, table);
                let whole = whole_file(&rt, table, 0, formatter.as_ref(), columnar);
                let mut tiled = Vec::new();
                formatter.begin(&mut tiled, &meta);
                for row in 0..rt.tables()[table as usize].size {
                    tiled.extend_from_slice(
                        &service
                            .row_bytes(table, 0, row, Arc::clone(&formatter))
                            .expect("point lookup"),
                    );
                }
                formatter.end(&mut tiled, &meta);
                assert_eq!(
                    tiled,
                    whole,
                    "table={table} format={} columnar={columnar}: tiled lookups != batch file",
                    formatter.name()
                );
            }
        }
    }
}

/// The public API point lookup (`PdgfProject::row`) and the service
/// point lookup are two routes to the same cells; rendered through the
/// same formatter they must agree byte-for-byte — including for repeated
/// calls (nothing is cached, nothing drifts).
#[test]
fn api_row_values_agree_with_serve_bytes() {
    let project = Pdgf::from_schema(generator_zoo()).build().expect("builds");
    let rt = runtime();
    let service = RowService::new(Arc::clone(&rt), ServeConfig::new().workers(1), None);
    let table = service.table_index("kitchen").expect("kitchen exists");
    let meta = table_meta(&rt, table);
    for format in OutputFormat::all() {
        let formatter: Arc<dyn Formatter> = Arc::from(format.formatter());
        for row in [0u64, 1, 128, 256] {
            let values = project.row("kitchen", 0, row).expect("in bounds");
            let mut from_api = Vec::new();
            formatter.row(&mut from_api, &meta, &values);
            let from_serve = service
                .row_bytes(table, 0, row, Arc::clone(&formatter))
                .expect("point lookup");
            assert_eq!(
                from_api,
                from_serve,
                "row={row} format={}: API values != serve bytes",
                formatter.name()
            );
            let again = service
                .row_bytes(table, 0, row, Arc::clone(&formatter))
                .expect("point lookup");
            assert_eq!(from_serve, again, "repeated lookup drifted");
        }
    }
    assert!(project.row("kitchen", 0, 257).is_err(), "row out of bounds");
    assert!(project.row("nope", 0, 0).is_err(), "unknown table");
}

/// Off epoch 0: point lookups at a later update epoch tile that epoch's
/// batch file (CSV has no framing, so the tiles are the whole file).
#[test]
fn update_epoch_lookups_tile_that_epochs_file() {
    let rt = runtime();
    let csv: Arc<dyn Formatter> = Arc::from(OutputFormat::Csv.formatter());
    for columnar in [true, false] {
        let service = RowService::new(
            Arc::clone(&rt),
            ServeConfig::new()
                .workers(2)
                .package_rows(19)
                .columnar(columnar),
            None,
        );
        for update in [1u32, 3] {
            let whole = whole_file(&rt, 1, update, csv.as_ref(), columnar);
            let mut tiled = Vec::new();
            for row in 0..rt.tables()[1].size {
                tiled.extend_from_slice(
                    &service
                        .row_bytes(1, update, row, Arc::clone(&csv))
                        .expect("point lookup"),
                );
            }
            assert_eq!(tiled, whole, "update={update} columnar={columnar}");
        }
    }
}
