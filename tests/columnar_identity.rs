//! Byte-identity of the columnar batch engine against the row path.
//!
//! The columnar path replays exactly the row path's per-cell RNG draw
//! sequence, so for every shipped generator kind, every output format,
//! every worker count, and ragged package sizes, the two paths must
//! produce the same bytes. These tests are the enforcement of that
//! contract across the full generator zoo (the per-kernel unit tests in
//! `pdgf-gen` check the same thing generator by generator).

mod zoo;

use pdgf_gen::{MapResolver, SchemaRuntime};
use pdgf_output::{CsvFormatter, Formatter, JsonFormatter, MemorySink, SqlFormatter, XmlFormatter};
use pdgf_runtime::{generate_table_range, RunConfig};
use pdgf_schema::model::DateFormat;
use pdgf_schema::value::Date;
use pdgf_schema::{Expr, Field, GeneratorSpec, Schema, SqlType, Table};
use proptest::prelude::*;
use zoo::{generator_zoo, inline_dict};

fn expr(s: &str) -> Expr {
    Expr::parse(s).expect("literal expression")
}

fn render(
    rt: &SchemaRuntime,
    table: u32,
    formatter: &dyn Formatter,
    workers: usize,
    package_rows: u64,
    columnar: bool,
) -> String {
    let mut sink = MemorySink::new();
    generate_table_range(
        rt,
        table,
        0,
        0..rt.tables()[table as usize].size,
        formatter,
        &mut sink,
        &RunConfig::new()
            .workers(workers)
            .package_rows(package_rows)
            .columnar(columnar),
        None,
    )
    .expect("generate");
    sink.as_str().to_string()
}

/// The full matrix: every generator kind (via the zoo schema) × all four
/// formats × {1, 2, 4} workers (plus inline) × ragged package sizes.
#[test]
fn columnar_matches_row_path_across_generators_formats_and_workers() {
    let schema = generator_zoo();
    let rt = SchemaRuntime::build(&schema, &MapResolver::new()).expect("zoo builds");
    let formatters: [&dyn Formatter; 5] = [
        &CsvFormatter::new(),
        &CsvFormatter::new().with_header(),
        &JsonFormatter,
        &XmlFormatter,
        &SqlFormatter::new(),
    ];
    for table in 0..rt.tables().len() as u32 {
        for formatter in formatters {
            // Row-path reference rendered once, inline, with a package
            // size that does not divide the table evenly.
            let reference = render(&rt, table, formatter, 0, 61, false);
            for workers in [0usize, 1, 2, 4] {
                for pkg in [7u64, 61, 100_000] {
                    assert_eq!(
                        render(&rt, table, formatter, workers, pkg, true),
                        reference,
                        "table={table} format={} workers={workers} pkg={pkg}",
                        formatter.name()
                    );
                }
            }
        }
    }
}

/// Update epochs shift the hoisted seed prefix; identity must hold off
/// epoch 0 too.
#[test]
fn columnar_matches_row_path_on_update_epochs() {
    let schema = generator_zoo();
    let rt = SchemaRuntime::build(&schema, &MapResolver::new()).expect("zoo builds");
    let size = rt.tables()[1].size;
    for update in [1u32, 5] {
        let run = |columnar: bool| {
            let mut sink = MemorySink::new();
            generate_table_range(
                &rt,
                1,
                update,
                0..size,
                &CsvFormatter::new(),
                &mut sink,
                &RunConfig::new()
                    .workers(2)
                    .package_rows(31)
                    .columnar(columnar),
                None,
            )
            .expect("generate");
            sink.as_str().to_string()
        };
        assert_eq!(run(true), run(false), "update={update}");
    }
}

/// A generator spec drawn from a small pool by index — the pool covers
/// typed kernels, text kernels, and meta wrappers so random mini-schemas
/// exercise mixed batches.
fn spec_from_pool(i: usize) -> GeneratorSpec {
    match i % 10 {
        0 => GeneratorSpec::Id {
            permute: i % 20 >= 10,
        },
        1 => GeneratorSpec::Long {
            min: expr("-100"),
            max: expr("100"),
        },
        2 => GeneratorSpec::Double {
            min: expr("0"),
            max: expr("10"),
            decimals: Some(2),
        },
        3 => GeneratorSpec::Decimal {
            min: expr("0"),
            max: expr("500"),
            scale: 2,
        },
        4 => GeneratorSpec::DateRange {
            min: Date::from_ymd(1995, 1, 1),
            max: Date::from_ymd(1997, 12, 31),
            format: if i % 20 >= 10 {
                DateFormat::SlashMdy
            } else {
                DateFormat::Iso
            },
        },
        5 => GeneratorSpec::RandomString {
            min_len: 1,
            max_len: 12,
        },
        6 => GeneratorSpec::RandomBool { true_prob: 0.5 },
        7 => GeneratorSpec::Dict {
            source: inline_dict(),
            weighted: i % 20 >= 10,
        },
        8 => GeneratorSpec::Null {
            probability: 0.3,
            inner: Box::new(GeneratorSpec::Long {
                min: expr("0"),
                max: expr("99"),
            }),
        },
        _ => GeneratorSpec::Formula {
            expr: expr("${ROW} * 3 % 11"),
            as_long: true,
        },
    }
}

fn sql_type_for(spec: &GeneratorSpec) -> SqlType {
    match spec {
        GeneratorSpec::Id { .. } => SqlType::BigInt,
        GeneratorSpec::Long { .. } | GeneratorSpec::Formula { .. } => SqlType::Integer,
        GeneratorSpec::Double { .. } => SqlType::Double,
        GeneratorSpec::Decimal { .. } => SqlType::Decimal(10, 2),
        GeneratorSpec::DateRange {
            format: DateFormat::Iso,
            ..
        } => SqlType::Date,
        GeneratorSpec::RandomBool { .. } => SqlType::Boolean,
        GeneratorSpec::Null { .. } => SqlType::Integer,
        _ => SqlType::Varchar(20),
    }
}

proptest! {
    /// Random mini-schemas: any combination of pooled generators, rows,
    /// seed, workers, and package size is byte-identical across paths.
    #[test]
    fn random_mini_schemas_are_byte_identical_across_paths(
        cols in prop::collection::vec(0usize..40, 1..6),
        rows in 1u64..300,
        seed in any::<u64>(),
        workers in 0usize..4,
        package_rows in 1u64..120,
    ) {
        let mut table = Table::new("t", &rows.to_string());
        for (c, pick) in cols.iter().enumerate() {
            let spec = spec_from_pool(*pick);
            let ty = sql_type_for(&spec);
            table = table.field(Field::new(&format!("c{c}"), ty, spec));
        }
        let schema = Schema::new("mini", seed).table(table);
        let rt = SchemaRuntime::build(&schema, &MapResolver::new()).expect("mini builds");
        let formatters: [&dyn Formatter; 4] = [
            &CsvFormatter::new(),
            &JsonFormatter,
            &XmlFormatter,
            &SqlFormatter::new(),
        ];
        for formatter in formatters {
            let row_path = render(&rt, 0, formatter, workers, package_rows, false);
            let columnar = render(&rt, 0, formatter, workers, package_rows, true);
            prop_assert_eq!(&columnar, &row_path, "format={}", formatter.name());
        }
    }
}
