//! Byte-identity of the columnar batch engine against the row path.
//!
//! The columnar path replays exactly the row path's per-cell RNG draw
//! sequence, so for every shipped generator kind, every output format,
//! every worker count, and ragged package sizes, the two paths must
//! produce the same bytes. These tests are the enforcement of that
//! contract across the full generator zoo (the per-kernel unit tests in
//! `pdgf-gen` check the same thing generator by generator).

use pdgf_gen::{MapResolver, SchemaRuntime};
use pdgf_output::{CsvFormatter, Formatter, JsonFormatter, MemorySink, SqlFormatter, XmlFormatter};
use pdgf_runtime::{generate_table_range, RunConfig};
use pdgf_schema::model::{DateFormat, DictSource, HistogramOutput, MarkovSource, RefDistribution};
use pdgf_schema::value::Date;
use pdgf_schema::{Expr, Field, GeneratorSpec, Schema, SqlType, Table, Value};
use proptest::prelude::*;

fn expr(s: &str) -> Expr {
    Expr::parse(s).expect("literal expression")
}

fn inline_dict() -> DictSource {
    DictSource::Inline {
        entries: vec![
            ("alpha".to_string(), 1.0),
            ("beta".to_string(), 3.0),
            ("gamma, \"quoted\" & <tagged>".to_string(), 2.0),
            ("delta".to_string(), 0.5),
        ],
    }
}

fn inline_markov() -> MarkovSource {
    let samples = [
        "carefully final deposits sleep quickly",
        "furiously regular requests haggle blithely",
        "quickly special packages wake across the ideas",
        "silent platelets detect slyly",
    ];
    let mut builder = textsynth::MarkovBuilder::new();
    for s in samples {
        builder.feed(s);
    }
    MarkovSource::Inline(builder.build().expect("non-empty corpus").to_text())
}

/// One table per shipped generator kind (plus a parent for references),
/// so the matrix covers every kernel and every fallback in one run.
fn generator_zoo() -> Schema {
    let parent = Table::new("parent", "29")
        .field(Field::new("pk", SqlType::BigInt, GeneratorSpec::Id { permute: false }).primary())
        .field(Field::new(
            "name",
            SqlType::Varchar(12),
            GeneratorSpec::Dict {
                source: inline_dict(),
                weighted: false,
            },
        ));

    let kitchen = Table::new("kitchen", "257")
        .field(Field::new("id", SqlType::BigInt, GeneratorSpec::Id { permute: true }).primary())
        .field(Field::new(
            "long_v",
            SqlType::Integer,
            GeneratorSpec::Long {
                min: expr("-500"),
                max: expr("100000"),
            },
        ))
        .field(Field::new(
            "double_v",
            SqlType::Double,
            GeneratorSpec::Double {
                min: expr("0"),
                max: expr("1000"),
                decimals: Some(3),
            },
        ))
        .field(Field::new(
            "double_raw",
            SqlType::Double,
            GeneratorSpec::Double {
                min: expr("-1"),
                max: expr("1"),
                decimals: None,
            },
        ))
        .field(Field::new(
            "dec_v",
            SqlType::Decimal(12, 2),
            GeneratorSpec::Decimal {
                min: expr("-999"),
                max: expr("999"),
                scale: 2,
            },
        ))
        .field(Field::new(
            "date_iso",
            SqlType::Date,
            GeneratorSpec::DateRange {
                min: Date::from_ymd(1992, 1, 1),
                max: Date::from_ymd(1998, 12, 31),
                format: DateFormat::Iso,
            },
        ))
        .field(Field::new(
            "date_mdy",
            SqlType::Varchar(10),
            GeneratorSpec::DateRange {
                min: Date::from_ymd(2000, 6, 1),
                max: Date::from_ymd(2014, 11, 30),
                format: DateFormat::SlashMdy,
            },
        ))
        .field(Field::new(
            "date_dmy",
            SqlType::Varchar(10),
            GeneratorSpec::DateRange {
                min: Date::from_ymd(1970, 1, 1),
                max: Date::from_ymd(1999, 12, 31),
                format: DateFormat::DotDmy,
            },
        ))
        .field(Field::new(
            "ts_v",
            SqlType::Timestamp,
            GeneratorSpec::TimestampRange {
                min: 0,
                max: 1_500_000_000,
            },
        ))
        .field(Field::new(
            "rstr",
            SqlType::Varchar(24),
            GeneratorSpec::RandomString {
                min_len: 3,
                max_len: 24,
            },
        ))
        // Declared width below max_len forces the truncate wrapper over
        // the random-string kernel.
        .field(Field::new(
            "rstr_trunc",
            SqlType::Varchar(8),
            GeneratorSpec::RandomString {
                min_len: 1,
                max_len: 16,
            },
        ))
        .field(Field::new(
            "flag",
            SqlType::Boolean,
            GeneratorSpec::RandomBool { true_prob: 0.37 },
        ))
        .field(Field::new(
            "dict_w",
            SqlType::Varchar(40),
            GeneratorSpec::Dict {
                source: inline_dict(),
                weighted: true,
            },
        ))
        .field(Field::new(
            "dict_row",
            SqlType::Varchar(40),
            GeneratorSpec::DictByRow {
                source: inline_dict(),
            },
        ))
        .field(Field::new(
            "comment",
            SqlType::Varchar(60),
            GeneratorSpec::Markov {
                source: inline_markov(),
                min_words: 2,
                max_words: 9,
            },
        ))
        .field(Field::new(
            "ref_uniform",
            SqlType::BigInt,
            GeneratorSpec::Reference {
                table: "parent".to_string(),
                field: "pk".to_string(),
                distribution: RefDistribution::Uniform,
            },
        ))
        .field(Field::new(
            "ref_zipf",
            SqlType::Varchar(12),
            GeneratorSpec::Reference {
                table: "parent".to_string(),
                field: "name".to_string(),
                distribution: RefDistribution::Zipf { theta: 0.5 },
            },
        ))
        .field(Field::new(
            "ref_zipf_pk",
            SqlType::BigInt,
            GeneratorSpec::Reference {
                table: "parent".to_string(),
                field: "pk".to_string(),
                distribution: RefDistribution::Zipf { theta: 0.8 },
            },
        ))
        .field(Field::new(
            "ref_perm",
            SqlType::BigInt,
            GeneratorSpec::Reference {
                table: "parent".to_string(),
                field: "pk".to_string(),
                distribution: RefDistribution::Permutation,
            },
        ))
        .field(Field::new(
            "maybe_null",
            SqlType::Integer,
            GeneratorSpec::Null {
                probability: 0.25,
                inner: Box::new(GeneratorSpec::Long {
                    min: expr("1"),
                    max: expr("9"),
                }),
            },
        ))
        .field(Field::new(
            "constant",
            SqlType::Varchar(16),
            GeneratorSpec::Static {
                value: Value::text("fixed \"cell\""),
            },
        ))
        .field(Field::new(
            "concat",
            SqlType::Varchar(40),
            GeneratorSpec::Sequential {
                parts: vec![
                    GeneratorSpec::Dict {
                        source: inline_dict(),
                        weighted: false,
                    },
                    GeneratorSpec::Long {
                        min: expr("10"),
                        max: expr("99"),
                    },
                ],
                separator: "-".to_string(),
            },
        ))
        .field(Field::new(
            "branchy",
            SqlType::Varchar(40),
            GeneratorSpec::Probability {
                branches: vec![
                    (
                        0.6,
                        GeneratorSpec::Long {
                            min: expr("0"),
                            max: expr("9"),
                        },
                    ),
                    (
                        0.4,
                        GeneratorSpec::Dict {
                            source: inline_dict(),
                            weighted: false,
                        },
                    ),
                ],
            },
        ))
        .field(Field::new(
            "formula",
            SqlType::BigInt,
            GeneratorSpec::Formula {
                expr: expr("${ROW} % 7 + 1"),
                as_long: true,
            },
        ))
        .field(Field::new(
            "hist_long",
            SqlType::Integer,
            GeneratorSpec::HistogramNumeric {
                bounds: vec![0.0, 10.0, 100.0, 1000.0],
                weights: vec![5.0, 3.0, 1.0],
                output: HistogramOutput::Long,
            },
        ))
        .field(Field::new(
            "hist_dec",
            SqlType::Decimal(10, 2),
            GeneratorSpec::HistogramNumeric {
                bounds: vec![1.0, 2.5, 9.0],
                weights: vec![1.0, 1.0],
                output: HistogramOutput::Decimal(2),
            },
        ));

    Schema::new("zoo", 0xC01_AB5).table(parent).table(kitchen)
}

fn render(
    rt: &SchemaRuntime,
    table: u32,
    formatter: &dyn Formatter,
    workers: usize,
    package_rows: u64,
    columnar: bool,
) -> String {
    let mut sink = MemorySink::new();
    generate_table_range(
        rt,
        table,
        0,
        0..rt.tables()[table as usize].size,
        formatter,
        &mut sink,
        &RunConfig::new()
            .workers(workers)
            .package_rows(package_rows)
            .columnar(columnar),
        None,
    )
    .expect("generate");
    sink.as_str().to_string()
}

/// The full matrix: every generator kind (via the zoo schema) × all four
/// formats × {1, 2, 4} workers (plus inline) × ragged package sizes.
#[test]
fn columnar_matches_row_path_across_generators_formats_and_workers() {
    let schema = generator_zoo();
    let rt = SchemaRuntime::build(&schema, &MapResolver::new()).expect("zoo builds");
    let formatters: [&dyn Formatter; 5] = [
        &CsvFormatter::new(),
        &CsvFormatter::new().with_header(),
        &JsonFormatter,
        &XmlFormatter,
        &SqlFormatter::new(),
    ];
    for table in 0..rt.tables().len() as u32 {
        for formatter in formatters {
            // Row-path reference rendered once, inline, with a package
            // size that does not divide the table evenly.
            let reference = render(&rt, table, formatter, 0, 61, false);
            for workers in [0usize, 1, 2, 4] {
                for pkg in [7u64, 61, 100_000] {
                    assert_eq!(
                        render(&rt, table, formatter, workers, pkg, true),
                        reference,
                        "table={table} format={} workers={workers} pkg={pkg}",
                        formatter.name()
                    );
                }
            }
        }
    }
}

/// Update epochs shift the hoisted seed prefix; identity must hold off
/// epoch 0 too.
#[test]
fn columnar_matches_row_path_on_update_epochs() {
    let schema = generator_zoo();
    let rt = SchemaRuntime::build(&schema, &MapResolver::new()).expect("zoo builds");
    let size = rt.tables()[1].size;
    for update in [1u32, 5] {
        let run = |columnar: bool| {
            let mut sink = MemorySink::new();
            generate_table_range(
                &rt,
                1,
                update,
                0..size,
                &CsvFormatter::new(),
                &mut sink,
                &RunConfig::new()
                    .workers(2)
                    .package_rows(31)
                    .columnar(columnar),
                None,
            )
            .expect("generate");
            sink.as_str().to_string()
        };
        assert_eq!(run(true), run(false), "update={update}");
    }
}

/// A generator spec drawn from a small pool by index — the pool covers
/// typed kernels, text kernels, and meta wrappers so random mini-schemas
/// exercise mixed batches.
fn spec_from_pool(i: usize) -> GeneratorSpec {
    match i % 10 {
        0 => GeneratorSpec::Id {
            permute: i % 20 >= 10,
        },
        1 => GeneratorSpec::Long {
            min: expr("-100"),
            max: expr("100"),
        },
        2 => GeneratorSpec::Double {
            min: expr("0"),
            max: expr("10"),
            decimals: Some(2),
        },
        3 => GeneratorSpec::Decimal {
            min: expr("0"),
            max: expr("500"),
            scale: 2,
        },
        4 => GeneratorSpec::DateRange {
            min: Date::from_ymd(1995, 1, 1),
            max: Date::from_ymd(1997, 12, 31),
            format: if i % 20 >= 10 {
                DateFormat::SlashMdy
            } else {
                DateFormat::Iso
            },
        },
        5 => GeneratorSpec::RandomString {
            min_len: 1,
            max_len: 12,
        },
        6 => GeneratorSpec::RandomBool { true_prob: 0.5 },
        7 => GeneratorSpec::Dict {
            source: inline_dict(),
            weighted: i % 20 >= 10,
        },
        8 => GeneratorSpec::Null {
            probability: 0.3,
            inner: Box::new(GeneratorSpec::Long {
                min: expr("0"),
                max: expr("99"),
            }),
        },
        _ => GeneratorSpec::Formula {
            expr: expr("${ROW} * 3 % 11"),
            as_long: true,
        },
    }
}

fn sql_type_for(spec: &GeneratorSpec) -> SqlType {
    match spec {
        GeneratorSpec::Id { .. } => SqlType::BigInt,
        GeneratorSpec::Long { .. } | GeneratorSpec::Formula { .. } => SqlType::Integer,
        GeneratorSpec::Double { .. } => SqlType::Double,
        GeneratorSpec::Decimal { .. } => SqlType::Decimal(10, 2),
        GeneratorSpec::DateRange {
            format: DateFormat::Iso,
            ..
        } => SqlType::Date,
        GeneratorSpec::RandomBool { .. } => SqlType::Boolean,
        GeneratorSpec::Null { .. } => SqlType::Integer,
        _ => SqlType::Varchar(20),
    }
}

proptest! {
    /// Random mini-schemas: any combination of pooled generators, rows,
    /// seed, workers, and package size is byte-identical across paths.
    #[test]
    fn random_mini_schemas_are_byte_identical_across_paths(
        cols in prop::collection::vec(0usize..40, 1..6),
        rows in 1u64..300,
        seed in any::<u64>(),
        workers in 0usize..4,
        package_rows in 1u64..120,
    ) {
        let mut table = Table::new("t", &rows.to_string());
        for (c, pick) in cols.iter().enumerate() {
            let spec = spec_from_pool(*pick);
            let ty = sql_type_for(&spec);
            table = table.field(Field::new(&format!("c{c}"), ty, spec));
        }
        let schema = Schema::new("mini", seed).table(table);
        let rt = SchemaRuntime::build(&schema, &MapResolver::new()).expect("mini builds");
        let formatters: [&dyn Formatter; 4] = [
            &CsvFormatter::new(),
            &JsonFormatter,
            &XmlFormatter,
            &SqlFormatter::new(),
        ];
        for formatter in formatters {
            let row_path = render(&rt, 0, formatter, workers, package_rows, false);
            let columnar = render(&rt, 0, formatter, workers, package_rows, true);
            prop_assert_eq!(&columnar, &row_path, "format={}", formatter.name());
        }
    }
}
