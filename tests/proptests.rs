//! Property-based tests on cross-crate invariants.

use proptest::prelude::*;

use pdgf_prng::{Alias, FeistelPermutation, PdgfDefaultRandom, PdgfRng, SeedTree};
use pdgf_schema::value::{Date, Value};
use pdgf_schema::{Expr, Field, GeneratorSpec, Schema, SqlType, Table};

proptest! {
    /// A Feistel permutation is a bijection on any domain.
    #[test]
    fn feistel_is_bijective(n in 1u64..5_000, seed in any::<u64>()) {
        let p = FeistelPermutation::new(n, seed);
        let mut seen = vec![false; n as usize];
        for x in 0..n {
            let y = p.permute(x);
            prop_assert!(y < n);
            prop_assert!(!seen[y as usize], "collision at {x}");
            seen[y as usize] = true;
            prop_assert_eq!(p.invert(y), x);
        }
    }

    /// Cached and uncached seed derivation always agree.
    #[test]
    fn seed_tree_cache_is_transparent(
        seed in any::<u64>(),
        table in 0u32..4,
        column in 0u32..6,
        update in 0u32..8,
        row in any::<u64>(),
    ) {
        let tree = SeedTree::new(seed, &[6, 6, 6, 6]);
        let coord = pdgf_prng::FieldCoord { table, column, update, row };
        prop_assert_eq!(
            tree.field_seed(coord),
            SeedTree::field_seed_uncached(seed, coord)
        );
    }

    /// Alias tables never draw zero-weight entries and stay in range.
    #[test]
    fn alias_respects_support(weights in prop::collection::vec(0.0f64..10.0, 1..40), seed in any::<u64>()) {
        let alias = Alias::new(&weights);
        let mut rng = PdgfDefaultRandom::seed_from(seed);
        let any_positive = weights.iter().any(|&w| w > 0.0);
        for _ in 0..200 {
            let i = alias.sample_index(&mut || rng.next_u64());
            prop_assert!(i < weights.len());
            if any_positive {
                prop_assert!(weights[i] > 0.0, "drew zero-weight entry {i}");
            }
        }
    }

    /// Expression parse → display → parse is a fixpoint, and evaluation
    /// agrees between the original and the reprinted tree.
    #[test]
    fn expr_display_roundtrips(
        a in -1000i64..1000,
        b in 1i64..1000,
        c in 1i64..100,
    ) {
        let src = format!("({a} + {b}) * {c} + max({b}, {c}) - min({a}, 2) % {b}");
        let e1 = Expr::parse(&src).expect("valid source");
        let e2 = Expr::parse(&e1.to_string()).expect("reprint parses");
        let env = |_: &str| None;
        prop_assert_eq!(e1.eval(&env).expect("evaluates"), e2.eval(&env).expect("evaluates"));
    }

    /// Dates roundtrip through (y, m, d) decomposition over a wide range.
    #[test]
    fn dates_roundtrip(days in -200_000i32..200_000) {
        let d = Date(days);
        let (y, m, dd) = d.to_ymd();
        prop_assert_eq!(Date::from_ymd(y, m, dd), d);
        // And through the ISO text form when the year is positive.
        if y > 0 {
            prop_assert_eq!(Date::parse_iso(&d.to_string()), Some(d));
        }
    }

    /// sql_cmp is a total order: antisymmetric and transitive on a
    /// sampled set of mixed values.
    #[test]
    fn value_order_is_total(
        longs in prop::collection::vec(any::<i32>(), 0..5),
        doubles in prop::collection::vec(-1e6f64..1e6, 0..5),
        texts in prop::collection::vec("[a-z]{0,6}", 0..5),
    ) {
        let mut values: Vec<Value> = Vec::new();
        values.push(Value::Null);
        values.extend(longs.iter().map(|&v| Value::Long(i64::from(v))));
        values.extend(doubles.iter().map(|&v| Value::Double(v)));
        values.extend(texts.iter().map(|t| Value::text(t.clone())));
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.sql_cmp(b));
        for w in sorted.windows(2) {
            prop_assert_ne!(w[0].sql_cmp(&w[1]), std::cmp::Ordering::Greater);
        }
        for v in &values {
            prop_assert_eq!(v.sql_cmp(v), std::cmp::Ordering::Equal);
        }
    }

    /// minidb CSV export/import roundtrips arbitrary text content,
    /// including delimiters, quotes, and newlines.
    #[test]
    fn minidb_csv_roundtrips_hostile_text(texts in prop::collection::vec(".{0,20}", 1..20)) {
        use dbsynth_suite::minidb::{ColumnDef, Database, TableDef};
        let mut db = Database::new();
        db.create_table(
            TableDef::new("t")
                .column(ColumnDef::new("id", SqlType::BigInt).primary_key())
                .column(ColumnDef::new("s", SqlType::Varchar(64))),
        ).expect("create");
        for (i, t) in texts.iter().enumerate() {
            // Skip values the textual NULL convention cannot represent.
            if t.is_empty() { continue; }
            db.insert("t", vec![Value::Long(i as i64), Value::text(t.clone())]).expect("insert");
        }
        let rows_before = db.table("t").expect("t").rows().to_vec();
        let csv = db.export_csv("t").expect("export");
        let mut db2 = Database::new();
        db2.create_table(db.table("t").expect("t").def().clone()).expect("create");
        db2.load_csv_str("t", &csv).expect("reimport");
        prop_assert_eq!(db2.table("t").expect("t").rows(), rows_before.as_slice());
    }

    /// The scheduler produces identical bytes for any worker count and
    /// package size (randomized configuration).
    #[test]
    fn scheduler_output_invariant(
        workers in 0usize..5,
        package_rows in 1u64..500,
        rows in 1u64..800,
        seed in any::<u64>(),
    ) {
        use pdgf_gen::{MapResolver, SchemaRuntime};
        use pdgf_output::{CsvFormatter, MemorySink};
        use pdgf_runtime::{generate_table_range, RunConfig};

        let schema = Schema::new("prop", seed).table(
            Table::new("t", &rows.to_string())
                .field(Field::new("id", SqlType::BigInt, GeneratorSpec::Id { permute: true }))
                .field(Field::new(
                    "v",
                    SqlType::Integer,
                    GeneratorSpec::Long {
                        min: Expr::parse("0").expect("lit"),
                        max: Expr::parse("999").expect("lit"),
                    },
                )),
        );
        let rt = SchemaRuntime::build(&schema, &MapResolver::new()).expect("build");
        let render = |w: usize, pkg: u64| {
            let mut sink = MemorySink::new();
            generate_table_range(
                &rt, 0, 0, 0..rows,
                &CsvFormatter::new(), &mut sink,
                &RunConfig::new().workers(w).package_rows(pkg), None,
            ).expect("generate");
            sink.as_str().to_string()
        };
        let reference = render(0, 10_000);
        prop_assert_eq!(render(workers, package_rows), reference);
    }

    /// Arbitrary XML element trees roundtrip through the writer/parser.
    #[test]
    fn xml_trees_roundtrip(
        names in prop::collection::vec("[a-z][a-z0-9_]{0,8}", 1..6),
        attr_vals in prop::collection::vec(".{0,12}", 0..4),
        text in ".{0,20}",
    ) {
        use pdgf_schema::xml::XmlNode;
        let mut root = XmlNode::new(&names[0]);
        for (i, v) in attr_vals.iter().enumerate() {
            root = root.attr(&format!("a{i}"), v);
        }
        for n in &names[1..] {
            root = root.child(XmlNode::new(n).with_text(text.clone()));
        }
        let doc = root.to_document();
        let parsed = XmlNode::parse(&doc).expect("own output parses");
        // Text content is whitespace-trimmed by the parser; normalize.
        let mut expected = root.clone();
        for c in &mut expected.children {
            c.text = c.text.trim().to_string();
        }
        prop_assert_eq!(parsed, expected);
    }

    /// Every SqlType renders to DDL that parses back to itself.
    #[test]
    fn sql_types_roundtrip(p in 1u8..30, s_in in 0u8..30, n in 1u32..2000) {
        use pdgf_schema::SqlType;
        let s = s_in.min(p);
        for ty in [
            SqlType::Boolean,
            SqlType::SmallInt,
            SqlType::Integer,
            SqlType::BigInt,
            SqlType::Decimal(p, s),
            SqlType::Real,
            SqlType::Double,
            SqlType::Char(n),
            SqlType::Varchar(n),
            SqlType::Date,
            SqlType::Time,
            SqlType::Timestamp,
        ] {
            prop_assert_eq!(SqlType::parse(&ty.to_string()), Some(ty));
        }
    }

    /// Decimal display ↔ CSV-cell parse is lossless at any scale.
    #[test]
    fn decimal_cells_roundtrip(unscaled in -1_000_000_000i64..1_000_000_000, scale in 0u8..6) {
        use dbsynth_suite::minidb::Database;
        let v = Value::decimal(unscaled, scale);
        let text = v.to_string();
        let parsed = Database::parse_cell(&text, SqlType::Decimal(18, scale))
            .expect("canonical form parses");
        prop_assert_eq!(parsed, v);
    }

    /// LIKE pattern matching agrees with a regex oracle on wildcard-free
    /// patterns plus simple % forms.
    #[test]
    fn like_agrees_with_substring_oracle(hay in "[a-c]{0,10}", needle in "[a-c]{0,3}") {
        use dbsynth_suite::minidb::sql::exec::like_match;
        prop_assert_eq!(like_match(&needle, &hay), hay == needle);
        let contains_pattern = format!("%{needle}%");
        prop_assert_eq!(like_match(&contains_pattern, &hay), hay.contains(&needle));
        let prefix_pattern = format!("{needle}%");
        prop_assert_eq!(like_match(&prefix_pattern, &hay), hay.starts_with(&needle));
        let suffix_pattern = format!("%{needle}");
        prop_assert_eq!(like_match(&suffix_pattern, &hay), hay.ends_with(&needle));
    }

    /// The XML parser never panics on arbitrary input — it returns
    /// structured errors for garbage.
    #[test]
    fn xml_parser_never_panics(input in ".{0,200}") {
        use pdgf_schema::xml::XmlNode;
        let _ = XmlNode::parse(&input);
    }

    /// The SQL lexer/parser never panic on arbitrary input.
    #[test]
    fn sql_parser_never_panics(input in ".{0,200}") {
        let _ = dbsynth_suite::minidb::sql::parse::parse(&input);
    }

    /// The expression parser never panics on arbitrary input.
    #[test]
    fn expr_parser_never_panics(input in ".{0,100}") {
        let _ = pdgf_schema::Expr::parse(&input);
    }

    /// Markov model text deserialization never panics on arbitrary input.
    #[test]
    fn markov_text_parser_never_panics(input in ".{0,300}") {
        let _ = textsynth::MarkovModel::from_text(&input);
    }

    /// Markov models roundtrip through the binary format for arbitrary
    /// corpora.
    #[test]
    fn markov_binary_roundtrips(corpus in prop::collection::vec("[a-d]{1,3}( [a-d]{1,3}){0,5}", 1..12), seed in any::<u64>()) {
        use textsynth::{MarkovBuilder, MarkovModel};
        let mut b = MarkovBuilder::new();
        for s in &corpus {
            b.feed(s);
        }
        let Ok(model) = b.build() else { return Ok(()); };
        let back = MarkovModel::from_bytes(&model.to_bytes()).expect("roundtrip");
        let mut r1 = PdgfDefaultRandom::seed_from(seed);
        let mut r2 = PdgfDefaultRandom::seed_from(seed);
        prop_assert_eq!(
            model.generate(&mut || r1.next_u64(), 12),
            back.generate(&mut || r2.next_u64(), 12)
        );
    }
}
