//! The model files shipped in `models/` must stay in sync with the
//! builders in `workloads` (regenerate with
//! `cargo run -p workloads --bin dump-models`), and must be directly
//! usable: parse, build, generate.

use dbsynth_suite::pdgf::{OutputFormat, Pdgf};
use dbsynth_suite::workloads::{corpus, ssb, tpch};

fn repo_path(rel: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

#[test]
fn shipped_tpch_xml_matches_the_builder() {
    let shipped = std::fs::read_to_string(repo_path("models/tpch.xml"))
        .expect("models/tpch.xml is checked in");
    let built = dbsynth_suite::pdgf::schema::config::to_xml_string(&tpch::schema(12_456_789));
    assert_eq!(
        shipped, built,
        "models/tpch.xml is stale — run `cargo run -p workloads --bin dump-models`"
    );
}

#[test]
fn shipped_ssb_xml_matches_the_builder() {
    let shipped =
        std::fs::read_to_string(repo_path("models/ssb.xml")).expect("models/ssb.xml is checked in");
    let built = dbsynth_suite::pdgf::schema::config::to_xml_string(&ssb::schema(19_920_601));
    assert_eq!(
        shipped, built,
        "models/ssb.xml is stale — run `cargo run -p workloads --bin dump-models`"
    );
}

#[test]
fn shipped_markov_binary_matches_the_corpus() {
    let shipped = std::fs::read(repo_path("models/markov/l_comment_markovSamples.bin"))
        .expect("markov binary is checked in");
    assert_eq!(
        shipped,
        corpus::tpch_comment_model().to_bytes().to_vec(),
        "markov binary is stale — run `cargo run -p workloads --bin dump-models`"
    );
}

#[test]
fn shipped_models_generate_out_of_the_box() {
    // Exactly what a user of the CLI does: load the XML from disk with
    // resources resolving next to it.
    let project = Pdgf::from_xml_file(repo_path("models/tpch.xml"))
        .expect("shipped model parses")
        .set_property("SF", "0.0002")
        .workers(0)
        .build()
        .expect("shipped model builds");
    let csv = project
        .table_to_string("lineitem", OutputFormat::Csv)
        .expect("generates");
    assert_eq!(csv.lines().count(), 1_200);

    // SSB's smallest dimension (supplier, 2000 × SF) needs SF ≥ 0.001 to
    // stay non-empty.
    let ssb_project = Pdgf::from_xml_file(repo_path("models/ssb.xml"))
        .expect("shipped SSB model parses")
        .set_property("SF", "0.001")
        .workers(0)
        .build()
        .expect("shipped SSB model builds");
    let csv = ssb_project
        .table_to_string("lineorder", OutputFormat::Csv)
        .expect("generates");
    assert_eq!(csv.lines().count(), 6_000);
}
